"""Ablation B — reordering tolerance in the packet-scatter phase (Section 2).

Spraying packets over all ECMP paths reorders them; the paper proposes a
topology-informed duplicate-ACK threshold (derived from FatTree addressing)
or an RR-TCP-style adaptive threshold.  This ablation runs the same packet-
scatter workload with:

* the standard static threshold of 3 (no mitigation),
* the topology-informed threshold,
* the adaptive (RR-TCP-like) threshold,

and reports spurious fast retransmissions and completion times.
"""

from __future__ import annotations

import pytest

from bench_common import small_config
from repro.experiments.runner import run_experiment
from repro.metrics.reporting import render_table
from repro.traffic.flowspec import PROTOCOL_MMPTCP


def _run_reordering_ablation():
    # Pure packet scatter (never switch) isolates the reordering behaviour.
    config = small_config().with_protocol(PROTOCOL_MMPTCP, 8).with_updates(
        switching_policy="never"
    )
    variants = {
        "static dupACK=3": config.with_updates(reordering_policy="static"),
        "topology-informed": config.with_updates(reordering_policy="topology_informed"),
        "adaptive (RR-TCP)": config.with_updates(reordering_policy="adaptive"),
    }
    return {label: run_experiment(cfg) for label, cfg in variants.items()}


def _spurious_and_retx(result) -> tuple:
    shorts = result.metrics.short_flows
    spurious = sum(record.spurious_retransmits for record in shorts)
    fast_retx = sum(record.fast_retransmits for record in shorts)
    retx = sum(record.retransmitted_packets for record in shorts)
    return spurious, fast_retx, retx


@pytest.mark.benchmark(group="ablation-reordering")
def test_ablation_reordering_policies(benchmark) -> None:
    """Compare duplicate-ACK threshold policies for the packet-scatter phase."""
    results = benchmark.pedantic(_run_reordering_ablation, rounds=1, iterations=1)

    rows = []
    for label, result in results.items():
        spurious, fast_retx, retx = _spurious_and_retx(result)
        summary = result.metrics.short_flow_fct_summary()
        rows.append([
            label,
            f"{summary.mean:.1f}",
            f"{summary.std:.1f}",
            fast_retx,
            spurious,
            retx,
            f"{100 * result.metrics.rto_incidence():.1f}%",
        ])
    print("\nAblation B — packet-scatter reordering handling")
    print(
        render_table(
            ["policy", "mean FCT (ms)", "std FCT (ms)", "fast retx",
             "spurious retx", "retx packets", "RTO incidence"],
            rows,
        )
    )
    print(
        "Paper: without mitigation, reordering is misread as loss; the topology-\n"
        "informed and adaptive thresholds suppress spurious fast retransmissions."
    )

    static_fast = _spurious_and_retx(results["static dupACK=3"])[1]
    informed_fast = _spurious_and_retx(results["topology-informed"])[1]
    # The informed threshold must not cause more fast retransmissions than the
    # naive static threshold on the identical workload.
    assert informed_fast <= static_fast
    for label, result in results.items():
        assert result.metrics.short_flow_completion_rate() > 0.9, label
