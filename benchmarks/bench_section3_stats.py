"""Section 3 statistics: the paper's prose "table" of MPTCP vs MMPTCP numbers.

Reproduces, on the paired workload:

* mean / std short-flow FCT (paper: MMPTCP 116/101 ms vs MPTCP 126/425 ms),
* the fraction of MMPTCP short flows finishing within 100 ms ("the majority"),
* per-layer (core / aggregation) loss rates, slightly lower for MMPTCP,
* long-flow throughput and network utilisation parity.
"""

from __future__ import annotations

import pytest

from bench_common import base_config
from repro.experiments.section3 import section3_statistics
from repro.metrics.reporting import render_table


@pytest.mark.benchmark(group="section3")
def test_section3_mptcp_vs_mmptcp_statistics(benchmark) -> None:
    """Run the paired MPTCP/MMPTCP comparison and print the Section 3 numbers."""
    config = base_config()

    comparison = benchmark.pedantic(
        section3_statistics, args=(config, 8), rounds=1, iterations=1
    )
    mptcp = comparison.mptcp
    mmptcp = comparison.mmptcp

    print("\nSection 3 statistics — MPTCP(8) vs MMPTCP(PS + 8), same workload/seed")
    print(
        render_table(
            ["metric", "MPTCP", "MMPTCP", "paper (MPTCP)", "paper (MMPTCP)"],
            [
                ["mean short FCT (ms)", f"{mptcp.mean_fct_ms:.1f}", f"{mmptcp.mean_fct_ms:.1f}",
                 "126", "116"],
                ["std short FCT (ms)", f"{mptcp.std_fct_ms:.1f}", f"{mmptcp.std_fct_ms:.1f}",
                 "425", "101"],
                ["flows <= 100 ms", f"{100 * mptcp.fraction_within_100ms:.1f}%",
                 f"{100 * mmptcp.fraction_within_100ms:.1f}%", "-", "majority"],
                ["flows with >= 1 RTO", f"{100 * mptcp.rto_incidence:.1f}%",
                 f"{100 * mmptcp.rto_incidence:.1f}%", "-", "-"],
                ["core loss rate", f"{100 * mptcp.core_loss_rate:.3f}%",
                 f"{100 * mmptcp.core_loss_rate:.3f}%", "-", "slightly lower"],
                ["aggregation loss rate", f"{100 * mptcp.aggregation_loss_rate:.3f}%",
                 f"{100 * mmptcp.aggregation_loss_rate:.3f}%", "-", "slightly lower"],
                ["long-flow throughput (Mbps)", f"{mptcp.long_flow_throughput_mbps:.1f}",
                 f"{mmptcp.long_flow_throughput_mbps:.1f}", "equal", "equal"],
                ["core utilisation", f"{100 * mptcp.core_utilisation:.1f}%",
                 f"{100 * mmptcp.core_utilisation:.1f}%", "equal", "equal"],
                ["short-flow completion rate", f"{100 * mptcp.completion_rate:.1f}%",
                 f"{100 * mmptcp.completion_rate:.1f}%", "-", "-"],
            ],
        )
    )

    # Qualitative reproduction targets from the paper's prose.  (The mean/std
    # columns are reported but not asserted: at the scaled-down link rate the
    # queueing delay per RTT is ~10x larger relative to the flow size than in
    # the paper's 1 Gbps fabric, which taxes MMPTCP's single-window slow start;
    # see EXPERIMENTS.md.  The mechanism the paper attributes the tail to —
    # retransmission timeouts — is asserted directly instead.)
    assert mmptcp.rto_incidence <= mptcp.rto_incidence + 1e-9, (
        "MMPTCP should suffer RTOs on no more short flows than MPTCP"
    )
    assert mmptcp.core_loss_rate <= mptcp.core_loss_rate + 1e-9, (
        "MMPTCP's core-layer loss rate should not exceed MPTCP's"
    )
    assert comparison.throughput_parity(tolerance=0.3), (
        "long-flow throughput should be roughly equal for MPTCP and MMPTCP"
    )
    assert mmptcp.completion_rate >= mptcp.completion_rate - 1e-9
    assert mmptcp.fraction_within_100ms >= 0.5, (
        "the majority of MMPTCP short flows should finish within 100 ms"
    )
