"""Roadmap experiment — co-existence of MMPTCP with TCP and MPTCP.

Section 3: "In-depth investigation of how MMPTCP shares network resources
with TCP and MPTCP is part of our current work.  Early results suggest that
it could co-exist in harmony with them."  This benchmark runs the three
protocols side by side on one fabric (each protocol owns a block of senders,
all blocks share the aggregation/core links) and reports per-protocol
short-flow completion times, long-flow throughput and Jain's fairness index.
"""

from __future__ import annotations

import pytest

from bench_common import roadmap_config
from repro.experiments.coexistence import coexistence_rows, run_coexistence_experiment
from repro.metrics.reporting import render_table
from repro.traffic.flowspec import PROTOCOL_MMPTCP, PROTOCOL_MPTCP, PROTOCOL_TCP

PROTOCOLS = (PROTOCOL_TCP, PROTOCOL_MPTCP, PROTOCOL_MMPTCP)


def _run_coexistence():
    config = roadmap_config().with_updates(protocol=PROTOCOL_MMPTCP, num_subflows=8)
    return run_coexistence_experiment(config, protocols=PROTOCOLS)


@pytest.mark.benchmark(group="roadmap-coexistence")
def test_roadmap_coexistence_harmony(benchmark) -> None:
    """TCP, MPTCP and MMPTCP sharing one FatTree: nobody should be starved."""
    outcome = benchmark.pedantic(_run_coexistence, rounds=1, iterations=1)

    rows = coexistence_rows(outcome)
    print("\nRoadmap — co-existence: per-protocol statistics on a shared fabric")
    print(
        render_table(
            ["protocol", "short flows", "long flows", "mean FCT (ms)", "p99 FCT (ms)",
             "RTO incidence", "completed", "long tput (Mbps)"],
            [
                [
                    row["protocol"],
                    row["short_flows"],
                    row["long_flows"],
                    f"{row['mean_fct_ms']:.1f}",
                    f"{row['p99_fct_ms']:.1f}",
                    f"{100 * row['rto_incidence']:.1f}%",
                    f"{100 * row['completion_rate']:.1f}%",
                    f"{row['mean_long_throughput_mbps']:.1f}",
                ]
                for row in rows
            ],
        )
    )
    print(f"Jain fairness index over all long flows: {outcome.fairness_index():.3f}")
    print(
        "Paper (roadmap): early results suggest MMPTCP can co-exist in harmony\n"
        "with legacy TCP and MPTCP."
    )

    # Every protocol's short flows make progress on the shared fabric.
    for protocol, share in outcome.shares.items():
        if share.short_flow_count:
            assert share.completion_rate > 0.8, protocol
    # No protocol's long flows are starved relative to the best-treated one.
    assert outcome.harmony(tolerance=0.75)
    # MMPTCP does not crowd out MPTCP's long flows (nor vice versa) by more
    # than a factor of ~3 at this scale.
    ratio = outcome.throughput_ratio(PROTOCOL_MMPTCP, PROTOCOL_MPTCP)
    assert 1 / 3 <= ratio <= 3.0
    # Aggregate long-flow fairness stays in a sane band.
    assert outcome.fairness_index() > 0.5
