"""Figure 1(c): per-flow completion times for MMPTCP (packet scatter + 8 subflows).

The paper's scatter shows the tail collapsing compared to Figure 1(b): the
majority of short flows complete within 100 ms and very few reach RTO-scale
completion times.  The benchmark runs MMPTCP on exactly the same workload
(same seed) as the Figure 1(b) benchmark and compares the two tails.
"""

from __future__ import annotations

import pytest

from bench_common import base_config
from repro.experiments.figure1 import figure1b_scatter, figure1c_scatter, scatter_points
from repro.metrics.reporting import render_table
from repro.metrics.stats import fraction_above


@pytest.mark.benchmark(group="figure1c")
def test_figure1c_mmptcp_completion_scatter(benchmark) -> None:
    """Regenerate the MMPTCP per-flow scatter and compare its tail to MPTCP(8)."""
    config = base_config()

    mmptcp_result = benchmark.pedantic(
        figure1c_scatter, args=(config, 8), rounds=1, iterations=1
    )
    mptcp_result = figure1b_scatter(config, 8)

    mmptcp = mmptcp_result.metrics
    mptcp = mptcp_result.metrics
    mmptcp_fct = mmptcp.short_flow_fct_ms()
    mptcp_fct = mptcp.short_flow_fct_ms()

    def row(label, metrics, fct):
        summary = metrics.short_flow_fct_summary()
        return [
            label,
            summary.count,
            f"{summary.mean:.1f}",
            f"{summary.std:.1f}",
            f"{summary.p99:.1f}",
            f"{100 * fraction_above(fct, 100.0):.1f}%",
            f"{100 * fraction_above(fct, 200.0):.1f}%",
            f"{100 * metrics.rto_incidence():.1f}%",
        ]

    print("\nFigure 1(c) — MMPTCP (PS + 8 subflows) vs Figure 1(b) — MPTCP (8 subflows)")
    print(
        render_table(
            ["protocol", "flows", "mean (ms)", "std (ms)", "p99 (ms)",
             "> 100 ms", "> 200 ms", ">= 1 RTO"],
            [
                row("mmptcp (Fig 1c)", mmptcp, mmptcp_fct),
                row("mptcp-8 (Fig 1b)", mptcp, mptcp_fct),
            ],
        )
    )
    print(
        "Paper: MMPTCP 116 ms mean / 101 ms std with the majority of flows under\n"
        "100 ms; MPTCP 126 ms mean / 425 ms std with a heavy RTO tail."
    )

    points = scatter_points(mmptcp_result)
    assert len(points) == len(mmptcp_fct) > 0

    # Qualitative reproduction targets (the RTO mechanism behind the Figure 1(b)
    # tail; absolute mean/std are scale-sensitive — see EXPERIMENTS.md):
    # 1. MMPTCP suffers RTOs on at most as many short flows as MPTCP.
    assert mmptcp.rto_incidence() <= mptcp.rto_incidence() + 1e-9
    # 2. Every short flow eventually completes under MMPTCP.
    assert mmptcp.short_flow_completion_rate() >= mptcp.short_flow_completion_rate()
    # 3. MMPTCP's completion-time spread stays within the same order of
    #    magnitude as MPTCP's (the paper reports a 4x reduction at full scale).
    assert mmptcp.short_flow_fct_summary().std <= mptcp.short_flow_fct_summary().std * 2.0
