"""Figure 1(b): per-flow completion times for MPTCP with 8 subflows.

The paper's scatter shows most short flows completing quickly but a heavy
tail of flows stalled for one or more 200 ms retransmission timeouts,
reaching seconds in the worst cases.
"""

from __future__ import annotations

import pytest

from bench_common import base_config
from repro.experiments.figure1 import figure1b_scatter, scatter_points
from repro.metrics.reporting import render_table
from repro.metrics.stats import fraction_above


@pytest.mark.benchmark(group="figure1b")
def test_figure1b_mptcp8_completion_scatter(benchmark) -> None:
    """Regenerate the MPTCP(8) per-flow completion-time scatter."""
    config = base_config()

    result = benchmark.pedantic(figure1b_scatter, args=(config, 8), rounds=1, iterations=1)
    metrics = result.metrics
    points = scatter_points(result)
    fct_ms = metrics.short_flow_fct_ms()
    summary = metrics.short_flow_fct_summary()

    print("\nFigure 1(b) — MPTCP (8 subflows): per-flow completion times")
    print(
        render_table(
            ["statistic", "value"],
            [
                ["short flows measured", summary.count],
                ["mean FCT (ms)", f"{summary.mean:.1f}"],
                ["std FCT (ms)", f"{summary.std:.1f}"],
                ["median FCT (ms)", f"{summary.p50:.1f}"],
                ["p99 FCT (ms)", f"{summary.p99:.1f}"],
                ["max FCT (ms)", f"{summary.maximum:.1f}"],
                ["flows > 200 ms (one RTO)", f"{100 * fraction_above(fct_ms, 200.0):.1f}%"],
                ["flows with >= 1 RTO", f"{100 * metrics.rto_incidence():.1f}%"],
            ],
        )
    )
    print("First 10 scatter points (flow id, completion time in seconds):")
    for point in points[:10]:
        print(f"  flow {int(point['flow_id']):5d}  {point['completion_time_s']:.4f} s")
    print(
        "Paper: mean 126 ms, std 425 ms; a visible population of flows sits at\n"
        "multiples of the 200 ms RTO, up to several seconds."
    )

    assert summary.count > 0
    assert len(points) == len(fct_ms)
    # The qualitative signature of Figure 1(b): an RTO-scale tail exists.
    assert summary.maximum >= 200.0 or metrics.rto_incidence() > 0.0
