"""Micro-benchmarks of the simulation substrate itself.

Not part of the paper's evaluation — these measure the cost of the building
blocks (event loop, queue operations, ECMP hashing, a single TCP transfer)
so regressions in simulator performance are caught and so the wall-clock cost
of the figure-level benchmarks can be understood.
"""

from __future__ import annotations

import pytest

from engine_bench import run_timer_churn
from repro.net.ecmp import select_path
from repro.net.packet import FLAG_DATA, Packet
from repro.net.queues import DropTailQueue
from repro.sim.engine import Simulator
from repro.sim.units import megabits_per_second
from repro.topology.fattree import FatTreeParams, FatTreeTopology
from repro.topology.simple import TwoHostTopology
from repro.transport.base import TcpConfig
from repro.transport.receiver import TcpReceiver
from repro.transport.tcp import TcpSender


@pytest.mark.benchmark(group="micro")
def test_micro_event_loop_throughput(benchmark) -> None:
    """Schedule-and-run cost of 100k chained events."""

    def run_events() -> int:
        simulator = Simulator()
        remaining = [100_000]

        def tick() -> None:
            if remaining[0] > 0:
                remaining[0] -= 1
                simulator.schedule(1e-6, tick)

        simulator.schedule(0.0, tick)
        simulator.run()
        return simulator.events_processed

    events = benchmark(run_events)
    assert events == 100_001


@pytest.mark.benchmark(group="micro")
def test_micro_droptail_queue_operations(benchmark) -> None:
    """Enqueue/dequeue cost for 10k packets."""

    def churn() -> int:
        queue = DropTailQueue(capacity_packets=64)
        delivered = 0
        for index in range(10_000):
            queue.enqueue(Packet(flow_id=1, src=1, dst=2, src_port=index % 65535,
                                 dst_port=80, flags=FLAG_DATA, payload_size=1400))
            if index % 2:
                if queue.dequeue() is not None:
                    delivered += 1
        return delivered

    delivered = benchmark(churn)
    assert delivered > 0


@pytest.mark.benchmark(group="micro")
def test_micro_ecmp_hashing(benchmark) -> None:
    """Path-selection cost for 10k distinct 5-tuples."""

    packets = [
        Packet(flow_id=1, src=1, dst=2, src_port=1024 + index, dst_port=80,
               flags=FLAG_DATA, payload_size=1400)
        for index in range(10_000)
    ]

    def hash_all() -> int:
        return sum(select_path(packet, 16, salt=7) for packet in packets)

    total = benchmark(hash_all)
    assert total > 0


@pytest.mark.benchmark(group="micro")
def test_micro_timer_churn_wheel(benchmark) -> None:
    """RTO-style arm/re-arm churn through the wheel-backed Timer handles."""

    events = benchmark(lambda: run_timer_churn(use_wheel=True, flows=256, ticks=50_000))
    assert events > 50_000


@pytest.mark.benchmark(group="micro")
def test_micro_timer_churn_naive_heap(benchmark) -> None:
    """The same churn as naive schedule/cancel heap events (the baseline the
    wheel is measured against in BENCH_engine.json)."""

    events = benchmark(lambda: run_timer_churn(use_wheel=False, flows=256, ticks=50_000))
    assert events > 50_000


@pytest.mark.benchmark(group="micro")
def test_micro_cancelled_event_compaction(benchmark) -> None:
    """Heavy schedule/cancel churn on the raw heap; hygiene must keep the
    physical queue bounded by the live population, not by total churn."""

    def churn() -> int:
        simulator = Simulator()
        survivors = 0
        event = None
        for index in range(50_000):
            simulator.cancel(event)
            event = simulator.schedule(1.0 + index * 1e-6, lambda: None)
        # One live event out of 50k scheduled: without compaction the heap
        # would hold every dead entry until run().
        assert len(simulator._queue) < 1_000
        simulator.run()
        survivors += simulator.events_processed
        return survivors

    survivors = benchmark(churn)
    assert survivors == 1


@pytest.mark.benchmark(group="micro")
def test_micro_single_tcp_transfer(benchmark) -> None:
    """End-to-end cost of simulating one 500 KB TCP transfer."""

    def transfer() -> float:
        simulator = Simulator()
        topology = TwoHostTopology(simulator, link_rate_bps=megabits_per_second(1000))
        receiver = TcpReceiver(simulator, topology.receiver, local_port=5001,
                               expected_bytes=500_000)
        sender = TcpSender(simulator, topology.sender, topology.receiver.address, 5001,
                           500_000, config=TcpConfig())
        sender.start()
        simulator.run(until=10.0)
        assert receiver.complete
        return receiver.completion_time or 0.0

    fct = benchmark(transfer)
    assert fct > 0.0


@pytest.mark.benchmark(group="micro")
def test_micro_fattree_construction_and_routing(benchmark) -> None:
    """Cost of building and routing a k=8 FatTree (80 switches, 128 hosts)."""

    def build() -> int:
        topology = FatTreeTopology(Simulator(), FatTreeParams(k=8))
        return len(topology.hosts)

    hosts = benchmark(build)
    assert hosts == 128
