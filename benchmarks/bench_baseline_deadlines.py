"""Baseline comparison — deadline-aware single-path transports vs MMPTCP.

The paper's introduction positions MMPTCP against DCTCP, D2TCP and D3, which
"require modifications in the network and/or deadline-awareness at the
application layer".  This benchmark assigns slack-based deadlines to every
short flow and measures the deadline miss rate under TCP, DCTCP, D2TCP
(which consumes the deadlines), MPTCP and MMPTCP — the quantitative version
of that paragraph.
"""

from __future__ import annotations

import pytest

from bench_common import roadmap_config
from repro.experiments.deadline_study import deadline_rows, run_deadline_study
from repro.metrics.reporting import render_table
from repro.traffic.flowspec import (
    PROTOCOL_D2TCP,
    PROTOCOL_DCTCP,
    PROTOCOL_MMPTCP,
    PROTOCOL_MPTCP,
    PROTOCOL_TCP,
)

PROTOCOLS = (PROTOCOL_TCP, PROTOCOL_DCTCP, PROTOCOL_D2TCP, PROTOCOL_MPTCP, PROTOCOL_MMPTCP)
SLACK_FACTOR = 3.0


def _run_deadline_study():
    return run_deadline_study(
        roadmap_config(),
        protocols=PROTOCOLS,
        slack_factor=SLACK_FACTOR,
        num_subflows=8,
    )


@pytest.mark.benchmark(group="baseline-deadlines")
def test_baseline_deadline_miss_rates(benchmark) -> None:
    """Deadline miss rates of the related-work baselines vs MMPTCP."""
    outcomes = benchmark.pedantic(_run_deadline_study, rounds=1, iterations=1)

    rows = deadline_rows(outcomes)
    print(f"\nBaselines — deadline study (slack factor {SLACK_FACTOR})")
    print(
        render_table(
            ["protocol", "short flows", "deadline misses", "mean FCT (ms)",
             "p99 FCT (ms)", "RTO incidence", "completed"],
            [
                [
                    row["protocol"],
                    row["short_flows"],
                    f"{100 * row['deadline_miss_rate']:.1f}%",
                    f"{row['mean_fct_ms']:.1f}",
                    f"{row['p99_fct_ms']:.1f}",
                    f"{100 * row['rto_incidence']:.1f}%",
                    f"{100 * row['completion_rate']:.1f}%",
                ]
                for row in rows
            ],
        )
    )
    print(
        "Paper (introduction): deadline-aware single-path transports need ECN and\n"
        "application-layer deadlines; MMPTCP targets low short-flow latency with\n"
        "neither.  D2TCP consumes the deadlines here; the others ignore them."
    )

    for protocol, outcome in outcomes.items():
        # Every transport keeps delivering its short flows at this load.
        assert outcome.completion_rate > 0.8, protocol
        assert 0.0 <= outcome.deadline_miss_rate <= 1.0

    # The ECN-based baselines (paired with marking switches) should not miss
    # more deadlines than plain drop-tail TCP on the same workload.
    assert outcomes[PROTOCOL_D2TCP].deadline_miss_rate <= (
        outcomes[PROTOCOL_TCP].deadline_miss_rate + 0.1
    )
    # MMPTCP's miss rate stays competitive with the deadline-aware baseline
    # despite using no deadline information at all (the paper's pitch).
    assert outcomes[PROTOCOL_MMPTCP].deadline_miss_rate <= (
        outcomes[PROTOCOL_D2TCP].deadline_miss_rate + 0.25
    )
