"""Flow-level tier benchmark: µs/flow vs the packet engine, and 100× scale.

The fidelity-tier counterpart of ``packet_bench.py``.  Three measurements
make up the ``flow_level`` section of ``BENCH_engine.json``:

* ``matched`` — the golden tiny MMPTCP scenario run end-to-end at both
  fidelities.  Identical workload, identical seed; the packet engine pays
  tens of thousands of per-packet events where the fluid engine pays a
  handful of rate recomputations, so the headline ``speedup_us_per_flow``
  (packet µs/flow over fluid µs/flow) is the cost of packet fidelity.
* ``loadsweep_100x`` — a two-point arrival-rate sweep at ~100× the tiny
  workload's flow count, flow fidelity only.  The packet engine cannot
  finish this in benchmark time; the fluid tier clears it in a few events
  per flow.
* ``incast_100x`` — staggered rounds of all-to-one fan-in (every host takes
  a turn as the receiver) totalling ~100× the tiny flow count: the
  synchronized-arrival coalescing path under sustained contention.

Usage::

    python benchmarks/flowlevel_bench.py --output BENCH_engine.json
    python benchmarks/flowlevel_bench.py --check BENCH_engine.json [--tolerance 0.25]

``--output`` *merges* a ``flow_level`` section into the artifact (the
sections written by ``engine_bench.py`` / ``packet_bench.py`` are
preserved).  ``--check`` re-measures and fails (exit 1) if the fluid tier's
*normalised* µs/flow (divided by the same run's ``event_chain`` µs/event,
so machine speed cancels out) regressed more than ``tolerance``, if the
matched-scale speedup fell below ``--min-speedup`` (default 10×), or if
either large run's flow count fell below ``--min-scale`` (default 100×) the
matched workload.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

if __package__ in (None, ""):  # running as a script
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from engine_bench import run_event_chain

from repro.experiments.config import FIDELITY_FLOW, FIDELITY_PACKET
from repro.experiments.loadsweep import run_load_sweep
from repro.experiments.runner import build_topology, run_experiment
from repro.scenarios import tiny_config
from repro.sim.engine import Simulator
from repro.traffic.flowspec import PROTOCOL_MMPTCP, FlowSpec
from repro.traffic.workloads import Workload

#: Load factors for the large sweep — enough to show the load axis without
#: dominating benchmark wall time.
SWEEP_FACTORS = (0.5, 1.0)

#: Fan-in rounds for the large incast (every host receives once per round);
#: 6 rounds x 16 receivers x 15 senders = 1440 flows, 120x the matched run.
INCAST_ROUNDS = 6
INCAST_RESPONSE_BYTES = 50_000

#: The matched fluid run finishes in single-digit milliseconds, far below
#: stable timer resolution — time a batch of back-to-back runs instead.
MATCHED_FLUID_BATCH = 20


def _matched_config(fidelity: str):
    return tiny_config(protocol=PROTOCOL_MMPTCP).with_updates(fidelity=fidelity)


def _scaled_config(flow_target: int):
    """The tiny fabric driven at ``flow_target`` short flows, flow fidelity."""
    return tiny_config(protocol=PROTOCOL_MMPTCP).with_updates(
        fidelity=FIDELITY_FLOW,
        max_short_flows=flow_target,
        short_flow_rate_per_sender=1200.0,
        arrival_window_s=1.2,
    )


def _host_names() -> List[str]:
    topology = build_topology(_matched_config(FIDELITY_PACKET), Simulator())
    return sorted(host.name for host in topology.hosts)


def _incast_workload(hosts: List[str]) -> Workload:
    """Staggered all-to-one rounds: every host takes a turn as receiver."""
    flows: List[FlowSpec] = []
    for round_index in range(INCAST_ROUNDS):
        start = 0.01 + 0.05 * round_index
        for receiver_index, receiver in enumerate(hosts):
            for sender in hosts:
                if sender == receiver:
                    continue
                flows.append(
                    FlowSpec(
                        flow_id=len(flows),
                        source=sender,
                        destination=receiver,
                        size_bytes=INCAST_RESPONSE_BYTES,
                        start_time=start + 1e-4 * receiver_index,
                        protocol=PROTOCOL_MMPTCP,
                        num_subflows=4,
                    )
                )
    return Workload(flows=flows)


def _timed_run(runner, repeats: int) -> Tuple[float, object]:
    """Best-of-``repeats`` wall time for ``runner()``, plus its last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = runner()
        best = min(best, time.perf_counter() - start)
    return best, result


def _run_stats(elapsed_s: float, flows: int, events: int) -> Dict[str, float]:
    return {
        "flows": flows,
        "events": events,
        "events_per_flow": round(events / flows, 2),
        "us_per_flow": round(elapsed_s / flows * 1e6, 2),
    }


def build_report(repeats: int = 3) -> Dict[str, object]:
    """The ``flow_level`` section of BENCH_engine.json."""
    # Machine-speed proxy shared with engine_bench/packet_bench.
    chain_best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        events = run_event_chain()
        chain_best = min(chain_best, (time.perf_counter() - start) / events * 1e6)

    packet_s, packet = _timed_run(
        lambda: run_experiment(_matched_config(FIDELITY_PACKET)), repeats
    )
    def run_fluid_batch():
        for _ in range(MATCHED_FLUID_BATCH):
            result = run_experiment(_matched_config(FIDELITY_FLOW))
        return result

    fluid_batch_s, fluid = _timed_run(run_fluid_batch, repeats)
    fluid_s = fluid_batch_s / MATCHED_FLUID_BATCH
    if fluid.workload_size != packet.workload_size:
        raise RuntimeError(
            "matched runs diverged: "
            f"{fluid.workload_size} fluid vs {packet.workload_size} packet flows"
        )

    matched = {
        "packet": _run_stats(packet_s, packet.workload_size, packet.events_processed),
        "flow": _run_stats(fluid_s, fluid.workload_size, fluid.events_processed),
    }
    speedup = matched["packet"]["us_per_flow"] / matched["flow"]["us_per_flow"]

    flow_target = packet.workload_size * 100

    sweep_s, points = _timed_run(
        lambda: run_load_sweep(
            _scaled_config(flow_target),
            protocols=(PROTOCOL_MMPTCP,),
            load_factors=SWEEP_FACTORS,
        ),
        repeats,
    )
    sweep_flows = sum(point.result.workload_size for point in points)
    sweep_events = sum(point.result.events_processed for point in points)
    loadsweep = _run_stats(sweep_s, sweep_flows, sweep_events)
    loadsweep["completion_rate"] = round(
        min(point.completion_rate for point in points), 4
    )

    hosts = _host_names()
    incast_config = _matched_config(FIDELITY_FLOW)
    incast_workload = _incast_workload(hosts)
    incast_s, incast = _timed_run(
        lambda: run_experiment(incast_config, workload=incast_workload), repeats
    )
    incast_stats = _run_stats(
        incast_s, incast.workload_size, incast.events_processed
    )
    incast_stats["completion_rate"] = round(
        incast.metrics.short_flow_completion_rate(), 4
    )

    return {
        "generated_by": "benchmarks/flowlevel_bench.py",
        "event_chain_us_per_event": round(chain_best, 4),
        "matched": matched,
        "speedup_us_per_flow": round(speedup, 1),
        "loadsweep_100x": loadsweep,
        "incast_100x": incast_stats,
        # Fluid-tier µs/flow divided by this run's event_chain µs/event: the
        # machine-independent view the CI regression gate compares.
        "normalised": {
            "flow_matched": round(matched["flow"]["us_per_flow"] / chain_best, 4),
            "loadsweep_100x": round(loadsweep["us_per_flow"] / chain_best, 4),
            "incast_100x": round(incast_stats["us_per_flow"] / chain_best, 4),
        },
    }


def merge_output(report: Dict[str, object], path: Path) -> None:
    """Write ``report`` under the ``flow_level`` key, preserving other sections."""
    artifact: Dict[str, object] = {}
    if path.exists():
        artifact = json.loads(path.read_text())
    artifact["flow_level"] = report
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")


def check(report: Dict[str, object], baseline_path: Path, tolerance: float,
          min_speedup: float, min_scale: float) -> int:
    baseline = json.loads(baseline_path.read_text()).get("flow_level")
    failures = []
    if baseline is None:
        failures.append(f"{baseline_path} has no flow_level section")
    else:
        for name, base_norm in baseline["normalised"].items():
            current = report["normalised"].get(name)
            if current is None:
                failures.append(f"workload {name!r} missing from the current run")
                continue
            if current > base_norm * (1.0 + tolerance):
                failures.append(
                    f"{name}: normalised µs/flow {current:.3f} regressed more "
                    f"than {tolerance:.0%} over baseline {base_norm:.3f}"
                )
    speedup = float(report["speedup_us_per_flow"])
    if speedup < min_speedup:
        failures.append(
            f"matched-scale speedup {speedup:.1f}x fell below the required "
            f"{min_speedup:.0f}x"
        )
    matched_flows = report["matched"]["flow"]["flows"]
    for name in ("loadsweep_100x", "incast_100x"):
        section = report[name]
        if section["flows"] < min_scale * matched_flows:
            failures.append(
                f"{name}: {section['flows']} flows is below {min_scale:.0f}x "
                f"the matched workload ({matched_flows} flows)"
            )
        if section["completion_rate"] < 0.95:
            failures.append(
                f"{name}: completion rate {section['completion_rate']:.3f} "
                "fell below 0.95"
            )
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"flow-level benchmarks within {tolerance:.0%} of baseline; "
            f"speedup {speedup:.1f}x, "
            f"loadsweep {report['loadsweep_100x']['flows']} flows at "
            f"{report['loadsweep_100x']['events_per_flow']:.1f} events/flow, "
            f"incast {report['incast_100x']['flows']} flows at "
            f"{report['incast_100x']['events_per_flow']:.1f} events/flow"
        )
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=None,
                        help="merge the flow_level section into this JSON artifact")
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="compare against a committed baseline and exit "
                             "non-zero on regression")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed normalised µs/flow regression (default 0.25)")
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="required matched-scale packet/fluid µs-per-flow "
                             "ratio (default 10)")
    parser.add_argument("--min-scale", type=float, default=100.0,
                        help="required large-run flow count as a multiple of "
                             "the matched workload (default 100)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats (default 3)")
    args = parser.parse_args(argv)

    report = build_report(repeats=args.repeats)
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.output is not None:
        merge_output(report, args.output)
        print(f"merged flow_level into {args.output}", file=sys.stderr)
    if args.check is not None:
        return check(report, args.check, args.tolerance, args.min_speedup,
                     args.min_scale)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
