"""Ablation A — phase-switching strategies (Section 2, "Phase Switching").

The paper proposes two switching strategies (data volume and congestion
event) and reports that data-volume switching does not hurt long-flow
throughput because the freshly opened subflows ramp up within a few RTTs.
This ablation compares:

* data-volume switching at several thresholds,
* congestion-event switching,
* never switching (pure packet scatter), and
* plain MPTCP (switching "at time zero", as a reference).
"""

from __future__ import annotations

import pytest

from bench_common import SUMMARY_HEADERS, small_config, summary_row
from repro.experiments.runner import run_experiment
from repro.metrics.reporting import render_table
from repro.traffic.flowspec import PROTOCOL_MMPTCP, PROTOCOL_MPTCP


def _run_switching_ablation():
    config = small_config()
    variants = {
        "mptcp (switch at t=0)": config.with_protocol(PROTOCOL_MPTCP, 8),
        "mmptcp volume 70KB": config.with_protocol(PROTOCOL_MMPTCP, 8).with_updates(
            switching_policy="data_volume", switching_threshold_bytes=70_000
        ),
        "mmptcp volume 140KB": config.with_protocol(PROTOCOL_MMPTCP, 8).with_updates(
            switching_policy="data_volume", switching_threshold_bytes=140_000
        ),
        "mmptcp volume 280KB": config.with_protocol(PROTOCOL_MMPTCP, 8).with_updates(
            switching_policy="data_volume", switching_threshold_bytes=280_000
        ),
        "mmptcp congestion-event": config.with_protocol(PROTOCOL_MMPTCP, 8).with_updates(
            switching_policy="congestion_event"
        ),
        "packet scatter (never switch)": config.with_protocol(PROTOCOL_MMPTCP, 8).with_updates(
            switching_policy="never"
        ),
    }
    return {label: run_experiment(cfg) for label, cfg in variants.items()}


@pytest.mark.benchmark(group="ablation-switching")
def test_ablation_phase_switching_strategies(benchmark) -> None:
    """Compare switching policies on short-flow FCT and long-flow throughput."""
    results = benchmark.pedantic(_run_switching_ablation, rounds=1, iterations=1)

    rows = [summary_row(label, result.metrics.summary_dict()) for label, result in results.items()]
    print("\nAblation A — phase-switching strategies")
    print(render_table(SUMMARY_HEADERS, rows))
    print(
        "Paper: data-volume switching does not reduce long-flow throughput; short\n"
        "flows should complete during the packet-scatter phase."
    )

    mptcp_tput = results["mptcp (switch at t=0)"].metrics.mean_long_flow_throughput_bps()
    for label, result in results.items():
        metrics = result.metrics
        assert metrics.short_flow_completion_rate() > 0.9, label
        if label.startswith("mmptcp volume"):
            # Long-flow throughput parity with plain MPTCP (within 35 %).
            tput = metrics.mean_long_flow_throughput_bps()
            assert abs(tput - mptcp_tput) / max(mptcp_tput, 1e-9) < 0.35, label

    # Short flows should never switch phases under the volume policies >= 70 KB.
    for label in ("mmptcp volume 140KB", "mmptcp volume 280KB"):
        records = results[label].metrics.short_flows
        assert all(record.phase_at_completion == "packet_scatter" for record in records), label
