"""Roadmap experiment — burst (incast) tolerance and multi-homing.

Section 3's roadmap argues that (a) the packet-scatter phase gracefully
handles sudden bursts because a burst is spread over many queues, and (b)
multi-homed topologies increase the number of parallel paths at the access
layer and therefore the burst tolerance.  This benchmark runs a synchronised
fan-in (incast) of 70 KB responses into one receiver on:

* a single-homed FatTree with TCP, MPTCP(8) and MMPTCP, and
* a dual-homed FatTree with MMPTCP,

comparing completion times and retransmission timeouts.
"""

from __future__ import annotations

import random

import pytest

from bench_common import base_config
from repro.experiments.runner import build_topology, create_flow
from repro.metrics.collector import ExperimentMetrics
from repro.metrics.records import FlowRecord
from repro.metrics.reporting import render_table
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.flowspec import PROTOCOL_MMPTCP, PROTOCOL_MPTCP, PROTOCOL_TCP
from repro.traffic.workloads import build_incast_workload

FAN_IN = 24
RESPONSE_BYTES = 70_000


def _run_incast(protocol: str, topology_kind: str) -> ExperimentMetrics:
    config = base_config().with_updates(
        topology=topology_kind,
        protocol=protocol,
        hosts_per_edge=8,
        arrival_window_s=0.1,
        drain_time_s=2.5,
    )
    simulator = Simulator()
    streams = RandomStreams(config.seed)
    topology = build_topology(config, simulator)
    rng = random.Random(config.seed)
    hosts = [host.name for host in topology.hosts]
    receiver_name = hosts[0]
    senders = rng.sample(hosts[1:], FAN_IN)
    workload = build_incast_workload(
        senders, receiver_name, response_size_bytes=RESPONSE_BYTES,
        start_time=0.01, protocol=protocol, num_subflows=8,
    )
    instances = []
    for spec in workload.flows:
        instance = create_flow(spec, config, topology, simulator, streams)
        instances.append(instance)
        simulator.schedule_at(spec.start_time, instance.sender.start)
    simulator.run(until=config.horizon_s)

    from repro.experiments.runner import _record_for

    metrics = ExperimentMetrics(duration_s=config.horizon_s)
    metrics.flows = [_record_for(instance) for instance in instances]
    metrics.network = topology.monitor().snapshot(config.horizon_s)
    return metrics


def _run_all_incast_variants():
    return {
        "tcp / fat-tree": _run_incast(PROTOCOL_TCP, "fattree"),
        "mptcp-8 / fat-tree": _run_incast(PROTOCOL_MPTCP, "fattree"),
        "mmptcp / fat-tree": _run_incast(PROTOCOL_MMPTCP, "fattree"),
        "mmptcp / dual-homed": _run_incast(PROTOCOL_MMPTCP, "dualhomed"),
    }


@pytest.mark.benchmark(group="roadmap-incast")
def test_roadmap_incast_burst_tolerance(benchmark) -> None:
    """Synchronised 24-to-1 incast of 70 KB responses under each transport."""
    results = benchmark.pedantic(_run_all_incast_variants, rounds=1, iterations=1)

    rows = []
    for label, metrics in results.items():
        summary = metrics.short_flow_fct_summary()
        rows.append([
            label,
            f"{100 * metrics.short_flow_completion_rate():.1f}%",
            f"{summary.mean:.1f}",
            f"{summary.p99:.1f}",
            f"{100 * metrics.rto_incidence():.1f}%",
        ])
    print(
        f"\nRoadmap — incast: {FAN_IN} senders, "
        f"{RESPONSE_BYTES // 1000} KB responses, one receiver"
    )
    print(
        render_table(
            ["configuration", "completed", "mean FCT (ms)", "p99 FCT (ms)", "RTO incidence"],
            rows,
        )
    )
    print(
        "Paper (roadmap): packet scatter absorbs bursts across many queues; dual\n"
        "homing adds access-layer paths and hence burst tolerance."
    )

    for label, metrics in results.items():
        assert metrics.short_flow_completion_rate() >= 0.9, label
    # The incast bottleneck is the receiver's access link, so no protocol can
    # beat the serialisation bound; the claim under test is about RTO avoidance.
    assert (
        results["mmptcp / fat-tree"].rto_incidence()
        <= results["mptcp-8 / fat-tree"].rto_incidence() + 1e-9
    )
