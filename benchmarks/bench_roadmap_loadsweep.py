"""Roadmap experiment — effect of network load (MPTCP vs MMPTCP).

Section 3's roadmap lists "network loads" among the scenarios being studied.
This benchmark sweeps the short-flow arrival rate around the Figure 1
operating point for MPTCP(8) and MMPTCP(8) and reports how the mean / tail
completion times and RTO incidence evolve; the expectation from the paper's
argument is that MMPTCP's advantage (fewer RTO-scale completions) holds or
grows as the offered load rises.
"""

from __future__ import annotations

import pytest

from bench_common import roadmap_config
from repro.experiments.loadsweep import load_sweep_rows, points_by_protocol, run_load_sweep
from repro.metrics.reporting import render_table
from repro.traffic.flowspec import PROTOCOL_MMPTCP, PROTOCOL_MPTCP

LOAD_FACTORS = (0.5, 1.0, 2.0)


def _run_sweep():
    return run_load_sweep(
        roadmap_config(),
        protocols=(PROTOCOL_MPTCP, PROTOCOL_MMPTCP),
        load_factors=LOAD_FACTORS,
        num_subflows=8,
    )


@pytest.mark.benchmark(group="roadmap-loadsweep")
def test_roadmap_load_sweep_mptcp_vs_mmptcp(benchmark) -> None:
    """Short-flow completion statistics as the offered load grows."""
    points = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)

    rows = load_sweep_rows(points)
    print("\nRoadmap — load sweep: short-flow statistics vs offered load")
    print(
        render_table(
            ["protocol", "load", "mean FCT (ms)", "p99 FCT (ms)", "RTO incidence",
             "> 200 ms", "completed", "long tput (Mbps)"],
            [
                [
                    row["protocol"],
                    f"{row['load_factor']:.1f}x",
                    f"{row['mean_fct_ms']:.1f}",
                    f"{row['p99_fct_ms']:.1f}",
                    f"{100 * row['rto_incidence']:.1f}%",
                    f"{100 * row['tail_over_200ms']:.1f}%",
                    f"{100 * row['completion_rate']:.1f}%",
                    f"{row['long_throughput_mbps']:.1f}",
                ]
                for row in rows
            ],
        )
    )
    print(
        "Paper (roadmap): MMPTCP's short-flow advantage should persist across\n"
        "network loads; long-flow throughput stays comparable to MPTCP."
    )

    grouped = points_by_protocol(points)
    assert set(grouped) == {PROTOCOL_MPTCP, PROTOCOL_MMPTCP}
    assert all(len(series) == len(LOAD_FACTORS) for series in grouped.values())

    # Every point at or below 2x load keeps a high completion rate.
    for point in points:
        assert point.completion_rate > 0.8, (point.protocol, point.load_factor)

    # Summed over the sweep, MMPTCP suffers RTOs on no more short flows than
    # MPTCP (the paper's central claim, integrated over load).
    mptcp_rto = sum(point.rto_incidence for point in grouped[PROTOCOL_MPTCP])
    mmptcp_rto = sum(point.rto_incidence for point in grouped[PROTOCOL_MMPTCP])
    assert mmptcp_rto <= mptcp_rto + 0.05
