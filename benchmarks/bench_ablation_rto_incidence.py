"""Ablation C — RTO incidence vs subflow count (the mechanism behind Figure 1a).

The paper attributes the growth of the Figure 1(a) standard deviation to the
number of connections experiencing one or more retransmission timeouts
"significantly increasing" with the subflow count.  This benchmark measures
that mechanism directly for MPTCP, and contrasts it with MMPTCP at the same
nominal subflow count.
"""

from __future__ import annotations

import pytest

from bench_common import base_config
from repro.experiments.runner import run_experiment
from repro.metrics.reporting import render_table
from repro.traffic.flowspec import PROTOCOL_MMPTCP, PROTOCOL_MPTCP

SUBFLOW_COUNTS = (1, 4, 8)


def _run_rto_incidence():
    # Ablation C is the mechanism behind Figure 1(a), so it runs on the same
    # configuration as the Figure 1 benchmarks (the smaller ablation config
    # is too lightly loaded for the RTO effect to be measurable).
    config = base_config()
    results = {}
    for count in SUBFLOW_COUNTS:
        results[f"mptcp-{count}"] = run_experiment(
            config.with_protocol(PROTOCOL_MPTCP, count)
        )
    results["mmptcp-8"] = run_experiment(config.with_protocol(PROTOCOL_MMPTCP, 8))
    return results


@pytest.mark.benchmark(group="ablation-rto")
def test_ablation_rto_incidence_vs_subflows(benchmark) -> None:
    """Fraction of short flows with >= 1 RTO as the subflow count grows."""
    results = benchmark.pedantic(_run_rto_incidence, rounds=1, iterations=1)

    rows = []
    for label, result in results.items():
        metrics = result.metrics
        shorts = metrics.short_flows
        total_rtos = sum(record.rto_events for record in shorts)
        rows.append([
            label,
            f"{100 * metrics.rto_incidence():.1f}%",
            total_rtos,
            f"{metrics.short_flow_fct_summary().std:.1f}",
            f"{100 * metrics.tail_fraction(200.0):.1f}%",
        ])
    print("\nAblation C — RTO incidence for short flows")
    print(
        render_table(
            ["configuration", "flows with >= 1 RTO", "total RTOs",
             "std FCT (ms)", "flows > 200 ms"],
            rows,
        )
    )
    print(
        "Paper: the number of connections with one or more RTOs grows significantly\n"
        "with the subflow count; MMPTCP largely avoids them."
    )

    mptcp1 = results["mptcp-1"].metrics
    mptcp8 = results["mptcp-8"].metrics
    mmptcp8 = results["mmptcp-8"].metrics
    # RTO incidence grows (or at least does not shrink) with more subflows.
    # A 2 % tolerance absorbs single-flow sampling noise at this scale
    # (one flow out of ~80 is 1.25 %).
    assert mptcp8.rto_incidence() >= mptcp1.rto_incidence() - 0.02
    # MMPTCP at the same nominal subflow count suffers no more RTOs than MPTCP.
    assert mmptcp8.rto_incidence() <= mptcp8.rto_incidence() + 0.02
