"""Roadmap experiment — effect of hotspots (MPTCP vs MMPTCP).

Section 3's roadmap lists "the effect of hotspots" among the scenarios being
studied: a subset of receivers attracts a disproportionate share of traffic,
concentrating load on a few edge links.  This benchmark skews half of the
senders towards one eighth of the hosts and compares MPTCP(8) and MMPTCP(8)
on the identical skewed workload.
"""

from __future__ import annotations

import pytest

from bench_common import roadmap_config
from repro.experiments.hotspot import hotspot_rows, run_hotspot_comparison
from repro.metrics.reporting import render_table
from repro.traffic.flowspec import PROTOCOL_MMPTCP, PROTOCOL_MPTCP

HOTSPOT_FRACTION = 0.125
LOAD_FRACTION = 0.5


def _run_hotspot():
    return run_hotspot_comparison(
        roadmap_config(),
        protocols=(PROTOCOL_MPTCP, PROTOCOL_MMPTCP),
        hotspot_fraction=HOTSPOT_FRACTION,
        load_fraction=LOAD_FRACTION,
        num_subflows=8,
    )


@pytest.mark.benchmark(group="roadmap-hotspot")
def test_roadmap_hotspot_skew(benchmark) -> None:
    """MPTCP vs MMPTCP when half the senders target one eighth of the hosts."""
    outcomes = benchmark.pedantic(_run_hotspot, rounds=1, iterations=1)

    rows = hotspot_rows(outcomes)
    print(f"\nRoadmap — hotspots: {int(100 * LOAD_FRACTION)}% of senders redirected "
          f"to {int(100 * HOTSPOT_FRACTION)}% of hosts")
    print(
        render_table(
            ["protocol", "mean FCT (ms)", "std FCT (ms)", "p99 FCT (ms)",
             "RTO incidence", "> 200 ms", "completed", "edge loss", "long tput (Mbps)"],
            [
                [
                    row["protocol"],
                    f"{row['mean_fct_ms']:.1f}",
                    f"{row['std_fct_ms']:.1f}",
                    f"{row['p99_fct_ms']:.1f}",
                    f"{100 * row['rto_incidence']:.1f}%",
                    f"{100 * row['tail_over_200ms']:.1f}%",
                    f"{100 * row['completion_rate']:.1f}%",
                    f"{100 * row['edge_loss_rate']:.3f}%",
                    f"{row['long_throughput_mbps']:.1f}",
                ]
                for row in rows
            ],
        )
    )
    print(
        "Paper (roadmap): hotspot skew concentrates congestion; packet scatter\n"
        "still spreads each flow's packets, so MMPTCP's tail should not be worse\n"
        "than MPTCP's."
    )

    mptcp = outcomes[PROTOCOL_MPTCP]
    mmptcp = outcomes[PROTOCOL_MMPTCP]
    # Both protocols keep delivering under skew.
    assert mptcp.completion_rate > 0.8
    assert mmptcp.completion_rate > 0.8
    # MMPTCP completes at least as large a fraction of its short flows.
    assert mmptcp.completion_rate >= mptcp.completion_rate - 0.05
    # And its RTO incidence is not meaningfully worse than MPTCP's.
    assert mmptcp.rto_incidence <= mptcp.rto_incidence + 0.05
