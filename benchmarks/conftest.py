"""Pytest configuration for the benchmark suite.

Makes the sibling ``bench_common`` module importable regardless of the
directory pytest is invoked from, registers the ``benchmark`` marker, and
re-emits each benchmark's printed figure/table reproduction after the test
finishes — with capturing suspended — so the tables appear in the console
*and* in piped output (``pytest benchmarks/ --benchmark-only | tee
bench_output.txt``) without needing ``-s``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))


def pytest_configure(config) -> None:
    config.addinivalue_line("markers", "benchmark: benchmark harness tests")


@pytest.fixture(autouse=True)
def _show_reproduction_tables(request, capsys):
    """Replay each benchmark's printed reproduction with capture suspended.

    ``capfd.disabled()`` only reaches a real terminal; suspending the capture
    manager and writing the captured text to the process's stdout also works
    when the output is piped or redirected, which is how ``bench_output.txt``
    is produced.
    """
    yield
    captured = capsys.readouterr()
    if not captured.out.strip():
        return
    capmanager = request.config.pluginmanager.getplugin("capturemanager")
    with capmanager.global_and_fixture_disabled():
        sys.stdout.write(captured.out)
        sys.stdout.flush()
