"""Shared configuration and helpers for the benchmark harnesses.

Every benchmark regenerates one of the paper's figures or reported
statistics on a scaled-down FatTree (see DESIGN.md for the substitution
rationale).  Two scales are provided:

* the default ``BENCH`` scale finishes the whole suite in a few minutes on a
  laptop;
* setting the environment variable ``REPRO_BENCH_SCALE=large`` (or ``paper``)
  selects progressively larger fabrics/workloads for higher-fidelity runs.

Benchmarks print the same rows/series the paper reports, so running
``pytest benchmarks/ --benchmark-only -s`` doubles as the reproduction log.
"""

from __future__ import annotations

import os
from typing import Dict

from repro.experiments.config import ExperimentConfig
from repro.sim.units import megabits_per_second, megabytes

#: Which scale to run: "tiny" (smoke tests), "quick" (default), "large", or "paper".
SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()


def _tiny_config() -> ExperimentConfig:
    """16-host fabric and a handful of flows; sub-second per run.

    Exists for the smoke tests in ``tests/test_benchmarks_smoke.py``: the
    entry point of every benchmark runs at this scale under plain pytest so
    the sweep plumbing cannot rot unnoticed.  Too small for any of the
    paper's qualitative claims to hold — never assert claims at this scale.
    """
    return ExperimentConfig(
        fattree_k=4,
        hosts_per_edge=2,
        link_rate_bps=megabits_per_second(100),
        arrival_window_s=0.05,
        drain_time_s=0.3,
        short_flow_rate_per_sender=6.0,
        long_flow_size_bytes=200_000,
        max_short_flows=8,
        initial_cwnd_segments=2,
        seed=20150817,
    )


def _quick_config() -> ExperimentConfig:
    """64-host, 4:1 over-subscribed FatTree; ~100 short flows; ~15 s per run."""
    return ExperimentConfig(
        fattree_k=4,
        hosts_per_edge=8,
        link_rate_bps=megabits_per_second(100),
        arrival_window_s=0.25,
        drain_time_s=1.0,
        short_flow_rate_per_sender=7.0,
        long_flow_size_bytes=megabytes(3),
        max_short_flows=120,
        queue_capacity_packets=100,
        # The paper-era ns-3 TCP/MPTCP models start with a 2-segment window;
        # this is also what makes MPTCP sub-flow windows so fragile.
        initial_cwnd_segments=2,
        seed=20150817,  # SIGCOMM'15 conference date; any fixed seed works
    )


def _large_config() -> ExperimentConfig:
    """128-host fabric with more flows; minutes per run."""
    return _quick_config().with_updates(
        fattree_k=8,
        hosts_per_edge=8,
        arrival_window_s=0.5,
        short_flow_rate_per_sender=10.0,
        long_flow_size_bytes=megabytes(10),
        max_short_flows=600,
    )


def _paper_config() -> ExperimentConfig:
    """The paper's 512-server fabric.  Hours per run in pure Python."""
    from repro.experiments.config import paper_scale

    return paper_scale(seed=20150817)


def base_config() -> ExperimentConfig:
    """The benchmark configuration for the selected scale."""
    if SCALE == "tiny":
        return _tiny_config()
    if SCALE in ("large", "big"):
        return _large_config()
    if SCALE == "paper":
        return _paper_config()
    return _quick_config()


def tiny_config() -> ExperimentConfig:
    """The smoke-test configuration, regardless of the selected scale."""
    return _tiny_config()


def small_config() -> ExperimentConfig:
    """A smaller workload used by the ablation benchmarks.

    Keeps the 4:1 over-subscription of the base configuration (the congestion
    that makes MPTCP's thin sub-flow windows time out is the very mechanism
    the ablations measure) but caps the short-flow count and shortens the
    arrival window so each ablation variant runs in a few tens of seconds.
    """
    return base_config().with_updates(
        max_short_flows=80,
        short_flow_rate_per_sender=6.0,
        long_flow_size_bytes=megabytes(3),
        arrival_window_s=0.2,
        drain_time_s=1.0,
    )


def roadmap_config() -> ExperimentConfig:
    """A light configuration for the roadmap benchmarks (coexistence, load
    sweep, hotspots, deadlines).

    These benchmarks compare many protocol/parameter variants per run, so the
    fabric is halved (2:1 over-subscription) and the flow count capped to keep
    each variant to a few seconds.  The claims they check are ordering/parity
    claims, which are insensitive to this scaling; rerun with
    ``REPRO_BENCH_SCALE=large`` for the 4:1 fabric.
    """
    return base_config().with_updates(
        hosts_per_edge=4,
        max_short_flows=60,
        short_flow_rate_per_sender=6.0,
        long_flow_size_bytes=megabytes(2),
        arrival_window_s=0.2,
        drain_time_s=1.0,
    )


def summary_row(label: str, summary: Dict[str, float]) -> list:
    """A compact row of the headline metrics, used by several benchmarks."""
    return [
        label,
        f"{summary['short_fct_mean_ms']:.1f}",
        f"{summary['short_fct_std_ms']:.1f}",
        f"{summary['short_fct_p99_ms']:.1f}",
        f"{100 * summary['rto_incidence']:.1f}%",
        f"{100 * summary['short_completion_rate']:.1f}%",
        f"{summary['long_flow_throughput_mbps']:.1f}",
        f"{100 * summary['core_loss_rate']:.3f}%",
        f"{100 * summary['core_utilisation']:.1f}%",
    ]


SUMMARY_HEADERS = [
    "configuration",
    "mean FCT (ms)",
    "std FCT (ms)",
    "p99 FCT (ms)",
    "RTO incidence",
    "completed",
    "long tput (Mbps)",
    "core loss",
    "core util",
]
