"""Packet-path micro-benchmark: measures µs/packet and extends BENCH_engine.json.

The data-plane counterpart of ``engine_bench.py``.  Two workload families
exercise the per-packet cost of construct → hash → forward → enqueue →
serialise, each at three scales (tiny / small / medium):

* ``forward`` — a 4-way ECMP fabric (host — edge — 4 cores — edge — host)
  with deep queues: every packet crosses one hashed multi-candidate hop and
  two single-candidate hops, half on stable flow 5-tuples (per-switch digest
  memo hits) and half packet-scattered (fresh source port per packet, memo
  misses), mirroring MMPTCP's traffic mix.
* ``incast`` — 8 senders bursting through one switch into a 16-packet
  drop-tail bottleneck: the drop/accounting path under synchronised load.

Each family runs twice: on the real data plane (pooled packets, precomputed
``size``/``flow_bytes``, memoised salted digests, flattened switch/queue hot
paths) and on a self-contained **naive reference** that re-implements the
seed data plane (fresh allocation per packet, ``size`` as a property,
per-hop FNV over the 5-tuple, hook-based queues, list-building ECMP
selection).  Both produce identical delivery/drop counts; the headline
``forwarding_improvement_pct`` compares their µs/packet at the medium scale,
exactly as ``timer_churn_improvement_pct`` compares wheel vs naive timers.

Usage::

    python benchmarks/packet_bench.py --output BENCH_engine.json
    python benchmarks/packet_bench.py --check BENCH_engine.json [--tolerance 0.20]

``--output`` *merges* a ``packet_path`` section into the artifact (the
engine workloads written by ``engine_bench.py`` are preserved).  ``--check``
re-measures and fails (exit 1) if any fast workload's *normalised*
µs/packet (divided by the same run's ``event_chain`` µs/event, so machine
speed cancels out) regressed more than ``tolerance`` against the committed
baseline, or if the forwarding improvement fell below ``--min-improvement``
(default 25%).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

if __package__ in (None, ""):  # running as a script
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from engine_bench import run_event_chain

from itertools import count

from repro.net.host import Host
from repro.net.link import Interface, connect
from repro.net.packet import DEFAULT_HEADER_BYTES, FLAG_DATA, acquire_packet
from repro.net.queues import DropTailQueue, Queue, QueueStats
from repro.net.switch import Switch
from repro.sim.engine import Simulator
from repro.sim.units import transmission_delay

#: Packets injected per run at each scale.
SCALES: Dict[str, int] = {"tiny": 2_000, "small": 8_000, "medium": 24_000}

#: The scale whose naive-vs-fast ratio is the headline improvement figure.
HEADLINE_SCALE = "medium"

_RATE_BPS = 10e9
_DELAY_S = 1e-6
_MSS = 1400
_DST_PORT = 5001

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


# ---------------------------------------------------------------------------
# Naive reference data plane (the seed implementation, kept runnable so the
# improvement is measurable on every machine — mirrors timer_churn_heap)
# ---------------------------------------------------------------------------


_naive_packet_ids = count(1)


class _NaivePacket:
    """Seed-style packet: freshly allocated per send, full header field set,
    ``size`` recomputed on every access."""

    __slots__ = (
        "packet_id", "flow_id", "src", "dst", "src_port", "dst_port",
        "protocol", "seq", "ack", "flags", "payload_size", "header_size",
        "subflow_id", "dsn", "dack", "ecn_capable", "ecn_ce", "ecn_echo",
        "sent_time", "is_retransmission", "hops", "_in_pool",
    )

    def __init__(self, *, flow_id, src, dst, src_port, dst_port, seq=0,
                 ack=0, flags=0, payload_size=0,
                 header_size=DEFAULT_HEADER_BYTES, subflow_id=0, dsn=0,
                 dack=0, ecn_capable=False, ecn_ce=False, ecn_echo=False,
                 sent_time=0.0, is_retransmission=False, protocol=6):
        self.packet_id = next(_naive_packet_ids)
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.src_port = src_port
        self.dst_port = dst_port
        self.protocol = protocol
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.payload_size = payload_size
        self.header_size = header_size
        self.subflow_id = subflow_id
        self.dsn = dsn
        self.dack = dack
        self.ecn_capable = ecn_capable
        self.ecn_ce = ecn_ce
        self.ecn_echo = ecn_echo
        self.sent_time = sent_time
        self.is_retransmission = is_retransmission
        self.hops = 0
        self._in_pool = False  # lets the real net layer's release ignore us

    @property
    def size(self):
        return self.header_size + self.payload_size

    def flow_tuple(self):
        return (self.src, self.dst, self.src_port, self.dst_port, self.protocol)


def _naive_fnv(values, salt=0):
    """The seed FNV-1a: per-hop masking and shifting over the 5-tuple."""
    digest = (_FNV_OFFSET ^ (salt & _MASK)) & _MASK
    for value in values:
        remaining = value & _MASK
        for _ in range(8):
            digest ^= remaining & 0xFF
            digest = (digest * _FNV_PRIME) & _MASK
            remaining >>= 8
    return digest


class _NaiveDropTailQueue(Queue):
    """Seed-style queue: hook-driven enqueue/dequeue, guarded capacity checks."""

    def __init__(self, capacity_packets: Optional[int] = 100,
                 capacity_bytes: Optional[int] = None) -> None:
        super().__init__()
        self.capacity_packets = capacity_packets
        self.capacity_bytes = capacity_bytes

    def _admit(self, packet) -> bool:
        if self.capacity_packets is not None and len(self._packets) >= self.capacity_packets:
            return False
        if self.capacity_bytes is not None and self._bytes + packet.size > self.capacity_bytes:
            return False
        return True

    def enqueue(self, packet) -> bool:
        if not self._admit(packet):
            self.stats.dropped_packets += 1
            self.stats.dropped_bytes += packet.size
            return False
        self._mark(packet)
        self._packets.append(packet)
        self._bytes += packet.size
        self._on_accepted(packet)
        self.stats.enqueued_packets += 1
        self.stats.enqueued_bytes += packet.size
        return True

    def dequeue(self):
        if not self._packets:
            return None
        packet = self._packets.popleft()
        self._bytes -= packet.size
        self._on_released(packet)
        self.stats.dequeued_packets += 1
        self.stats.dequeued_bytes += packet.size
        return packet


class _NaiveSwitch(Switch):
    """Seed-style forwarding: re-hash the 5-tuple from scratch at every hop."""

    def select_output_interface(self, packet):
        candidates = self.forwarding_table.get(packet.dst)
        if not candidates:
            return None
        if len(candidates) == 1:
            choice = candidates[0]
        else:
            choice = candidates[_naive_fnv(packet.flow_tuple(), self.ecmp_salt)
                                % len(candidates)]
        out_interface = self.interfaces[choice]
        if out_interface.up:
            return out_interface
        live = [index for index in candidates if self.interfaces[index].up]
        if not live:
            return None
        if len(live) == 1:
            return self.interfaces[live[0]]
        return self.interfaces[live[_naive_fnv(packet.flow_tuple(), self.ecmp_salt)
                                    % len(live)]]

    def receive(self, packet, interface) -> None:
        out_interface = self.select_output_interface(packet)
        if out_interface is None:
            self.unroutable_packets += 1
            return
        self.forwarded_packets += 1
        self.forwarded_bytes += packet.size
        out_interface.send(packet)


class _NaiveHost(Host):
    """Seed-style delivery: per-packet trace guard, no pool release."""

    def receive(self, packet, interface) -> None:
        if packet.dst != self.address:
            self.unroutable_packets += 1
            return
        endpoint = self._endpoints.get(packet.dst_port)
        if endpoint is None:
            self.undeliverable_packets += 1
            return
        endpoint.on_packet(packet)


class _NaiveInterface(Interface):
    """Seed-style transmitter: per-packet guard branches, ``transmission_delay``
    as a function call, drops left to the garbage collector."""

    def send(self, packet) -> bool:
        if self.peer is None:
            raise RuntimeError(f"interface {self.name} is not connected")
        if not self.up:
            self.fault_drops += 1
            self.fault_drops_offered += 1
            if self.drop_callback is not None:
                self.drop_callback(packet, self)
            self.node.note_drop(packet, self)
            return False
        accepted = self.queue.enqueue(packet)
        if not accepted:
            if self.drop_callback is not None:
                self.drop_callback(packet, self)
            self.node.note_drop(packet, self)
            return False
        if not self._transmitting:
            self._start_next_transmission()
        return True

    def _start_next_transmission(self) -> None:
        if not self.up:
            self._transmitting = False
            return
        packet = self.queue.dequeue()
        if packet is None:
            self._transmitting = False
            return
        self._transmitting = True
        tx_delay = transmission_delay(packet.size, self.rate_bps)
        self.busy_time += tx_delay
        self._tx_timer.arm(tx_delay, packet)

    def _finish_transmission(self, packet) -> None:
        if not self.up:
            self.fault_drops += 1
            if self.drop_callback is not None:
                self.drop_callback(packet, self)
            self.node.note_drop(packet, self)
            self._start_next_transmission()
            return
        self.bytes_sent += packet.size
        self.packets_sent += 1
        self.simulator.schedule(self.delay_s, self._deliver, packet)
        self._start_next_transmission()


def _naive_connect(simulator, node_a, node_b, rate_bps, delay_s, queue_factory):
    """Seed ``connect`` over :class:`_NaiveInterface` pairs."""
    iface_ab = _NaiveInterface(simulator, node_a, rate_bps, delay_s, queue_factory())
    iface_ba = _NaiveInterface(simulator, node_b, rate_bps, delay_s, queue_factory())
    iface_ab.attach_peer(node_b, iface_ba)
    iface_ba.attach_peer(node_a, iface_ab)
    node_a.add_interface(iface_ab, node_b)
    node_b.add_interface(iface_ba, node_a)
    return iface_ab, iface_ba


class _CountingEndpoint:
    """Sink endpoint: counts deliveries; retains nothing."""

    def __init__(self) -> None:
        self.received = 0

    def on_packet(self, packet) -> None:
        self.received += 1


def _source_port(index: int) -> int:
    """Half stable flow ports (digest-memo hits), half packet scatter (misses)."""
    if index % 2 == 0:
        return 40_000 + (index // 2) % 32
    return 20_000 + index


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


def run_forward(packets: int, naive: bool) -> int:
    """Push ``packets`` through host — edge — {4 cores} — edge — host."""
    simulator = Simulator()
    host_cls = _NaiveHost if naive else Host
    switch_cls = _NaiveSwitch if naive else Switch
    wire = _naive_connect if naive else connect
    queue_factory: Callable[[], Queue] = (
        (lambda: _NaiveDropTailQueue(capacity_packets=None, capacity_bytes=10**12))
        if naive
        else (lambda: DropTailQueue(capacity_packets=None, capacity_bytes=10**12))
    )

    # Two hashed tiers, as on a fat-tree up-path: the edge hashes over two
    # aggregation switches, each aggregation switch hashes over two cores.
    sender = host_cls(simulator, "A", 1)
    receiver = host_cls(simulator, "B", 2)
    edge_in = switch_cls(simulator, "E1", ecmp_salt=1)
    edge_out = switch_cls(simulator, "E2", ecmp_salt=2)
    aggs = [switch_cls(simulator, f"A{i}", layer="aggregation", ecmp_salt=3 + i)
            for i in range(2)]
    cores = [switch_cls(simulator, f"C{i}", layer="core", ecmp_salt=5 + i) for i in range(4)]

    wire(simulator, sender, edge_in, _RATE_BPS, _DELAY_S, queue_factory)
    edge_uplinks: List[int] = []
    for agg_index, agg in enumerate(aggs):
        wire(simulator, edge_in, agg, _RATE_BPS, _DELAY_S, queue_factory)
        edge_uplinks.append(edge_in.neighbor_to_interface[agg.name])
        agg_uplinks: List[int] = []
        for core in cores[2 * agg_index: 2 * agg_index + 2]:
            wire(simulator, agg, core, _RATE_BPS, _DELAY_S, queue_factory)
            agg_uplinks.append(agg.neighbor_to_interface[core.name])
            wire(simulator, core, edge_out, _RATE_BPS, _DELAY_S, queue_factory)
            core.install_route(receiver.address, [core.neighbor_to_interface["E2"]])
        agg.install_route(receiver.address, agg_uplinks)
    wire(simulator, edge_out, receiver, _RATE_BPS, _DELAY_S, queue_factory)
    edge_in.install_route(receiver.address, edge_uplinks)
    edge_out.install_route(receiver.address, [edge_out.neighbor_to_interface["B"]])

    sink = _CountingEndpoint()
    receiver.bind(_DST_PORT, sink)

    make_packet = _NaivePacket if naive else acquire_packet

    # Pace injections just above the serialisation rate so queues stay
    # shallow and every packet exercises the full pipeline.  The injector is
    # a self-chaining event: the pending-event heap stays tiny, so the
    # measurement is dominated by the packet path, not heap churn.
    spacing = (_MSS + DEFAULT_HEADER_BYTES) * 8.0 / _RATE_BPS * 1.05
    remaining = [packets]

    def inject() -> None:
        left = remaining[0]
        if not left:
            return
        remaining[0] = left - 1
        index = packets - left
        packet = make_packet(
            flow_id=index % 32,
            src=sender.address,
            dst=receiver.address,
            src_port=_source_port(index),
            dst_port=_DST_PORT,
            flags=FLAG_DATA,
            payload_size=_MSS,
        )
        sender.send(packet)
        simulator.schedule(spacing, inject)

    simulator.schedule(0.0, inject)
    simulator.run()
    if sink.received != packets:
        raise RuntimeError(f"forward workload lost packets: {sink.received}/{packets}")
    return packets


def run_incast(packets: int, naive: bool) -> int:
    """8 senders burst through one switch into a 16-packet bottleneck."""
    simulator = Simulator()
    host_cls = _NaiveHost if naive else Host
    switch_cls = _NaiveSwitch if naive else Switch
    wire = _naive_connect if naive else connect
    queue_factory: Callable[[], Queue] = (
        (lambda: _NaiveDropTailQueue(capacity_packets=16))
        if naive
        else (lambda: DropTailQueue(capacity_packets=16))
    )

    switch = switch_cls(simulator, "SW", ecmp_salt=1)
    receiver = host_cls(simulator, "r", 100)
    senders = [host_cls(simulator, f"s{i}", i + 1) for i in range(8)]
    for sender in senders:
        wire(simulator, sender, switch, _RATE_BPS, _DELAY_S, queue_factory)
    wire(simulator, switch, receiver, _RATE_BPS, _DELAY_S, queue_factory)
    switch.install_route(receiver.address, [switch.neighbor_to_interface["r"]])

    sink = _CountingEndpoint()
    receiver.bind(_DST_PORT, sink)

    make_packet = _NaivePacket if naive else acquire_packet
    per_sender = packets // 8
    spacing = (_MSS + DEFAULT_HEADER_BYTES) * 8.0 / _RATE_BPS
    remaining = [per_sender] * 8

    # One self-chaining injector per sender, all firing in lock-step so the
    # bottleneck queue overflows and the drop path is exercised.
    def inject(sender_index: int) -> None:
        left = remaining[sender_index]
        if not left:
            return
        remaining[sender_index] = left - 1
        index = per_sender - left
        packet = make_packet(
            flow_id=sender_index,
            src=senders[sender_index].address,
            dst=receiver.address,
            src_port=_source_port(index),
            dst_port=_DST_PORT,
            flags=FLAG_DATA,
            payload_size=_MSS,
        )
        senders[sender_index].send(packet)
        simulator.schedule(spacing, inject, sender_index)

    for sender_index in range(8):
        simulator.schedule(0.0, inject, sender_index)
    simulator.run()
    offered = per_sender * 8
    delivered = sink.received
    dropped = sum(iface.queue.stats.dropped_packets for iface in switch.interfaces)
    if delivered + dropped != offered:
        raise RuntimeError(
            f"incast accounting broken: {delivered} delivered + {dropped} dropped != {offered}"
        )
    if dropped == 0:
        raise RuntimeError("incast workload produced no drops; bottleneck too deep")
    return offered


#: (family, scale) -> zero-argument callable returning the packet count.
def _workloads() -> Dict[str, Tuple[Callable[[], int], bool]]:
    table: Dict[str, Tuple[Callable[[], int], bool]] = {}
    for family, runner in (("forward", run_forward), ("incast", run_incast)):
        for scale, packets in SCALES.items():
            table[f"{family}_{scale}"] = (
                lambda runner=runner, packets=packets: runner(packets, naive=False),
                False,
            )
            table[f"{family}_naive_{scale}"] = (
                lambda runner=runner, packets=packets: runner(packets, naive=True),
                True,
            )
    return table


# ---------------------------------------------------------------------------
# Measurement and artifact
# ---------------------------------------------------------------------------


def measure(repeats: int = 3) -> Dict[str, Dict[str, float]]:
    """Best-of-``repeats`` µs/packet for every workload (fast and naive)."""
    results: Dict[str, Dict[str, float]] = {}
    for name, (workload, _naive) in _workloads().items():
        best_us = float("inf")
        packets = 0
        for _ in range(repeats):
            start = time.perf_counter()
            packets = workload()
            elapsed = time.perf_counter() - start
            best_us = min(best_us, elapsed / packets * 1e6)
        results[name] = {"packets": packets, "us_per_packet": round(best_us, 4)}
    return results


def build_report(repeats: int = 3) -> Dict[str, object]:
    """The ``packet_path`` section of BENCH_engine.json."""
    workloads = measure(repeats)

    # Machine-speed proxy shared with engine_bench: µs per chained heap event.
    chain_best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        events = run_event_chain()
        chain_best = min(chain_best, (time.perf_counter() - start) / events * 1e6)

    def improvement(family: str) -> float:
        fast = workloads[f"{family}_{HEADLINE_SCALE}"]["us_per_packet"]
        naive = workloads[f"{family}_naive_{HEADLINE_SCALE}"]["us_per_packet"]
        return round((naive - fast) / naive * 100.0, 2)

    return {
        "generated_by": "benchmarks/packet_bench.py",
        "scales": dict(SCALES),
        "event_chain_us_per_event": round(chain_best, 4),
        "workloads": workloads,
        # Fast-path µs/packet divided by this run's event_chain µs/event: a
        # machine-independent view of relative packet cost for the CI gate.
        "normalised": {
            name: round(data["us_per_packet"] / chain_best, 4)
            for name, data in workloads.items()
            if "_naive_" not in name
        },
        "forwarding_improvement_pct": improvement("forward"),
        "incast_improvement_pct": improvement("incast"),
    }


def merge_output(report: Dict[str, object], path: Path) -> None:
    """Write ``report`` under the ``packet_path`` key, preserving other sections."""
    artifact: Dict[str, object] = {}
    if path.exists():
        artifact = json.loads(path.read_text())
    artifact["packet_path"] = report
    # sort_keys + trailing newline: artifact bytes depend only on the
    # measured values, never on dict construction order.
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")


def check(report: Dict[str, object], baseline_path: Path, tolerance: float,
          min_improvement: float) -> int:
    baseline = json.loads(baseline_path.read_text()).get("packet_path")
    failures = []
    if baseline is None:
        failures.append(f"{baseline_path} has no packet_path section")
    else:
        for name, base_norm in baseline["normalised"].items():
            current = report["normalised"].get(name)
            if current is None:
                failures.append(f"workload {name!r} missing from the current run")
                continue
            if current > base_norm * (1.0 + tolerance):
                failures.append(
                    f"{name}: normalised µs/packet {current:.3f} regressed more than "
                    f"{tolerance:.0%} over baseline {base_norm:.3f}"
                )
    improvement = float(report["forwarding_improvement_pct"])
    if improvement < min_improvement:
        failures.append(
            f"forwarding improvement {improvement:.1f}% fell below the "
            f"required {min_improvement:.0f}%"
        )
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    if not failures:
        print(f"packet benchmarks within {tolerance:.0%} of baseline; "
              f"forwarding improvement {improvement:.1f}%, "
              f"incast improvement {float(report['incast_improvement_pct']):.1f}%")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=None,
                        help="merge the packet_path section into this JSON artifact")
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="compare against a committed baseline and exit "
                             "non-zero on regression")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed normalised µs/packet regression (default 0.20)")
    parser.add_argument("--min-improvement", type=float, default=25.0,
                        help="required forwarding improvement in percent (default 25)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats (default 3)")
    args = parser.parse_args(argv)

    report = build_report(repeats=args.repeats)
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.output is not None:
        merge_output(report, args.output)
        print(f"merged packet_path into {args.output}", file=sys.stderr)
    if args.check is not None:
        return check(report, args.check, args.tolerance, args.min_improvement)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
