"""Figure 1(a): MPTCP short-flow completion time vs. number of subflows.

The paper's Figure 1(a) plots the mean and standard deviation of short-flow
completion times for MPTCP as the number of subflows grows from 1 to 9: the
mean creeps upwards and the standard deviation explodes because more and
more flows hit retransmission timeouts.

Expected qualitative shape at any scale: the standard deviation (and the
fraction of flows with >= 1 RTO) grows with the subflow count, and the mean
for many subflows exceeds the mean for a single subflow.
"""

from __future__ import annotations

import os

import pytest

from bench_common import base_config
from repro.experiments.figure1 import figure1a_series
from repro.metrics.reporting import render_table

#: Sub-flow counts to sweep.  The paper sweeps 1..9; the quick benchmark keeps
#: four representative points (set REPRO_FULL_FIGURE1A=1 for the full sweep).
SUBFLOW_COUNTS = (
    tuple(range(1, 10)) if os.environ.get("REPRO_FULL_FIGURE1A") else (1, 2, 4, 8)
)


@pytest.mark.benchmark(group="figure1a")
def test_figure1a_mptcp_fct_vs_subflows(benchmark) -> None:
    """Regenerate the Figure 1(a) series and check its qualitative shape."""
    config = base_config()

    rows = benchmark.pedantic(
        figure1a_series, args=(config, SUBFLOW_COUNTS), rounds=1, iterations=1
    )

    print("\nFigure 1(a) — MPTCP short-flow completion time vs number of subflows")
    print(
        render_table(
            ["subflows", "mean FCT (ms)", "std FCT (ms)", "p99 (ms)",
             "RTO incidence", "completed"],
            [
                [
                    row.num_subflows,
                    f"{row.mean_ms:.1f}",
                    f"{row.std_ms:.1f}",
                    f"{row.fct_summary.p99:.1f}",
                    f"{100 * row.rto_incidence:.1f}%",
                    f"{100 * row.completion_rate:.1f}%",
                ]
                for row in rows
            ],
        )
    )
    print(
        "Paper (512-server testbed): mean rises from ~100 ms towards ~140 ms and the\n"
        "standard deviation grows several-fold as subflows go 1 -> 9."
    )

    assert len(rows) == len(SUBFLOW_COUNTS)
    # Every configuration produced short-flow measurements.
    assert all(row.fct_summary.count > 0 for row in rows)
    single = rows[0]
    many = rows[-1]
    # Qualitative shape: splitting a 70 KB flow over many subflows does not
    # reduce RTO incidence, and the completion-time tail with many subflows is
    # not meaningfully smaller than with a single subflow.
    assert many.rto_incidence >= single.rto_incidence - 0.02
    assert many.std_ms >= 0.7 * single.std_ms
