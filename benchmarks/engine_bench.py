"""Engine micro-benchmark driver: measures µs/event and emits BENCH_engine.json.

This is the perf-trajectory artifact for the simulation core.  It measures
three deterministic workloads:

* ``event_chain`` — a chain of one-shot events; the pure heap path and the
  machine-speed proxy used to normalise cross-machine comparisons.
* ``timer_churn_heap`` / ``timer_churn_wheel`` — the RTO-heavy incast
  pattern (hundreds of concurrent flows, each ACK re-arming a 200 ms
  retransmission timer that almost never fires), expressed once with naive
  ``schedule``/``cancel`` heap events and once with the reusable
  wheel-backed :meth:`Simulator.timer` handles the transport stack uses.
  The headline ``timer_churn_improvement_pct`` compares the two.
* ``rto_incast`` — an end-to-end MMPTCP incast burst over shallow queues
  (the golden-trace scenario), exercising the whole stack on top of the
  timer subsystem.

Usage::

    python benchmarks/engine_bench.py --output BENCH_engine.json
    python benchmarks/engine_bench.py --check BENCH_engine.json [--tolerance 0.20]

``--check`` re-measures and fails (exit 1) if any workload's *normalised*
µs/event (workload divided by the same run's ``event_chain``) regressed
more than ``tolerance`` relative to the committed baseline, or if the
timer-churn improvement fell below ``--min-improvement`` (default 30%).
Normalising by ``event_chain`` makes the gate about relative engine cost,
not about how fast the CI machine happens to be.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict

if __package__ in (None, ""):  # running as a script
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sim.engine import Simulator

#: The conventional minimum RTO the paper's experiments keep (and therefore
#: the deadline almost every armed timer carries).
RTO_S = 0.2

#: Concurrent flows in the timer-churn workloads — incast-scale fan-in.
CHURN_FLOWS = 512


# ---------------------------------------------------------------------------
# Workloads (each returns a run callable; all are deterministic)
# ---------------------------------------------------------------------------


def run_event_chain(events: int = 200_000) -> int:
    """Chained one-shot events: the pure heap path."""
    simulator = Simulator()
    remaining = [events]

    def tick() -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            simulator.schedule(1e-6, tick)

    simulator.schedule(0.0, tick)
    simulator.run()
    return simulator.events_processed


def run_timer_churn(use_wheel: bool, flows: int = CHURN_FLOWS, ticks: int = 200_000) -> int:
    """The RTO pattern: every 'ACK' re-arms one flow's 200 ms timer.

    A driver event fires every 5 µs (the ACK clock) and re-arms the next
    flow's retransmission timer round-robin, so each timer is re-armed long
    before it can fire — exactly the cancel-dominated churn that used to
    fill the event heap with dead entries.
    """
    simulator = Simulator()

    def noop() -> None:
        pass

    if use_wheel:
        handles = [simulator.timer(noop) for _ in range(flows)]

        def rearm(index: int) -> None:
            handles[index].arm(RTO_S)

    else:
        events = [None] * flows

        def rearm(index: int) -> None:
            simulator.cancel(events[index])
            events[index] = simulator.schedule(RTO_S, noop)

    remaining = [ticks]

    def tick() -> None:
        count = remaining[0]
        if count:
            remaining[0] = count - 1
            rearm(count % flows)
            simulator.schedule(5e-6, tick)

    simulator.schedule(0.0, tick)
    simulator.run()
    return simulator.events_processed


def run_rto_incast() -> int:
    """End-to-end MMPTCP incast over shallow queues (golden-trace scenario)."""
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.incast_study import build_incast_workload_for
    from repro.experiments.runner import run_experiment
    from repro.traffic.flowspec import PROTOCOL_MMPTCP

    config = ExperimentConfig(
        fattree_k=4,
        hosts_per_edge=2,
        protocol=PROTOCOL_MMPTCP,
        num_subflows=4,
        arrival_window_s=0.05,
        drain_time_s=0.8,
        initial_cwnd_segments=2,
        queue_capacity_packets=16,
        seed=42,
    )
    workload = build_incast_workload_for(config, 8, 50_000, config.protocol)
    result = run_experiment(config, workload=workload)
    return result.events_processed


WORKLOADS: Dict[str, Callable[[], int]] = {
    "event_chain": run_event_chain,
    "timer_churn_heap": lambda: run_timer_churn(use_wheel=False),
    "timer_churn_wheel": lambda: run_timer_churn(use_wheel=True),
    "rto_incast": run_rto_incast,
}


# ---------------------------------------------------------------------------
# Measurement and artifact
# ---------------------------------------------------------------------------


def measure(repeats: int = 3) -> Dict[str, Dict[str, float]]:
    """Best-of-``repeats`` µs/event for every workload."""
    results: Dict[str, Dict[str, float]] = {}
    for name, workload in WORKLOADS.items():
        best_us = float("inf")
        events = 0
        for _ in range(repeats):
            start = time.perf_counter()
            events = workload()
            elapsed = time.perf_counter() - start
            best_us = min(best_us, elapsed / events * 1e6)
        results[name] = {"events": events, "us_per_event": round(best_us, 4)}
    return results


def build_report(repeats: int = 3) -> Dict[str, object]:
    workloads = measure(repeats)
    heap_us = workloads["timer_churn_heap"]["us_per_event"]
    wheel_us = workloads["timer_churn_wheel"]["us_per_event"]
    improvement = (heap_us - wheel_us) / heap_us * 100.0
    chain_us = workloads["event_chain"]["us_per_event"]
    return {
        "schema": 1,
        "generated_by": "benchmarks/engine_bench.py",
        "churn_flows": CHURN_FLOWS,
        "workloads": workloads,
        # µs/event divided by this run's event_chain: a machine-independent
        # view of relative engine cost, used by the CI regression gate.
        "normalised": {
            name: round(data["us_per_event"] / chain_us, 4)
            for name, data in workloads.items()
        },
        "timer_churn_improvement_pct": round(improvement, 2),
    }


def check(report: Dict[str, object], baseline_path: Path, tolerance: float,
          min_improvement: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for name, base_norm in baseline["normalised"].items():
        current = report["normalised"].get(name)
        if current is None:
            failures.append(f"workload {name!r} missing from the current run")
            continue
        if current > base_norm * (1.0 + tolerance):
            failures.append(
                f"{name}: normalised µs/event {current:.3f} regressed more than "
                f"{tolerance:.0%} over baseline {base_norm:.3f}"
            )
    improvement = float(report["timer_churn_improvement_pct"])
    if improvement < min_improvement:
        failures.append(
            f"timer-churn improvement {improvement:.1f}% fell below the "
            f"required {min_improvement:.0f}%"
        )
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    if not failures:
        print(f"engine benchmarks within {tolerance:.0%} of baseline; "
              f"timer-churn improvement {improvement:.1f}%")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=None,
                        help="write the BENCH_engine.json artifact here")
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="compare against a committed baseline and exit "
                             "non-zero on regression")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed normalised µs/event regression (default 0.20)")
    parser.add_argument("--min-improvement", type=float, default=30.0,
                        help="required timer-churn improvement in percent (default 30)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats (default 3)")
    args = parser.parse_args(argv)

    report = build_report(repeats=args.repeats)
    # sort_keys + trailing newline: artifact bytes depend only on the
    # measured values, never on dict construction order.
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.output is not None:
        # Merge: foreign sections of an existing artifact (e.g. the
        # packet_path section written by packet_bench.py) are preserved.
        merged: Dict[str, object] = {}
        if args.output.exists():
            merged = {
                key: value
                for key, value in json.loads(args.output.read_text()).items()
                if key not in report
            }
        merged.update(report)
        args.output.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    if args.check is not None:
        return check(report, args.check, args.tolerance, args.min_improvement)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
