"""Addressing schemes.

Nodes are addressed by plain integers (fast to hash and compare).  This
module provides helpers to derive structured, FatTree-style addresses from
those integers and back, mirroring the ``10.pod.switch.host`` convention of
Al-Fares et al. (SIGCOMM 2008), which the MMPTCP paper proposes to exploit
for estimating the number of available equal-cost paths between two hosts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FatTreeAddress:
    """A structured FatTree host address: ``10.pod.edge.host``."""

    pod: int
    edge: int
    host: int

    def __str__(self) -> str:
        return f"10.{self.pod}.{self.edge}.{self.host}"


def encode_fattree_address(pod: int, edge: int, host: int) -> int:
    """Pack a FatTree position into a single integer address."""
    if pod < 0 or edge < 0 or host < 0:
        raise ValueError("pod, edge and host indices must be non-negative")
    if edge >= 1 << 10 or host >= 1 << 10:
        raise ValueError("edge/host index too large for the packed encoding")
    return (pod << 20) | (edge << 10) | host


def decode_fattree_address(address: int) -> FatTreeAddress:
    """Unpack an integer produced by :func:`encode_fattree_address`."""
    if address < 0:
        raise ValueError("addresses are non-negative integers")
    return FatTreeAddress(pod=address >> 20, edge=(address >> 10) & 0x3FF, host=address & 0x3FF)


def same_pod(address_a: int, address_b: int) -> bool:
    """True if two packed FatTree addresses belong to the same pod."""
    return (address_a >> 20) == (address_b >> 20)


def same_edge(address_a: int, address_b: int) -> bool:
    """True if two packed FatTree addresses share pod and edge switch."""
    return (address_a >> 10) == (address_b >> 10)
