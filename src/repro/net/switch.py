"""Switches with hash-based ECMP forwarding.

A switch holds a forwarding table mapping destination host addresses to the
list of interface indices that lie on *some* shortest path towards that
destination.  When several candidates exist the switch hashes the packet's
5-tuple (salted per switch) to pick one — i.e. flow-level ECMP, exactly the
mechanism MMPTCP's packet-scatter phase exploits by randomising source ports.

Switches are tagged with the topology layer they belong to (``edge``,
``aggregation`` or ``core``) so the metrics module can report per-layer loss
rates as the paper does in Section 3.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.ecmp import select_path
from repro.net.link import Interface
from repro.net.node import Node
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.tracing import NULL_SINK, TraceSink

LAYER_EDGE = "edge"
LAYER_AGGREGATION = "aggregation"
LAYER_CORE = "core"


class Switch(Node):
    """An output-queued switch with ECMP forwarding."""

    kind = "switch"

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        layer: str = LAYER_EDGE,
        ecmp_salt: int = 0,
        trace: TraceSink = NULL_SINK,
    ) -> None:
        super().__init__(simulator, name, trace)
        self.layer = layer
        self.ecmp_salt = ecmp_salt
        # destination host address -> equal-cost output interface indices
        self.forwarding_table: Dict[int, List[int]] = {}
        self.forwarded_packets = 0
        self.forwarded_bytes = 0
        self.unroutable_packets = 0

    # ------------------------------------------------------------------
    # Table management
    # ------------------------------------------------------------------

    def install_route(self, destination: int, interface_indices: List[int]) -> None:
        """Install the ECMP next-hop set for ``destination``."""
        if not interface_indices:
            raise ValueError(f"empty next-hop set for destination {destination} on {self.name}")
        self.forwarding_table[destination] = list(interface_indices)

    def routes_to(self, destination: int) -> List[int]:
        """The installed next-hop interface indices for ``destination`` (may be empty)."""
        return self.forwarding_table.get(destination, [])

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------

    def receive(self, packet: Packet, interface: Optional[Interface]) -> None:
        """Forward an arriving packet towards its destination."""
        candidates = self.forwarding_table.get(packet.dst)
        if not candidates:
            self.unroutable_packets += 1
            if self.trace.enabled:
                self.trace.emit(
                    self.simulator.now, "unroutable", node=self.name, dst=packet.dst
                )
            return
        if len(candidates) == 1:
            choice = candidates[0]
        else:
            choice = candidates[select_path(packet, len(candidates), salt=self.ecmp_salt)]
        out_interface = self.interfaces[choice]
        self.forwarded_packets += 1
        self.forwarded_bytes += packet.size
        out_interface.send(packet)
