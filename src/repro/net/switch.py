"""Switches with hash-based ECMP forwarding.

A switch holds a forwarding table mapping destination host addresses to the
list of interface indices that lie on *some* shortest path towards that
destination.  When several candidates exist the switch hashes the packet's
5-tuple (salted per switch) to pick one — i.e. flow-level ECMP, exactly the
mechanism MMPTCP's packet-scatter phase exploits by randomising source ports.

Switches are tagged with the topology layer they belong to (``edge``,
``aggregation`` or ``core``) so the metrics module can report per-layer loss
rates as the paper does in Section 3.

Forwarding is the hottest per-packet code in the simulator, so
:meth:`Switch.receive` is deliberately flat: the single-candidate and
healthy-interface common cases run straight-line with no list building, and
the salted flow digest is memoised per switch keyed by the packet's packed
5-tuple (``Packet.flow_bytes``), so every packet of an established flow costs
one dict lookup instead of a 40-byte FNV walk.  The memo is exact — equal
``flow_bytes`` means equal 5-tuple — and therefore produces byte-identical
golden traces.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.ecmp import ecmp_hash, fnv1a_bytes, hash_basis
from repro.net.link import Interface
from repro.net.node import Node, trace_noop
from repro.net.packet import Packet, release_packet
from repro.sim.engine import Simulator
from repro.sim.tracing import NULL_SINK, TraceSink

LAYER_EDGE = "edge"
LAYER_AGGREGATION = "aggregation"
LAYER_CORE = "core"

#: Bound on the per-switch flow-digest memo.  MMPTCP's packet scatter mints a
#: fresh 5-tuple per data packet, so the memo is cleared (not LRU-evicted —
#: eviction bookkeeping would cost more than the occasional cold restart)
#: once it fills; stable flows re-enter within one packet each.
HASH_CACHE_LIMIT = 8192


class Switch(Node):
    """An output-queued switch with ECMP forwarding."""

    kind = "switch"

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        layer: str = LAYER_EDGE,
        ecmp_salt: int = 0,
        trace: TraceSink = NULL_SINK,
    ) -> None:
        super().__init__(simulator, name, trace)
        self.layer = layer
        self._ecmp_salt = ecmp_salt
        self._hash_basis = hash_basis(ecmp_salt)
        #: salted flow digest memo: Packet.flow_bytes -> fnv1a digest
        self._hash_cache: Dict[bytes, int] = {}
        # destination host address -> equal-cost output interface indices
        self.forwarding_table: Dict[int, List[int]] = {}
        self.forwarded_packets = 0
        self.forwarded_bytes = 0
        self.unroutable_packets = 0
        self._trace_unroutable = self._emit_unroutable if trace is not NULL_SINK else trace_noop

    # ------------------------------------------------------------------
    # Salt management
    # ------------------------------------------------------------------

    @property
    def ecmp_salt(self) -> int:
        """The per-switch salt mixed into every flow hash."""
        return self._ecmp_salt

    @ecmp_salt.setter
    def ecmp_salt(self, salt: int) -> None:
        # Changing the salt invalidates every memoised digest.
        self._ecmp_salt = salt
        self._hash_basis = hash_basis(salt)
        self._hash_cache.clear()

    # ------------------------------------------------------------------
    # Table management
    # ------------------------------------------------------------------

    def install_route(self, destination: int, interface_indices: List[int]) -> None:
        """Install the ECMP next-hop set for ``destination``."""
        if not interface_indices:
            raise ValueError(f"empty next-hop set for destination {destination} on {self.name}")
        self.forwarding_table[destination] = list(interface_indices)

    def remove_route(self, destination: int) -> None:
        """Drop the next-hop set for ``destination`` (used when it becomes unreachable)."""
        self.forwarding_table.pop(destination, None)

    def routes_to(self, destination: int) -> List[int]:
        """A copy of the installed next-hop interface indices for ``destination``.

        Always a fresh list (possibly empty): callers are free to sort,
        filter or mutate the result without corrupting the live forwarding
        table entry.
        """
        routes = self.forwarding_table.get(destination)
        return list(routes) if routes is not None else []

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------

    def flow_hash_for(self, packet: Packet) -> int:
        """This switch's salted flow digest for ``packet`` (memoised).

        Identical to ``ecmp_hash(packet, salt=self.ecmp_salt)``; the memo key
        is the packed 5-tuple, so two packets collide only when they carry
        exactly the same flow identity — the memo can never misroute.
        """
        key = packet.flow_bytes
        if key is None:
            key = packet.flow_key()
        cache = self._hash_cache
        digest = cache.get(key)
        if digest is None:
            if len(cache) >= HASH_CACHE_LIMIT:
                cache.clear()
            digest = fnv1a_bytes(key, self._hash_basis)
            cache[key] = digest
        return digest

    def select_output_interface(self, packet: Packet) -> Optional[Interface]:
        """The interface this switch would forward ``packet`` out of.

        Applies flow-hash ECMP over the installed next-hop group, then — only
        if the hashed choice is down — re-hashes over the live subset of the
        group.  Returns ``None`` when no route is installed or every next hop
        is down; never returns a down interface.
        """
        candidates = self.forwarding_table.get(packet.dst)
        if not candidates:
            return None
        if len(candidates) == 1:
            out_interface = self.interfaces[candidates[0]]
        else:
            out_interface = self.interfaces[
                candidates[self.flow_hash_for(packet) % len(candidates)]
            ]
        if out_interface.up:
            return out_interface
        return self._failover_interface(packet, candidates)

    def _failover_interface(self, packet: Packet, candidates: List[int]) -> Optional[Interface]:
        """Re-hash over the live members of the next-hop group (rare path).

        This is the safety net for the window between a link going down and
        the routing tables being rebuilt around it.
        """
        live = [index for index in candidates if self.interfaces[index].up]
        if not live:
            return None
        if len(live) == 1:
            return self.interfaces[live[0]]
        return self.interfaces[live[self.flow_hash_for(packet) % len(live)]]

    def receive(self, packet: Packet, interface: Optional[Interface]) -> None:
        """Forward an arriving packet towards its destination."""
        candidates = self.forwarding_table.get(packet.dst)
        if candidates:
            # Common case, kept flat: one candidate (downlinks) or a healthy
            # hashed choice (uplinks) — no list building, no extra calls.
            if len(candidates) == 1:
                out_interface = self.interfaces[candidates[0]]
            else:
                out_interface = self.interfaces[
                    candidates[self.flow_hash_for(packet) % len(candidates)]
                ]
            if not out_interface.up:
                out_interface = self._failover_interface(packet, candidates)
            if out_interface is not None:
                self.forwarded_packets += 1
                self.forwarded_bytes += packet.size
                out_interface.send(packet)
                return
        self.unroutable_packets += 1
        self._trace_unroutable(packet)
        # No route (or no live next hop): the fabric consumed the packet.
        release_packet(packet)

    def _emit_unroutable(self, packet: Packet) -> None:
        if self.trace.enabled:
            self.trace.emit(self.simulator.now, "unroutable", node=self.name, dst=packet.dst)
