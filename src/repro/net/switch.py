"""Switches with hash-based ECMP forwarding.

A switch holds a forwarding table mapping destination host addresses to the
list of interface indices that lie on *some* shortest path towards that
destination.  When several candidates exist the switch hashes the packet's
5-tuple (salted per switch) to pick one — i.e. flow-level ECMP, exactly the
mechanism MMPTCP's packet-scatter phase exploits by randomising source ports.

Switches are tagged with the topology layer they belong to (``edge``,
``aggregation`` or ``core``) so the metrics module can report per-layer loss
rates as the paper does in Section 3.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.ecmp import select_among, select_path
from repro.net.link import Interface
from repro.net.node import Node
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.tracing import NULL_SINK, TraceSink

LAYER_EDGE = "edge"
LAYER_AGGREGATION = "aggregation"
LAYER_CORE = "core"


class Switch(Node):
    """An output-queued switch with ECMP forwarding."""

    kind = "switch"

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        layer: str = LAYER_EDGE,
        ecmp_salt: int = 0,
        trace: TraceSink = NULL_SINK,
    ) -> None:
        super().__init__(simulator, name, trace)
        self.layer = layer
        self.ecmp_salt = ecmp_salt
        # destination host address -> equal-cost output interface indices
        self.forwarding_table: Dict[int, List[int]] = {}
        self.forwarded_packets = 0
        self.forwarded_bytes = 0
        self.unroutable_packets = 0

    # ------------------------------------------------------------------
    # Table management
    # ------------------------------------------------------------------

    def install_route(self, destination: int, interface_indices: List[int]) -> None:
        """Install the ECMP next-hop set for ``destination``."""
        if not interface_indices:
            raise ValueError(f"empty next-hop set for destination {destination} on {self.name}")
        self.forwarding_table[destination] = list(interface_indices)

    def remove_route(self, destination: int) -> None:
        """Drop the next-hop set for ``destination`` (used when it becomes unreachable)."""
        self.forwarding_table.pop(destination, None)

    def routes_to(self, destination: int) -> List[int]:
        """The installed next-hop interface indices for ``destination`` (may be empty)."""
        return self.forwarding_table.get(destination, [])

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------

    def select_output_interface(self, packet: Packet) -> Optional[Interface]:
        """The interface this switch would forward ``packet`` out of.

        Applies flow-hash ECMP over the installed next-hop group, then — only
        if the hashed choice is down — re-hashes over the live subset of the
        group.  Returns ``None`` when no route is installed or every next hop
        is down; never returns a down interface.
        """
        candidates = self.forwarding_table.get(packet.dst)
        if not candidates:
            return None
        if len(candidates) == 1:
            choice = candidates[0]
        else:
            choice = candidates[select_path(packet, len(candidates), salt=self.ecmp_salt)]
        out_interface = self.interfaces[choice]
        if out_interface.up:
            return out_interface
        # Failure-aware re-hash: restrict the group to live members.  This is
        # the safety net for the window between a link going down and the
        # routing tables being rebuilt around it.
        live = [index for index in candidates if self.interfaces[index].up]
        if not live:
            return None
        return self.interfaces[select_among(packet, live, salt=self.ecmp_salt)]

    def receive(self, packet: Packet, interface: Optional[Interface]) -> None:
        """Forward an arriving packet towards its destination."""
        out_interface = self.select_output_interface(packet)
        if out_interface is None:
            self.unroutable_packets += 1
            if self.trace.enabled:
                self.trace.emit(
                    self.simulator.now, "unroutable", node=self.name, dst=packet.dst
                )
            return
        self.forwarded_packets += 1
        self.forwarded_bytes += packet.size
        out_interface.send(packet)
