"""Network substrate: packets, queues, links, hosts, switches, ECMP routing."""

from repro.net.address import (
    FatTreeAddress,
    decode_fattree_address,
    encode_fattree_address,
    same_edge,
    same_pod,
)
from repro.net.ecmp import ecmp_hash, fnv1a_64, fnv1a_bytes, hash_basis, select_path
from repro.net.host import Host
from repro.net.link import Interface, connect
from repro.net.monitor import LayerLossStats, NetworkMonitor, NetworkSnapshot
from repro.net.node import Node
from repro.net.packet import (
    DEFAULT_HEADER_BYTES,
    FLAG_ACK,
    FLAG_DATA,
    FLAG_FIN,
    FLAG_SYN,
    Packet,
    PacketPool,
    acquire_packet,
    default_pool,
    make_ack,
    release_packet,
    set_pool_debug,
)
from repro.net.queues import (
    DropTailQueue,
    EcnQueue,
    Queue,
    QueueStats,
    SharedBufferPool,
    SharedBufferQueue,
)
from repro.net.routing import (
    build_ecmp_routes,
    count_equal_cost_paths,
    verify_all_pairs_routable,
)
from repro.net.switch import LAYER_AGGREGATION, LAYER_CORE, LAYER_EDGE, Switch

__all__ = [
    "FatTreeAddress",
    "decode_fattree_address",
    "encode_fattree_address",
    "same_edge",
    "same_pod",
    "ecmp_hash",
    "fnv1a_64",
    "fnv1a_bytes",
    "hash_basis",
    "select_path",
    "Host",
    "Interface",
    "connect",
    "LayerLossStats",
    "NetworkMonitor",
    "NetworkSnapshot",
    "Node",
    "DEFAULT_HEADER_BYTES",
    "FLAG_ACK",
    "FLAG_DATA",
    "FLAG_FIN",
    "FLAG_SYN",
    "Packet",
    "PacketPool",
    "acquire_packet",
    "default_pool",
    "make_ack",
    "release_packet",
    "set_pool_debug",
    "DropTailQueue",
    "EcnQueue",
    "Queue",
    "QueueStats",
    "SharedBufferPool",
    "SharedBufferQueue",
    "build_ecmp_routes",
    "count_equal_cost_paths",
    "verify_all_pairs_routable",
    "LAYER_AGGREGATION",
    "LAYER_CORE",
    "LAYER_EDGE",
    "Switch",
]
