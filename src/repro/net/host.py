"""End hosts (servers).

A host owns one or more interfaces (dual-homed topologies give it two), an
integer address, and a demultiplexing table from local port numbers to
transport endpoints.  Transport endpoints hand fully formed packets to
:meth:`Host.send`, which selects an uplink (by ECMP hash when multi-homed)
and pushes the packet into that interface's queue.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol

from repro.net.ecmp import select_among, select_path
from repro.net.link import Interface
from repro.net.node import Node
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.tracing import NULL_SINK, TraceSink


class PacketHandler(Protocol):
    """Anything that can accept packets demultiplexed to a local port."""

    def on_packet(self, packet: Packet) -> None:
        """Process an arriving packet."""


class Host(Node):
    """A server attached to the data-centre fabric."""

    kind = "host"

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        address: int,
        trace: TraceSink = NULL_SINK,
    ) -> None:
        super().__init__(simulator, name, trace)
        self.address = address
        self._endpoints: Dict[int, PacketHandler] = {}
        self._next_ephemeral_port = 49152
        self.unroutable_packets = 0
        self.undeliverable_packets = 0

    # ------------------------------------------------------------------
    # Endpoint management
    # ------------------------------------------------------------------

    def bind(self, port: int, endpoint: PacketHandler) -> None:
        """Register ``endpoint`` to receive packets addressed to ``port``."""
        if port in self._endpoints:
            raise ValueError(f"port {port} already bound on {self.name}")
        self._endpoints[port] = endpoint

    def unbind(self, port: int) -> None:
        """Remove the endpoint bound to ``port`` (missing ports are ignored)."""
        self._endpoints.pop(port, None)

    def allocate_port(self) -> int:
        """Hand out the next unused ephemeral port on this host."""
        while self._next_ephemeral_port in self._endpoints:
            self._next_ephemeral_port += 1
        port = self._next_ephemeral_port
        self._next_ephemeral_port += 1
        return port

    def endpoint_for(self, port: int) -> Optional[PacketHandler]:
        """The endpoint bound to ``port``, if any."""
        return self._endpoints.get(port)

    # ------------------------------------------------------------------
    # Packet I/O
    # ------------------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Transmit ``packet`` out of one of this host's uplinks."""
        if not self.interfaces:
            raise RuntimeError(f"host {self.name} has no interfaces")
        if len(self.interfaces) == 1:
            interface = self.interfaces[0]
        else:
            # Multi-homed host: pick the uplink by flow hash, exactly as a
            # host-side ECMP bonding driver would.
            index = select_path(packet, len(self.interfaces), salt=self.address)
            interface = self.interfaces[index]
            if not interface.up:
                # Bonding drivers fail over to a surviving uplink.
                live = [i for i in range(len(self.interfaces)) if self.interfaces[i].up]
                if live:
                    interface = self.interfaces[select_among(packet, live, salt=self.address)]
        return interface.send(packet)

    def receive(self, packet: Packet, interface: Optional[Interface]) -> None:
        """Deliver an arriving packet to the endpoint bound to its destination port."""
        if packet.dst != self.address:
            # Mis-delivered packet (should not happen with correct routing).
            self.unroutable_packets += 1
            if self.trace.enabled:
                self.trace.emit(
                    self.simulator.now, "misdelivered", node=self.name, flow_id=packet.flow_id
                )
            return
        endpoint = self._endpoints.get(packet.dst_port)
        if endpoint is None:
            self.undeliverable_packets += 1
            if self.trace.enabled:
                self.trace.emit(
                    self.simulator.now,
                    "no_endpoint",
                    node=self.name,
                    port=packet.dst_port,
                    flow_id=packet.flow_id,
                )
            return
        endpoint.on_packet(packet)
