"""End hosts (servers).

A host owns one or more interfaces (dual-homed topologies give it two), an
integer address, and a demultiplexing table from local port numbers to
transport endpoints.  Transport endpoints hand fully formed packets to
:meth:`Host.send`, which selects an uplink (by ECMP hash when multi-homed)
and pushes the packet into that interface's queue.

Packet ownership: :meth:`Host.receive` is the end of every delivered packet's
life.  The endpoint's ``on_packet`` may read the packet freely while it runs
but must not retain a reference; as soon as it returns, the host releases the
packet back to the pool (mis-delivered and port-less packets are released
immediately).  Reassembly buffers and statistics therefore only ever store
plain integers extracted from the packet, never the packet itself.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol

from repro.net.ecmp import select_among, select_path
from repro.net.link import Interface
from repro.net.node import Node, trace_noop
from repro.net.packet import Packet, release_packet
from repro.sim.engine import Simulator
from repro.sim.tracing import NULL_SINK, TraceSink


#: IANA dynamic/private port range used for ephemeral allocation.
EPHEMERAL_PORT_MIN = 49152
EPHEMERAL_PORT_MAX = 65535


class PacketHandler(Protocol):
    """Anything that can accept packets demultiplexed to a local port."""

    def on_packet(self, packet: Packet) -> None:
        """Process an arriving packet."""


class Host(Node):
    """A server attached to the data-centre fabric."""

    kind = "host"

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        address: int,
        trace: TraceSink = NULL_SINK,
    ) -> None:
        super().__init__(simulator, name, trace)
        self.address = address
        self._endpoints: Dict[int, PacketHandler] = {}
        self._next_ephemeral_port = EPHEMERAL_PORT_MIN
        self.unroutable_packets = 0
        self.undeliverable_packets = 0
        traced = trace is not NULL_SINK
        self._trace_misdelivered = self._emit_misdelivered if traced else trace_noop
        self._trace_no_endpoint = self._emit_no_endpoint if traced else trace_noop

    # ------------------------------------------------------------------
    # Endpoint management
    # ------------------------------------------------------------------

    def bind(self, port: int, endpoint: PacketHandler) -> None:
        """Register ``endpoint`` to receive packets addressed to ``port``."""
        if port in self._endpoints:
            raise ValueError(f"port {port} already bound on {self.name}")
        self._endpoints[port] = endpoint

    def unbind(self, port: int) -> None:
        """Remove the endpoint bound to ``port`` (missing ports are ignored)."""
        self._endpoints.pop(port, None)

    def allocate_port(self) -> int:
        """Hand out the next unused ephemeral port on this host.

        Ports come from the IANA ephemeral range [49152, 65535] and wrap
        around once the counter reaches the top, skipping ports that are
        still bound.  When every port in the range is bound the host raises
        instead of silently handing out an out-of-range (and therefore
        never-matching) port number.
        """
        span = EPHEMERAL_PORT_MAX - EPHEMERAL_PORT_MIN + 1
        port = self._next_ephemeral_port
        for _ in range(span):
            if port not in self._endpoints:
                self._next_ephemeral_port = (
                    EPHEMERAL_PORT_MIN + (port + 1 - EPHEMERAL_PORT_MIN) % span
                )
                return port
            port = EPHEMERAL_PORT_MIN + (port + 1 - EPHEMERAL_PORT_MIN) % span
        raise RuntimeError(
            f"host {self.name} has exhausted the ephemeral port range "
            f"[{EPHEMERAL_PORT_MIN}, {EPHEMERAL_PORT_MAX}]"
        )

    def endpoint_for(self, port: int) -> Optional[PacketHandler]:
        """The endpoint bound to ``port``, if any."""
        return self._endpoints.get(port)

    # ------------------------------------------------------------------
    # Packet I/O
    # ------------------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Transmit ``packet`` out of one of this host's uplinks.

        Returns False when the selected uplink rejected the packet (down NIC
        or full queue); the packet has then already been retired — callers
        that care must account for the loss *before* handing the packet over
        (see ``Endpoint.transmit``).
        """
        interfaces = self.interfaces
        if len(interfaces) == 1:
            return interfaces[0].send(packet)
        if not interfaces:
            raise RuntimeError(f"host {self.name} has no interfaces")
        # Multi-homed host: pick the uplink by flow hash, exactly as a
        # host-side ECMP bonding driver would.
        index = select_path(packet, len(interfaces), salt=self.address)
        interface = interfaces[index]
        if not interface.up:
            # Bonding drivers fail over to a surviving uplink.
            live = [i for i in range(len(interfaces)) if interfaces[i].up]
            if live:
                interface = interfaces[select_among(packet, live, salt=self.address)]
        return interface.send(packet)

    def send_via(self, packet: Packet, interface_index: int) -> bool:
        """Transmit ``packet`` out of a specific uplink (pinned subflows).

        Used by path managers that bind a subflow to one interface
        (``fullmesh``).  When the pinned interface is down the host fails
        over to a surviving uplink, mirroring :meth:`send`'s bonding
        behaviour, so a pinned subflow degrades instead of black-holing.
        """
        interfaces = self.interfaces
        if not interfaces:
            raise RuntimeError(f"host {self.name} has no interfaces")
        if not 0 <= interface_index < len(interfaces):
            # A silent modulo here would alias a misconfigured pin onto an
            # arbitrary uplink and hide the path-manager bug that produced it.
            raise ValueError(
                f"interface index {interface_index} out of range for host "
                f"{self.name} with {len(interfaces)} interface(s)"
            )
        interface = interfaces[interface_index]
        if not interface.up:
            live = [i for i in range(len(interfaces)) if interfaces[i].up]
            if live:
                interface = interfaces[select_among(packet, live, salt=self.address)]
        return interface.send(packet)

    def receive(self, packet: Packet, interface: Optional[Interface]) -> None:
        """Deliver an arriving packet to the endpoint bound to its destination port.

        Whatever happens, the host consumes the packet: it is released to the
        packet pool once the endpoint's synchronous processing is done.
        """
        if packet.dst == self.address:
            endpoint = self._endpoints.get(packet.dst_port)
            if endpoint is not None:
                endpoint.on_packet(packet)
            else:
                self.undeliverable_packets += 1
                self._trace_no_endpoint(packet)
        else:
            # Mis-delivered packet (should not happen with correct routing).
            self.unroutable_packets += 1
            self._trace_misdelivered(packet)
        release_packet(packet)

    # ------------------------------------------------------------------

    def _emit_misdelivered(self, packet: Packet) -> None:
        if self.trace.enabled:
            self.trace.emit(
                self.simulator.now, "misdelivered", node=self.name, flow_id=packet.flow_id
            )

    def _emit_no_endpoint(self, packet: Packet) -> None:
        if self.trace.enabled:
            self.trace.emit(
                self.simulator.now,
                "no_endpoint",
                node=self.name,
                port=packet.dst_port,
                flow_id=packet.flow_id,
            )
