"""Output queues for network interfaces.

Three disciplines are provided:

* :class:`DropTailQueue` — the classic bounded FIFO (per-port static buffer).
* :class:`EcnQueue` — a drop-tail queue that additionally marks ECN-capable
  packets with Congestion Experienced when the instantaneous occupancy found
  on arrival (not counting the arriving packet) exceeds a threshold ``K``
  (the DCTCP marking scheme).
* :class:`SharedBufferQueue` + :class:`SharedBufferPool` — per-port queues
  drawing from a switch-wide shared memory pool with a dynamic-threshold
  admission policy, modelling the shared-memory commodity switches the
  paper's introduction blames for buffer pressure during incast.

All queues expose the same interface (:class:`Queue`), count their drops and
accepted/transmitted bytes, and are intentionally agnostic of what is on the
other end — the interface object drains them.

Enqueue/dequeue run once per packet per hop, so the three built-in
disciplines override them with *flattened* implementations: admission checks,
ECN marking and :class:`QueueStats` updates are folded inline as unguarded
integer operations (capacity bounds are normalised to huge sentinels instead
of ``None`` checks, and the per-packet ``_admit``/``_mark``/``_on_accepted``/
``_on_released`` hook calls of the generic base path are gone).  The generic
hook-based :class:`Queue` implementation remains for custom subclasses.
"""

from __future__ import annotations

import sys
from collections import deque
from typing import Deque, Optional

from repro.net.packet import Packet

#: Effectively-unbounded capacity sentinel: comparing against this is cheaper
#: than an ``is not None`` guard on every packet.
_UNBOUNDED = sys.maxsize


class QueueStats:
    """Mutable counters shared by all queue disciplines."""

    __slots__ = (
        "enqueued_packets",
        "enqueued_bytes",
        "dequeued_packets",
        "dequeued_bytes",
        "dropped_packets",
        "dropped_bytes",
        "ecn_marked_packets",
    )

    def __init__(self) -> None:
        self.enqueued_packets = 0
        self.enqueued_bytes = 0
        self.dequeued_packets = 0
        self.dequeued_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.ecn_marked_packets = 0

    @property
    def offered_packets(self) -> int:
        """Packets offered to the queue (accepted + dropped)."""
        return self.enqueued_packets + self.dropped_packets

    @property
    def drop_rate(self) -> float:
        """Fraction of offered packets that were dropped."""
        offered = self.offered_packets
        return self.dropped_packets / offered if offered else 0.0


class Queue:
    """Abstract bounded packet queue.

    The base ``enqueue``/``dequeue`` drive the ``_admit``/``_mark``/
    ``_on_accepted``/``_on_released`` hooks, which keeps custom disciplines
    easy to write; the built-in disciplines bypass the hooks with flattened
    overrides for speed.
    """

    def __init__(self) -> None:
        self._packets: Deque[Packet] = deque()
        self._bytes = 0
        self.stats = QueueStats()

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        # The built-in disciplines override enqueue/dequeue/transit with
        # flattened bodies that bypass the hooks.  A subclass that customises
        # a hook without redefining those methods would silently lose its
        # customisation — so give such subclasses the generic hook-driven
        # path back for every method they did not define themselves.  (The
        # built-ins are unaffected: each defines, or explicitly aliases, all
        # three methods in its own class body.)
        if any(
            name in cls.__dict__
            for name in ("_admit", "_mark", "_on_accepted", "_on_released")
        ):
            for name in ("enqueue", "dequeue", "transit"):
                if name not in cls.__dict__:
                    setattr(cls, name, getattr(Queue, name))

    # -- interface used by Interface objects -------------------------------

    def enqueue(self, packet: Packet) -> bool:
        """Offer ``packet``; return True if accepted, False if dropped."""
        stats = self.stats
        size = packet.size
        if not self._admit(packet):
            stats.dropped_packets += 1
            stats.dropped_bytes += size
            return False
        self._mark(packet)
        self._packets.append(packet)
        self._bytes += size
        self._on_accepted(packet)
        stats.enqueued_packets += 1
        stats.enqueued_bytes += size
        return True

    def dequeue(self) -> Optional[Packet]:
        """Remove and return the head packet, or ``None`` if empty."""
        if not self._packets:
            return None
        packet = self._packets.popleft()
        size = packet.size
        self._bytes -= size
        self._on_released(packet)
        stats = self.stats
        stats.dequeued_packets += 1
        stats.dequeued_bytes += size
        return packet

    def transit(self, packet: Packet) -> bool:
        """Pass ``packet`` straight through an *empty* queue.

        Interfaces call this instead of ``enqueue`` + immediate ``dequeue``
        when the transmitter is idle (which implies the queue is empty): the
        packet is counted exactly as if it had been enqueued and dequeued —
        admission, marking and statistics are all identical — but fast
        disciplines skip the deque round-trip.  Returns False if the
        discipline rejected the packet (it was then counted as dropped).

        Calling this on a non-empty queue is a caller bug (it would let the
        packet jump the queue and silently lose the buffered head) and
        raises immediately.
        """
        if self._packets:
            raise RuntimeError("transit() requires an empty queue")
        if not self.enqueue(packet):
            return False
        self.dequeue()
        return True

    def __len__(self) -> int:
        return len(self._packets)

    @property
    def byte_length(self) -> int:
        """Bytes currently buffered."""
        return self._bytes

    @property
    def is_empty(self) -> bool:
        """True if no packets are buffered."""
        return not self._packets

    # -- hooks overridden by concrete disciplines ---------------------------

    def _admit(self, packet: Packet) -> bool:
        raise NotImplementedError

    def _mark(self, packet: Packet) -> None:
        """Optionally set ECN bits on an accepted packet (default: no-op).

        Runs before the packet is appended, so ``len(self._packets)`` is the
        occupancy the packet finds on arrival — the quantity DCTCP's marking
        rule is defined on.
        """

    def _on_accepted(self, packet: Packet) -> None:
        """Hook called after a packet is stored (default: no-op)."""

    def _on_released(self, packet: Packet) -> None:
        """Hook called after a packet leaves the queue (default: no-op)."""


class DropTailQueue(Queue):
    """Bounded FIFO that drops arrivals once full.

    The bound can be expressed in packets, bytes, or both (whichever limit is
    hit first applies).
    """

    def __init__(
        self,
        capacity_packets: Optional[int] = 100,
        capacity_bytes: Optional[int] = None,
    ) -> None:
        super().__init__()
        if capacity_packets is None and capacity_bytes is None:
            raise ValueError("a drop-tail queue needs at least one capacity bound")
        if capacity_packets is not None and capacity_packets <= 0:
            raise ValueError("capacity_packets must be positive")
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_packets = capacity_packets
        self.capacity_bytes = capacity_bytes
        self._max_packets = capacity_packets if capacity_packets is not None else _UNBOUNDED
        self._max_bytes = capacity_bytes if capacity_bytes is not None else _UNBOUNDED

    def _admit(self, packet: Packet) -> bool:
        return (
            len(self._packets) < self._max_packets
            and self._bytes + packet.size <= self._max_bytes
        )

    def enqueue(self, packet: Packet) -> bool:
        stats = self.stats
        size = packet.size
        packets = self._packets
        if len(packets) >= self._max_packets or self._bytes + size > self._max_bytes:
            stats.dropped_packets += 1
            stats.dropped_bytes += size
            return False
        packets.append(packet)
        self._bytes += size
        stats.enqueued_packets += 1
        stats.enqueued_bytes += size
        return True

    def dequeue(self) -> Optional[Packet]:
        packets = self._packets
        if not packets:
            return None
        packet = packets.popleft()
        size = packet.size
        self._bytes -= size
        stats = self.stats
        stats.dequeued_packets += 1
        stats.dequeued_bytes += size
        return packet

    def transit(self, packet: Packet) -> bool:
        if self._packets:
            raise RuntimeError("transit() requires an empty queue")
        # Empty queue: the capacity checks reduce to "does one packet fit".
        stats = self.stats
        size = packet.size
        if self._max_packets < 1 or size > self._max_bytes:
            stats.dropped_packets += 1
            stats.dropped_bytes += size
            return False
        stats.enqueued_packets += 1
        stats.enqueued_bytes += size
        stats.dequeued_packets += 1
        stats.dequeued_bytes += size
        return True


class EcnQueue(DropTailQueue):
    """Drop-tail queue with DCTCP-style instantaneous ECN marking.

    An ECN-capable packet is marked with Congestion Experienced when the
    queue occupancy it finds on arrival — the packets already buffered,
    excluding itself — strictly exceeds ``marking_threshold`` (DCTCP's
    "queue occupancy greater than K upon arrival").  Non-ECN-capable packets
    are never marked; they simply occupy the buffer.

    Note: this used to mark at ``>= K`` (one packet early, the ns-3 RED
    ``minTh == maxTh`` convention); the strict comparison matches the DCTCP
    paper's marking rule and this class's documentation.
    """

    def __init__(
        self,
        capacity_packets: Optional[int] = 100,
        capacity_bytes: Optional[int] = None,
        marking_threshold: int = 20,
    ) -> None:
        super().__init__(capacity_packets=capacity_packets, capacity_bytes=capacity_bytes)
        if marking_threshold < 0:
            raise ValueError("marking_threshold must be non-negative")
        self.marking_threshold = marking_threshold

    def _mark(self, packet: Packet) -> None:
        if packet.ecn_capable and len(self._packets) > self.marking_threshold:
            packet.ecn_ce = True
            self.stats.ecn_marked_packets += 1

    def enqueue(self, packet: Packet) -> bool:
        stats = self.stats
        size = packet.size
        packets = self._packets
        if len(packets) >= self._max_packets or self._bytes + size > self._max_bytes:
            stats.dropped_packets += 1
            stats.dropped_bytes += size
            return False
        # Marking is evaluated on the occupancy found on arrival, i.e. before
        # the packet itself is appended.
        if packet.ecn_capable and len(packets) > self.marking_threshold:
            packet.ecn_ce = True
            stats.ecn_marked_packets += 1
        packets.append(packet)
        self._bytes += size
        stats.enqueued_packets += 1
        stats.enqueued_bytes += size
        return True

    # Keep the flattened fast paths despite this class defining _mark (see
    # Queue.__init_subclass__): dequeue never marks, and transit sees an
    # empty queue, where the strict > threshold rule (threshold >= 0) can
    # never fire.
    dequeue = DropTailQueue.dequeue
    transit = DropTailQueue.transit


class SharedBufferPool:
    """A switch-wide shared memory pool with dynamic per-port thresholds.

    Implements the classic dynamic-threshold policy: a port may buffer at most
    ``alpha * free_bytes`` where ``free_bytes`` is the unused portion of the
    shared pool.  Heavily loaded ports therefore squeeze the space available
    to others — the "buffer pressure" effect the paper's introduction cites as
    one reason short TCP flows miss deadlines.
    """

    def __init__(self, total_bytes: int, alpha: float = 1.0) -> None:
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.total_bytes = total_bytes
        self.alpha = alpha
        self.used_bytes = 0

    @property
    def free_bytes(self) -> int:
        """Unreserved bytes remaining in the pool."""
        return self.total_bytes - self.used_bytes

    def port_threshold(self) -> float:
        """Maximum occupancy currently allowed for any single port."""
        return self.alpha * self.free_bytes

    def try_reserve(self, occupancy_bytes: int, packet_size: int) -> bool:
        """Reserve ``packet_size`` bytes for a port currently holding ``occupancy_bytes``."""
        if self.used_bytes + packet_size > self.total_bytes:
            return False
        if occupancy_bytes + packet_size > self.port_threshold():
            return False
        self.used_bytes += packet_size
        return True

    def release(self, packet_size: int) -> None:
        """Return ``packet_size`` bytes to the pool."""
        self.used_bytes -= packet_size
        if self.used_bytes < 0:
            raise RuntimeError("shared buffer accounting went negative")


class SharedBufferQueue(Queue):
    """Per-port queue whose admission is governed by a :class:`SharedBufferPool`.

    Optionally also applies DCTCP-style ECN marking (arrival occupancy
    strictly above ``marking_threshold`` packets, same rule as
    :class:`EcnQueue`) so that DCTCP can be evaluated on shared-memory
    switches too.
    """

    def __init__(self, pool: SharedBufferPool, marking_threshold: Optional[int] = None) -> None:
        super().__init__()
        self.pool = pool
        self.marking_threshold = marking_threshold
        # Fold the optional-marking branch into an integer compare: a
        # threshold that can never be reached disables marking unguarded.
        self._marking_threshold = (
            marking_threshold if marking_threshold is not None else _UNBOUNDED
        )

    def _admit(self, packet: Packet) -> bool:
        return self.pool.try_reserve(self._bytes, packet.size)

    def _mark(self, packet: Packet) -> None:
        if packet.ecn_capable and len(self._packets) > self._marking_threshold:
            packet.ecn_ce = True
            self.stats.ecn_marked_packets += 1

    def enqueue(self, packet: Packet) -> bool:
        stats = self.stats
        size = packet.size
        if not self.pool.try_reserve(self._bytes, size):
            stats.dropped_packets += 1
            stats.dropped_bytes += size
            return False
        packets = self._packets
        if packet.ecn_capable and len(packets) > self._marking_threshold:
            packet.ecn_ce = True
            stats.ecn_marked_packets += 1
        packets.append(packet)
        self._bytes += size
        stats.enqueued_packets += 1
        stats.enqueued_bytes += size
        return True

    def dequeue(self) -> Optional[Packet]:
        packets = self._packets
        if not packets:
            return None
        packet = packets.popleft()
        size = packet.size
        self._bytes -= size
        self.pool.release(size)
        stats = self.stats
        stats.dequeued_packets += 1
        stats.dequeued_bytes += size
        return packet

    def _on_released(self, packet: Packet) -> None:
        self.pool.release(packet.size)
