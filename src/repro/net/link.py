"""Links and network interfaces.

The transmission model is the standard store-and-forward one used by ns-3's
point-to-point devices:

1. a node hands a packet to one of its :class:`Interface` objects;
2. the packet is offered to the interface's output :class:`~repro.net.queues.Queue`
   (it may be dropped there);
3. when the interface is idle it dequeues the head packet and occupies the
   link for its serialisation time (``size * 8 / rate``);
4. after serialisation, the packet propagates for the link delay and is then
   delivered to the node on the other end.

A full-duplex cable between two nodes is simply a pair of interfaces, one on
each node, wired to each other — :func:`connect` builds that pair.

Packet ownership: an interface *consumes* every packet that is offered to it
and then lost — rejected while the link is down, dropped by the queue, or cut
mid-serialisation.  Those packets are released to the packet pool after the
drop callbacks have run; delivered packets are released further downstream by
the receiving host.  Callers must therefore never touch a packet again once
:meth:`Interface.send` has been called, whatever it returned.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.net.packet import Packet, release_packet
from repro.net.queues import DropTailQueue, Queue
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.net.node import Node


class Interface:
    """A unidirectional transmitter attached to a node.

    Attributes:
        node: the owning node.
        peer: the node reached through this interface.
        rate_bps: link capacity in bits per second.  May be lowered/raised at
            runtime via :meth:`set_rate` (fault injection); packets already
            serialising finish at the rate in force when they started.
        delay_s: one-way propagation delay in seconds.
        queue: output queue discipline.
        up: administrative/physical state.  A down interface drops every
            packet offered to it, keeps already-queued packets parked, and
            loses packets whose serialisation completes while it is down
            (they were "on the wire" when the cable was cut).
        bytes_sent / packets_sent: transmission counters (payload + headers).
        fault_drops: packets lost because the interface was down.
        fault_drops_offered: the subset of ``fault_drops`` rejected at offer
            time — these never reached the output queue, so they are absent
            from its ``offered_packets`` counter (loss-rate denominators must
            add them back; on-the-wire losses are already counted as offered).
        busy_time: cumulative seconds the transmitter has been serialising,
            used to compute link utilisation.
    """

    def __init__(
        self,
        simulator: Simulator,
        node: "Node",
        rate_bps: float,
        delay_s: float,
        queue: Optional[Queue] = None,
        name: str = "",
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if delay_s < 0:
            raise ValueError("link delay cannot be negative")
        self.simulator = simulator
        self.node = node
        self.peer: Optional["Node"] = None
        self.peer_interface: Optional["Interface"] = None
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.queue = queue if queue is not None else DropTailQueue()
        self.name = name or f"{node.name}-if{len(node.interfaces)}"
        self.bytes_sent = 0
        self.packets_sent = 0
        self.busy_time = 0.0
        self.up = True
        self.fault_drops = 0
        self.fault_drops_offered = 0
        self._transmitting = False
        # At most one packet serialises at a time, so one reusable timer
        # covers every transmission this interface will ever make.
        self._tx_timer = simulator.timer(self._finish_transmission)
        self.drop_callback: Optional[Callable[[Packet, "Interface"], None]] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach_peer(self, peer: "Node", peer_interface: "Interface") -> None:
        """Point this interface at the node (and reverse interface) it reaches."""
        self.peer = peer
        self.peer_interface = peer_interface

    # ------------------------------------------------------------------
    # Transmission path
    # ------------------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Offer ``packet`` for transmission; returns False if it was dropped.

        Either way the interface takes ownership: a rejected packet is
        recorded (fault or queue drop) and released to the packet pool.
        """
        if self.peer is None:
            raise RuntimeError(f"interface {self.name} is not connected")
        if not self.up:
            self.fault_drops += 1
            self.fault_drops_offered += 1
            self._drop(packet)
            return False
        if self._transmitting:
            if not self.queue.enqueue(packet):
                self._drop(packet)
                return False
            return True
        # Idle transmitter ⇒ the queue is empty (a down link parks packets,
        # but the `up` check above already excluded that state): pass the
        # packet through the queue's counters without the deque round-trip
        # and serialise it immediately.
        if not self.queue.transit(packet):
            self._drop(packet)
            return False
        self._transmitting = True
        tx_delay = (packet.size * 8.0) / self.rate_bps
        self.busy_time += tx_delay
        self._tx_timer.arm(tx_delay, packet)
        return True

    def _drop(self, packet: Packet) -> None:
        """Run the drop notifications, then retire the packet."""
        if self.drop_callback is not None:
            self.drop_callback(packet, self)
        self.node.note_drop(packet, self)
        release_packet(packet)

    def _start_next_transmission(self) -> None:
        if not self.up:
            # Queued packets stay parked until the link comes back up.
            self._transmitting = False
            return
        packet = self.queue.dequeue()
        if packet is None:
            self._transmitting = False
            return
        self._transmitting = True
        # Inlined transmission_delay(): one attribute walk instead of a call.
        tx_delay = (packet.size * 8.0) / self.rate_bps
        self.busy_time += tx_delay
        self._tx_timer.arm(tx_delay, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        if not self.up:
            # The link went down while this packet was serialising: it was on
            # the wire when the cable was cut, so it is lost.
            self.fault_drops += 1
            self._drop(packet)
            self._start_next_transmission()
            return
        self.bytes_sent += packet.size
        self.packets_sent += 1
        # Propagation: the receiving node sees the packet one delay later.
        self.simulator.schedule(self.delay_s, self._deliver, packet)
        # The transmitter is free again as soon as serialisation ends.
        self._start_next_transmission()

    def _deliver(self, packet: Packet) -> None:
        packet.hops += 1
        assert self.peer is not None
        self.peer.receive(packet, self.peer_interface)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def set_up(self, up: bool) -> None:
        """Change the link state.  Re-enabling a link resumes draining its queue."""
        if self.up == up:
            return
        self.up = up
        if up and not self._transmitting:
            self._start_next_transmission()

    def set_rate(self, rate_bps: float) -> None:
        """Change the link capacity; packets already serialising are unaffected."""
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        self.rate_bps = rate_bps

    def purge_queue(self) -> int:
        """Drop every parked packet (host detach: the cable is unplugged).

        Packets sitting in a down interface's queue would otherwise be
        delivered to the *old* peer when the interface is reused — a detached
        host's queue contents are gone for good.  Each purged packet is
        counted as a fault drop and retired through the normal drop path.
        Returns the number of packets purged.
        """
        purged = 0
        while True:
            packet = self.queue.dequeue()
            if packet is None:
                break
            self.fault_drops += 1
            self._drop(packet)
            purged += 1
        return purged

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def utilisation(self, duration_s: float) -> float:
        """Fraction of ``duration_s`` this transmitter spent serialising packets."""
        if duration_s <= 0:
            return 0.0
        return min(1.0, self.busy_time / duration_s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        peer = self.peer.name if self.peer is not None else "unconnected"
        return f"Interface({self.name} -> {peer}, {self.rate_bps/1e6:.0f} Mbps)"


QueueFactory = Callable[[], Queue]


def connect(
    simulator: Simulator,
    node_a: "Node",
    node_b: "Node",
    rate_bps: float,
    delay_s: float,
    queue_factory: Optional[QueueFactory] = None,
) -> tuple[Interface, Interface]:
    """Create a full-duplex link between ``node_a`` and ``node_b``.

    Each direction gets its own queue from ``queue_factory`` (drop-tail with
    default capacity when omitted).  Returns the pair of interfaces
    ``(a_to_b, b_to_a)``.
    """
    make_queue: QueueFactory = queue_factory if queue_factory is not None else DropTailQueue
    iface_ab = Interface(simulator, node_a, rate_bps, delay_s, make_queue())
    iface_ba = Interface(simulator, node_b, rate_bps, delay_s, make_queue())
    iface_ab.attach_peer(node_b, iface_ba)
    iface_ba.attach_peer(node_a, iface_ab)
    node_a.add_interface(iface_ab, node_b)
    node_b.add_interface(iface_ba, node_a)
    return iface_ab, iface_ba
