"""Network-wide observation helpers.

The simulator's nodes, interfaces and queues all keep local counters as they
run (drops, bytes forwarded, busy time).  :class:`NetworkMonitor` aggregates
those counters into the network-level quantities the paper reports:

* loss rate per switch layer (core / aggregation / edge),
* overall network utilisation (busy fraction of core-facing links),
* aggregate bytes carried.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from repro.net.host import Host
from repro.net.link import Interface
from repro.net.switch import Switch


@dataclass
class LayerLossStats:
    """Loss statistics aggregated over all switches of one layer.

    ``offered_packets`` / ``dropped_packets`` come from the output queues;
    ``fault_dropped_packets`` counts packets lost at a *down* interface
    (offered while down, or on the wire when the link was cut), which would
    otherwise vanish from the loss accounting.
    """

    layer: str
    offered_packets: int = 0
    dropped_packets: int = 0
    dropped_bytes: int = 0
    fault_dropped_packets: int = 0
    #: Subset of ``fault_dropped_packets`` rejected before reaching a queue;
    #: only these are missing from ``offered_packets``.
    fault_dropped_offered: int = 0

    @property
    def loss_rate(self) -> float:
        """Fraction of packets offered to this layer's interfaces that were lost.

        Every fault drop is a loss, but only offer-time fault drops are added
        to the denominator: a packet lost on the wire was already counted as
        offered by the queue it passed through, and counting it twice would
        understate the loss rate.
        """
        offered = self.offered_packets + self.fault_dropped_offered
        if offered == 0:
            return 0.0
        return (self.dropped_packets + self.fault_dropped_packets) / offered


@dataclass
class NetworkSnapshot:
    """Aggregated network statistics over a measurement interval."""

    duration_s: float
    layer_loss: Dict[str, LayerLossStats] = field(default_factory=dict)
    core_utilisation: float = 0.0
    edge_utilisation: float = 0.0
    total_bytes_carried: int = 0
    total_packets_dropped: int = 0
    #: Packets lost at down interfaces (hosts and switches); these bypass the
    #: queues entirely and are *also* included in ``total_packets_dropped``.
    total_fault_drops: int = 0

    def loss_rate(self, layer: str) -> float:
        """Loss rate for one switch layer (0.0 if the layer is absent)."""
        stats = self.layer_loss.get(layer)
        return stats.loss_rate if stats is not None else 0.0


class NetworkMonitor:
    """Aggregates per-device counters into network-level statistics."""

    def __init__(self, hosts: Sequence[Host], switches: Sequence[Switch]) -> None:
        self.hosts = list(hosts)
        self.switches = list(switches)

    # ------------------------------------------------------------------

    def _interfaces_of(self, switches: Iterable[Switch]) -> List[Interface]:
        interfaces: List[Interface] = []
        for switch in switches:
            interfaces.extend(switch.interfaces)
        return interfaces

    def snapshot(self, duration_s: float) -> NetworkSnapshot:
        """Build a :class:`NetworkSnapshot` covering ``duration_s`` of simulated time."""
        snapshot = NetworkSnapshot(duration_s=duration_s)

        for switch in self.switches:
            stats = snapshot.layer_loss.setdefault(switch.layer, LayerLossStats(switch.layer))
            for interface in switch.interfaces:
                stats.offered_packets += interface.queue.stats.offered_packets
                stats.dropped_packets += interface.queue.stats.dropped_packets
                stats.dropped_bytes += interface.queue.stats.dropped_bytes
                stats.fault_dropped_packets += interface.fault_drops
                stats.fault_dropped_offered += interface.fault_drops_offered
                snapshot.total_bytes_carried += interface.bytes_sent
                snapshot.total_packets_dropped += (
                    interface.queue.stats.dropped_packets + interface.fault_drops
                )
                snapshot.total_fault_drops += interface.fault_drops

        core_switches = [switch for switch in self.switches if switch.layer == "core"]
        edge_switches = [switch for switch in self.switches if switch.layer == "edge"]
        core_interfaces = self._interfaces_of(core_switches)
        edge_interfaces = self._interfaces_of(edge_switches)
        if core_interfaces and duration_s > 0:
            snapshot.core_utilisation = sum(
                interface.utilisation(duration_s) for interface in core_interfaces
            ) / len(core_interfaces)
        if edge_interfaces and duration_s > 0:
            snapshot.edge_utilisation = sum(
                interface.utilisation(duration_s) for interface in edge_interfaces
            ) / len(edge_interfaces)

        for host in self.hosts:
            for interface in host.interfaces:
                snapshot.total_bytes_carried += interface.bytes_sent
                snapshot.total_packets_dropped += (
                    interface.queue.stats.dropped_packets + interface.fault_drops
                )
                snapshot.total_fault_drops += interface.fault_drops

        return snapshot

    def host_drop_counts(self) -> Dict[str, int]:
        """Packets dropped in each host's own uplink queue (e.g. during incast)."""
        return {host.name: host.dropped_packets for host in self.hosts}
