"""Shortest-path multi-path route computation.

Data-centre fabrics (FatTree, VL2, ...) are regular enough that every
shortest path is an acceptable path, and ECMP load-balances across all of
them.  We therefore compute, for every switch and every destination host,
the set of neighbours that lie on *some* shortest path to that host, and
install that set as the ECMP next-hop group.

The computation is a breadth-first search rooted at each destination host —
O(hosts × (V + E)) overall, which is negligible next to packet simulation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import networkx as nx

from repro.net.host import Host
from repro.net.switch import Switch


def build_ecmp_routes(
    graph: nx.Graph,
    hosts: Sequence[Host],
    switches: Sequence[Switch],
    allow_partial: bool = False,
) -> None:
    """Populate the forwarding table of every switch in ``switches``.

    Args:
        graph: undirected connectivity graph whose vertices are node names.
        hosts: destination hosts (routes are computed towards each of them).
        switches: switches to programme.
        allow_partial: when True, a switch that cannot reach a destination
            simply has that route removed (packets there count as unroutable)
            instead of the build failing.  This is the mode fault injection
            uses to rebuild tables around failed links, where partitions are
            legitimate outcomes rather than construction bugs.

    Raises:
        ValueError: if ``allow_partial`` is False and a destination host is
            unreachable from some switch — that always indicates a mis-built
            topology.
    """
    for destination in hosts:
        distances: Dict[str, int] = nx.single_source_shortest_path_length(
            graph, destination.name
        )
        for switch in switches:
            if switch.name not in distances:
                if allow_partial:
                    switch.remove_route(destination.address)
                    continue
                raise ValueError(
                    f"switch {switch.name} cannot reach host {destination.name}; "
                    "the topology graph is disconnected"
                )
            own_distance = distances[switch.name]
            next_hop_indices = [
                switch.neighbor_to_interface[neighbor]
                for neighbor in graph.neighbors(switch.name)
                if distances.get(neighbor, own_distance) == own_distance - 1
                and neighbor in switch.neighbor_to_interface
            ]
            if not next_hop_indices:
                if allow_partial:
                    switch.remove_route(destination.address)
                    continue
                raise ValueError(
                    f"no next hop from {switch.name} towards {destination.name}"
                )
            switch.install_route(destination.address, sorted(next_hop_indices))


def count_equal_cost_paths(graph: nx.Graph, source: str, destination: str) -> int:
    """Number of distinct shortest paths between two nodes.

    MMPTCP's topology-informed reordering policy uses this to size the
    duplicate-ACK threshold during the packet-scatter phase: the more
    parallel paths packets may take, the more benign reordering is expected.
    """
    if source == destination:
        return 1
    forward = nx.single_source_shortest_path_length(graph, source)
    if destination not in forward:
        return 0
    backward = nx.single_source_shortest_path_length(graph, destination)
    total_distance = forward[destination]

    # Count shortest paths by dynamic programming over the shortest-path DAG.
    path_counts: Dict[str, int] = {source: 1}
    # Process vertices in order of increasing distance from the source.
    on_some_shortest_path = [
        node
        for node in forward
        if node in backward and forward[node] + backward[node] == total_distance
    ]
    on_some_shortest_path.sort(key=lambda node: forward[node])
    for node in on_some_shortest_path:
        if node == source:
            continue
        count = 0
        for neighbor in graph.neighbors(node):
            if neighbor in path_counts and forward.get(neighbor, -1) == forward[node] - 1:
                count += path_counts[neighbor]
        path_counts[node] = count
    return path_counts.get(destination, 0)


def verify_all_pairs_routable(
    graph: nx.Graph, hosts: Iterable[Host], switches: Sequence[Switch]
) -> bool:
    """Sanity check used by tests: every switch has a route to every host."""
    host_addresses = [host.address for host in hosts]
    for switch in switches:
        for address in host_addresses:
            if not switch.routes_to(address):
                return False
    return True
