"""Timed fault injection: link failures, degradation, drains and migration.

A fault schedule is a tuple of :class:`FaultEvent`s — pure, hashable,
picklable data, so it can live on a frozen :class:`ExperimentConfig` and
travel to worker processes unchanged.  The :class:`FaultInjector` arms the
schedule on a concrete topology: at each event's time it flips the named
link's state (both directions of the full-duplex pair), mutates the
topology's connectivity graph, and rebuilds the ECMP forwarding tables
around the failure (``allow_partial=True`` — a partition makes the affected
destinations unroutable rather than crashing the run).

Two layers cooperate to keep traffic flowing:

* the routing rebuild removes dead next hops from every ECMP group, so new
  path selections never consider them;
* :meth:`repro.net.switch.Switch.select_output_interface` re-hashes over the
  live subset of a group if the hashed choice is down, which covers any
  window where tables and link state disagree.

Beyond the four link verbs, two mobility verbs ride the same machinery:

* ``drain_link`` is a compound event expanded at arm time into a gradual
  ``degrade`` staircase (:data:`DRAIN_STEPS` steps of ``factor``,
  ``factor**2``, ...) followed by a ``link_down`` — the shape of an operator
  draining traffic off a link before taking it out of service;
* ``migrate_host`` detaches the named host (``node_a``), waits out the
  migration downtime (``duration_s``), then re-attaches it to the named
  switch (``node_b``), optionally under a new address — see
  :meth:`repro.topology.base.Topology.migrate_host`.

Idempotency: re-applying a state a link is already in is an explicit no-op.
``link_up`` on an up link does not re-add the graph edge (a duplicate edge
is harmless in networkx, but the rebuild it triggered was pure waste and the
intent is ambiguous), ``link_down`` on a down link changes nothing, and
``restore`` without a matching ``degrade`` leaves the rate untouched.  Every
scheduled event still counts in ``applied_events`` and still traces, so
schedules remain auditable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.tracing import NULL_SINK, TraceSink

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.link import Interface
    from repro.topology.base import Topology

#: Fault kinds.
LINK_DOWN = "link_down"
LINK_UP = "link_up"
DEGRADE = "degrade"
RESTORE = "restore"
MIGRATE_HOST = "migrate_host"
DRAIN_LINK = "drain_link"

_KINDS = (LINK_DOWN, LINK_UP, DEGRADE, RESTORE, MIGRATE_HOST, DRAIN_LINK)

#: Number of degrade steps a ``drain_link`` expands into before the final
#: ``link_down``.
DRAIN_STEPS = 3


@dataclass(frozen=True)
class FaultEvent:
    """One timed change to the fabric.

    Attributes:
        time_s: simulated time at which the fault is applied.
        kind: one of ``link_down`` / ``link_up`` / ``degrade`` / ``restore``
            / ``migrate_host`` / ``drain_link``.
        node_a / node_b: for link kinds, names of the link's endpoints (order
            irrelevant).  For ``migrate_host``, ``node_a`` is the host being
            migrated and ``node_b`` the switch it re-attaches to (order
            matters).
        factor: for ``degrade``, the multiplier applied to the link's
            *original* rate (0.25 = quarter speed).  For ``drain_link``, the
            per-step multiplier of the degrade staircase (must be in (0, 1)).
            Ignored otherwise.
        duration_s: for ``drain_link``, the time from the first degrade step
            to the final ``link_down``.  For ``migrate_host``, the downtime
            between detach and re-attach (0 = atomic migration).
        new_address: for ``migrate_host``, the address the host assumes at
            its new attachment point (``None`` keeps the old address — a
            "VM migration" that preserves identity).
    """

    time_s: float
    kind: str
    node_a: str
    node_b: str
    factor: float = 1.0
    duration_s: float = 0.0
    new_address: Optional[int] = None

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("fault time cannot be negative")
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {_KINDS}")
        if self.kind == DEGRADE and not 0 < self.factor:
            raise ValueError("degrade factor must be positive")
        if not self.node_a or not self.node_b or self.node_a == self.node_b:
            raise ValueError("fault endpoints must be two distinct node names")
        if self.duration_s < 0:
            raise ValueError("fault duration cannot be negative")
        if self.kind == DRAIN_LINK:
            if self.duration_s <= 0:
                raise ValueError("drain_link needs a positive duration")
            if not 0 < self.factor < 1:
                raise ValueError("drain_link factor must be in (0, 1)")
        if self.kind == MIGRATE_HOST:
            if self.new_address is not None and self.new_address < 0:
                raise ValueError("migrate_host new_address cannot be negative")
        elif self.new_address is not None:
            raise ValueError(f"new_address is only meaningful for {MIGRATE_HOST!r} events")


def link_failure(time_s: float, node_a: str, node_b: str) -> FaultEvent:
    """A permanent failure of the ``node_a``–``node_b`` link."""
    return FaultEvent(time_s=time_s, kind=LINK_DOWN, node_a=node_a, node_b=node_b)


def link_flap(
    down_s: float, up_s: float, node_a: str, node_b: str
) -> Tuple[FaultEvent, FaultEvent]:
    """A failure at ``down_s`` followed by recovery at ``up_s``."""
    if up_s <= down_s:
        raise ValueError("recovery must come after the failure")
    return (
        FaultEvent(time_s=down_s, kind=LINK_DOWN, node_a=node_a, node_b=node_b),
        FaultEvent(time_s=up_s, kind=LINK_UP, node_a=node_a, node_b=node_b),
    )


def degradation(
    time_s: float, node_a: str, node_b: str, factor: float, restore_s: Optional[float] = None
) -> Tuple[FaultEvent, ...]:
    """Capacity degradation to ``factor`` × original, optionally restored later."""
    events = [
        FaultEvent(time_s=time_s, kind=DEGRADE, node_a=node_a, node_b=node_b, factor=factor)
    ]
    if restore_s is not None:
        if restore_s <= time_s:
            raise ValueError("restore must come after the degradation")
        events.append(
            FaultEvent(time_s=restore_s, kind=RESTORE, node_a=node_a, node_b=node_b)
        )
    return tuple(events)


def host_migration(
    time_s: float,
    host: str,
    new_attachment: str,
    downtime_s: float = 0.0,
    new_address: Optional[int] = None,
) -> FaultEvent:
    """Re-home ``host`` onto the ``new_attachment`` switch at ``time_s``.

    ``downtime_s`` is the detach→re-attach gap (VM blackout window); a
    ``new_address`` models a failover that lands on a different identity
    (VIP move) rather than an address-preserving live migration.
    """
    return FaultEvent(
        time_s=time_s,
        kind=MIGRATE_HOST,
        node_a=host,
        node_b=new_attachment,
        duration_s=downtime_s,
        new_address=new_address,
    )


def link_drain(
    time_s: float, node_a: str, node_b: str, duration_s: float, factor: float = 0.5
) -> FaultEvent:
    """Gradually drain the ``node_a``–``node_b`` link, then take it down.

    Expands (at arm time) into :data:`DRAIN_STEPS` degrades — ``factor``,
    ``factor**2``, ... of the original rate, evenly spaced over
    ``duration_s`` — followed by a ``link_down`` at ``time_s + duration_s``.
    """
    return FaultEvent(
        time_s=time_s,
        kind=DRAIN_LINK,
        node_a=node_a,
        node_b=node_b,
        factor=factor,
        duration_s=duration_s,
    )


def expand_fault_event(event: FaultEvent) -> Tuple[FaultEvent, ...]:
    """Expand a compound event into the primitive steps actually applied.

    ``drain_link`` becomes its degrade staircase (:data:`DRAIN_STEPS` steps
    of ``factor``, ``factor**2``, ... evenly spaced over ``duration_s``)
    followed by the final ``link_down``; every other kind is already
    primitive.  Both the packet-level :class:`FaultInjector` and the
    flow-level fluid fault applier expand through this one function, so the
    two fidelity tiers agree on what a drain *is*.
    """
    if event.kind != DRAIN_LINK:
        return (event,)
    step = event.duration_s / DRAIN_STEPS
    staircase = tuple(
        FaultEvent(
            time_s=event.time_s + index * step,
            kind=DEGRADE,
            node_a=event.node_a,
            node_b=event.node_b,
            factor=event.factor ** (index + 1),
        )
        for index in range(DRAIN_STEPS)
    )
    return staircase + (
        FaultEvent(
            time_s=event.time_s + event.duration_s,
            kind=LINK_DOWN,
            node_a=event.node_a,
            node_b=event.node_b,
        ),
    )


class FaultInjector:
    """Arms a fault schedule on a topology inside a running simulation."""

    def __init__(
        self,
        simulator: Simulator,
        topology: "Topology",
        schedule: Tuple[FaultEvent, ...],
        trace: TraceSink = NULL_SINK,
    ) -> None:
        self.simulator = simulator
        self.topology = topology
        self.schedule = tuple(schedule)
        self.trace = trace
        self.applied_events = 0
        # Original rates, captured at degrade time so RESTORE can undo it.
        self._original_rates: Dict[Tuple[str, str], Tuple[float, float]] = {}
        # Validate eagerly: a typo'd node name should fail at arm time, not
        # mid-simulation.
        for event in self.schedule:
            self._validate(event)

    def arm(self) -> None:
        """Schedule every fault event on the simulator.

        Compound events (``drain_link``) are expanded here into their
        primitive steps; everything else is scheduled as-is.
        """
        for event in self.schedule:
            for step in self._expand(event):
                self.simulator.schedule_at(step.time_s, self._apply, step)

    # ------------------------------------------------------------------

    def _validate(self, event: FaultEvent) -> None:
        if event.kind == MIGRATE_HOST:
            host = self._named_node(event.node_a)
            if host.kind != "host":
                raise ValueError(f"migrate_host subject {event.node_a!r} is not a host")
            switch = self._named_node(event.node_b)
            if switch.kind != "switch":
                raise ValueError(
                    f"migrate_host attachment {event.node_b!r} is not a switch"
                )
            if event.new_address is not None:
                try:
                    owner = self.topology.host_by_address(event.new_address)
                except KeyError:
                    owner = None
                if owner is not None and owner is not host:
                    raise ValueError(
                        f"migrate_host new_address {event.new_address} is already "
                        f"owned by host {owner.name!r}"
                    )
        else:
            # Every link kind (drain_link included) names an existing link.
            self._interfaces_for(event)

    def _named_node(self, name: str):
        try:
            return self.topology.node(name)
        except KeyError:
            raise ValueError(f"unknown node {name!r}") from None

    def _expand(self, event: FaultEvent) -> Tuple[FaultEvent, ...]:
        """Expand compound events into the primitive steps actually applied."""
        return expand_fault_event(event)

    def _interfaces_for(self, event: FaultEvent) -> Tuple["Interface", "Interface"]:
        return self.topology.interfaces_between(event.node_a, event.node_b)

    @staticmethod
    def _oriented(
        event: FaultEvent, iface_ab: "Interface", iface_ba: "Interface"
    ) -> Tuple[Tuple[str, str], "Interface", "Interface"]:
        """A canonical (key, iface, iface) triple for per-link rate state.

        Endpoint order is documented as irrelevant, so a DEGRADE named
        ``(a, b)`` must be matched by a RESTORE named ``(b, a)``: both the
        dictionary key and the direction the stored rates refer to are
        normalised to sorted-name order.
        """
        if event.node_a <= event.node_b:
            return (event.node_a, event.node_b), iface_ab, iface_ba
        return (event.node_b, event.node_a), iface_ba, iface_ab

    def _apply(self, event: FaultEvent) -> None:
        if event.kind == DRAIN_LINK:  # pragma: no cover - guarded by arm()
            raise RuntimeError("drain_link must be expanded before application")
        if event.kind == MIGRATE_HOST:
            self._apply_migration(event)
            return
        iface_ab, iface_ba = self._interfaces_for(event)
        graph = self.topology.graph
        if event.kind == LINK_DOWN:
            # No-op when the link is already fully down: nothing to change,
            # so no route rebuild either.
            edge_present = graph.has_edge(event.node_a, event.node_b)
            if iface_ab.up or iface_ba.up or edge_present:
                iface_ab.set_up(False)
                iface_ba.set_up(False)
                if edge_present:
                    graph.remove_edge(event.node_a, event.node_b)
                self.topology.rebuild_routes()
        elif event.kind == LINK_UP:
            # No-op when the link is already fully up: re-adding the graph
            # edge and rebuilding routes would be pure (non-deterministic
            # looking) churn.
            edge_present = graph.has_edge(event.node_a, event.node_b)
            if not (iface_ab.up and iface_ba.up and edge_present):
                iface_ab.set_up(True)
                iface_ba.set_up(True)
                if not edge_present:
                    graph.add_edge(event.node_a, event.node_b)
                self.topology.rebuild_routes()
        elif event.kind == DEGRADE:
            key, iface_ab, iface_ba = self._oriented(event, iface_ab, iface_ba)
            if key not in self._original_rates:
                self._original_rates[key] = (iface_ab.rate_bps, iface_ba.rate_bps)
            original_ab, original_ba = self._original_rates[key]
            iface_ab.set_rate(original_ab * event.factor)
            iface_ba.set_rate(original_ba * event.factor)
        else:  # RESTORE — without a matching DEGRADE this is an explicit no-op.
            key, iface_ab, iface_ba = self._oriented(event, iface_ab, iface_ba)
            if key in self._original_rates:
                original_ab, original_ba = self._original_rates.pop(key)
                iface_ab.set_rate(original_ab)
                iface_ba.set_rate(original_ba)
        self.applied_events += 1
        if self.trace.enabled:
            self.trace.emit(
                self.simulator.now,
                event.kind,
                link=f"{event.node_a}<->{event.node_b}",
                factor=event.factor,
            )

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------

    def _apply_migration(self, event: FaultEvent) -> None:
        self.applied_events += 1
        if self.trace.enabled:
            self.trace.emit(
                self.simulator.now,
                event.kind,
                host=event.node_a,
                attachment=event.node_b,
                downtime=event.duration_s,
            )
        if event.duration_s > 0:
            # Downtime window: the host drops off the fabric now and the
            # routes converge around its absence until re-attach.
            self.topology.detach_host(event.node_a)
            self.simulator.schedule(event.duration_s, self._complete_migration, event)
        else:
            # Atomic migration: converge once, on the post-migration graph.
            self.topology.detach_host(event.node_a, rebuild=False)
            self._complete_migration(event)

    def _complete_migration(self, event: FaultEvent) -> None:
        self.topology.attach_host(
            event.node_a, event.node_b, new_address=event.new_address
        )
        if self.trace.enabled:
            host = self.topology.node(event.node_a)
            self.trace.emit(
                self.simulator.now,
                "host_attached",
                host=event.node_a,
                attachment=event.node_b,
                address=host.address,
            )
