"""Timed fault injection: link failures and capacity degradation.

A fault schedule is a tuple of :class:`FaultEvent`s — pure, hashable,
picklable data, so it can live on a frozen :class:`ExperimentConfig` and
travel to worker processes unchanged.  The :class:`FaultInjector` arms the
schedule on a concrete topology: at each event's time it flips the named
link's state (both directions of the full-duplex pair), mutates the
topology's connectivity graph, and rebuilds the ECMP forwarding tables
around the failure (``allow_partial=True`` — a partition makes the affected
destinations unroutable rather than crashing the run).

Two layers cooperate to keep traffic flowing:

* the routing rebuild removes dead next hops from every ECMP group, so new
  path selections never consider them;
* :meth:`repro.net.switch.Switch.select_output_interface` re-hashes over the
  live subset of a group if the hashed choice is down, which covers any
  window where tables and link state disagree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.tracing import NULL_SINK, TraceSink

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.link import Interface
    from repro.topology.base import Topology

#: Fault kinds.
LINK_DOWN = "link_down"
LINK_UP = "link_up"
DEGRADE = "degrade"
RESTORE = "restore"

_KINDS = (LINK_DOWN, LINK_UP, DEGRADE, RESTORE)


@dataclass(frozen=True)
class FaultEvent:
    """One timed change to the link between two named nodes.

    Attributes:
        time_s: simulated time at which the fault is applied.
        kind: one of ``link_down`` / ``link_up`` / ``degrade`` / ``restore``.
        node_a / node_b: names of the link's endpoints (order irrelevant).
        factor: for ``degrade``, the multiplier applied to the link's
            *original* rate (0.25 = quarter speed).  Ignored otherwise.
    """

    time_s: float
    kind: str
    node_a: str
    node_b: str
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("fault time cannot be negative")
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {_KINDS}")
        if self.kind == DEGRADE and not 0 < self.factor:
            raise ValueError("degrade factor must be positive")
        if not self.node_a or not self.node_b or self.node_a == self.node_b:
            raise ValueError("fault endpoints must be two distinct node names")


def link_failure(time_s: float, node_a: str, node_b: str) -> FaultEvent:
    """A permanent failure of the ``node_a``–``node_b`` link."""
    return FaultEvent(time_s=time_s, kind=LINK_DOWN, node_a=node_a, node_b=node_b)


def link_flap(
    down_s: float, up_s: float, node_a: str, node_b: str
) -> Tuple[FaultEvent, FaultEvent]:
    """A failure at ``down_s`` followed by recovery at ``up_s``."""
    if up_s <= down_s:
        raise ValueError("recovery must come after the failure")
    return (
        FaultEvent(time_s=down_s, kind=LINK_DOWN, node_a=node_a, node_b=node_b),
        FaultEvent(time_s=up_s, kind=LINK_UP, node_a=node_a, node_b=node_b),
    )


def degradation(
    time_s: float, node_a: str, node_b: str, factor: float, restore_s: Optional[float] = None
) -> Tuple[FaultEvent, ...]:
    """Capacity degradation to ``factor`` × original, optionally restored later."""
    events = [
        FaultEvent(time_s=time_s, kind=DEGRADE, node_a=node_a, node_b=node_b, factor=factor)
    ]
    if restore_s is not None:
        if restore_s <= time_s:
            raise ValueError("restore must come after the degradation")
        events.append(
            FaultEvent(time_s=restore_s, kind=RESTORE, node_a=node_a, node_b=node_b)
        )
    return tuple(events)


class FaultInjector:
    """Arms a fault schedule on a topology inside a running simulation."""

    def __init__(
        self,
        simulator: Simulator,
        topology: "Topology",
        schedule: Tuple[FaultEvent, ...],
        trace: TraceSink = NULL_SINK,
    ) -> None:
        self.simulator = simulator
        self.topology = topology
        self.schedule = tuple(schedule)
        self.trace = trace
        self.applied_events = 0
        # Original rates, captured at degrade time so RESTORE can undo it.
        self._original_rates: Dict[Tuple[str, str], Tuple[float, float]] = {}
        # Validate eagerly: a typo'd node name should fail at arm time, not
        # mid-simulation.
        for event in self.schedule:
            self._interfaces_for(event)

    def arm(self) -> None:
        """Schedule every fault event on the simulator."""
        for event in self.schedule:
            self.simulator.schedule_at(event.time_s, self._apply, event)

    # ------------------------------------------------------------------

    def _interfaces_for(self, event: FaultEvent) -> Tuple["Interface", "Interface"]:
        return self.topology.interfaces_between(event.node_a, event.node_b)

    @staticmethod
    def _oriented(
        event: FaultEvent, iface_ab: "Interface", iface_ba: "Interface"
    ) -> Tuple[Tuple[str, str], "Interface", "Interface"]:
        """A canonical (key, iface, iface) triple for per-link rate state.

        Endpoint order is documented as irrelevant, so a DEGRADE named
        ``(a, b)`` must be matched by a RESTORE named ``(b, a)``: both the
        dictionary key and the direction the stored rates refer to are
        normalised to sorted-name order.
        """
        if event.node_a <= event.node_b:
            return (event.node_a, event.node_b), iface_ab, iface_ba
        return (event.node_b, event.node_a), iface_ba, iface_ab

    def _apply(self, event: FaultEvent) -> None:
        iface_ab, iface_ba = self._interfaces_for(event)
        graph = self.topology.graph
        if event.kind == LINK_DOWN:
            iface_ab.set_up(False)
            iface_ba.set_up(False)
            if graph.has_edge(event.node_a, event.node_b):
                graph.remove_edge(event.node_a, event.node_b)
            self.topology.rebuild_routes()
        elif event.kind == LINK_UP:
            iface_ab.set_up(True)
            iface_ba.set_up(True)
            graph.add_edge(event.node_a, event.node_b)
            self.topology.rebuild_routes()
        elif event.kind == DEGRADE:
            key, iface_ab, iface_ba = self._oriented(event, iface_ab, iface_ba)
            if key not in self._original_rates:
                self._original_rates[key] = (iface_ab.rate_bps, iface_ba.rate_bps)
            original_ab, original_ba = self._original_rates[key]
            iface_ab.set_rate(original_ab * event.factor)
            iface_ba.set_rate(original_ba * event.factor)
        else:  # RESTORE
            key, iface_ab, iface_ba = self._oriented(event, iface_ab, iface_ba)
            if key in self._original_rates:
                original_ab, original_ba = self._original_rates.pop(key)
                iface_ab.set_rate(original_ab)
                iface_ba.set_rate(original_ba)
        self.applied_events += 1
        if self.trace.enabled:
            self.trace.emit(
                self.simulator.now,
                event.kind,
                link=f"{event.node_a}<->{event.node_b}",
                factor=event.factor,
            )
