"""Base node type shared by hosts and switches."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.tracing import NULL_SINK, TraceSink

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.link import Interface


def trace_noop(*_args, **_kwargs) -> None:
    """Shared no-op bound in place of trace emitters for the null sink.

    Nodes bind their per-event emitters once at construction: to this no-op
    when the node was built with :data:`~repro.sim.tracing.NULL_SINK` (the
    common case, whose ``enabled`` is never flipped), and to the real
    emitter for any other sink.  Real emitters keep the dynamic
    ``trace.enabled`` check, so a custom sink that toggles ``enabled``
    mid-run behaves exactly like the rest of the codebase's guarded
    emitters.
    """


class Node:
    """A network element with a set of interfaces.

    Attributes:
        name: human-readable unique name (also the graph vertex id).
        interfaces: interfaces in attachment order.
        neighbor_to_interface: maps a neighbouring node's name to the local
            interface that reaches it (used when installing routing tables).
        dropped_packets / dropped_bytes: packets lost in this node's output
            queues or for lack of a route.
    """

    kind = "node"

    def __init__(self, simulator: Simulator, name: str, trace: TraceSink = NULL_SINK) -> None:
        self.simulator = simulator
        self.name = name
        self.trace = trace
        self.interfaces: List["Interface"] = []
        self.neighbor_to_interface: Dict[str, int] = {}
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self._trace_drop = self._emit_drop if trace is not NULL_SINK else trace_noop

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def add_interface(self, interface: "Interface", peer: "Node") -> int:
        """Register ``interface`` (reaching ``peer``) and return its index."""
        index = len(self.interfaces)
        self.interfaces.append(interface)
        self.neighbor_to_interface[peer.name] = index
        return index

    def interface_to(self, peer_name: str) -> "Interface":
        """Return the interface that reaches the named neighbour."""
        return self.interfaces[self.neighbor_to_interface[peer_name]]

    # ------------------------------------------------------------------
    # Packet handling
    # ------------------------------------------------------------------

    def receive(self, packet: Packet, interface: Optional["Interface"]) -> None:
        """Handle a packet arriving on ``interface`` (subclasses override)."""
        raise NotImplementedError

    def note_drop(self, packet: Packet, interface: "Interface") -> None:
        """Record a packet lost in one of this node's output queues."""
        self.dropped_packets += 1
        self.dropped_bytes += packet.size
        self._trace_drop(packet, interface)

    def _emit_drop(self, packet: Packet, interface: "Interface") -> None:
        if self.trace.enabled:
            self.trace.emit(
                self.simulator.now,
                "packet_drop",
                node=self.name,
                kind=self.kind,
                interface=interface.name,
                flow_id=packet.flow_id,
                size=packet.size,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name}, {len(self.interfaces)} ifaces)"
