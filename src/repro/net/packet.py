"""Packet model.

A :class:`Packet` is a mutable record that travels through the simulated
network.  It carries both the fields a real TCP/IP header would carry
(addresses, ports, sequence/acknowledgement numbers, flags, ECN bits) and
the MPTCP data-sequence-signal fields (``dsn`` / ``dack`` / ``subflow_id``)
that MPTCP and MMPTCP need.

Packets are deliberately simple Python objects with ``__slots__`` — millions
of them are created per experiment, so attribute access speed and memory
footprint matter.
"""

from __future__ import annotations

from itertools import count
from typing import Optional

# TCP flag bit-mask values.
FLAG_SYN = 0x01
FLAG_ACK = 0x02
FLAG_FIN = 0x04
FLAG_DATA = 0x08

#: Combined size of the simulated IP + TCP headers in bytes.  MPTCP options
#: (DSS) would add ~20 bytes; we fold that into a single constant because the
#: evaluation is insensitive to a few header bytes.
DEFAULT_HEADER_BYTES = 54

#: Protocol numbers used in the ECMP hash.
PROTO_TCP = 6

_packet_ids = count(1)


class Packet:
    """A single simulated packet.

    Attributes:
        packet_id: globally unique identifier (useful for tracing).
        flow_id: identifier of the application flow this packet belongs to.
        src / dst: integer node addresses.
        src_port / dst_port: transport ports; MMPTCP's packet-scatter phase
            randomises ``src_port`` per packet to diversify the ECMP hash.
        protocol: IP protocol number (always TCP here, kept for hashing).
        seq: subflow-level sequence number (byte offset of the first payload
            byte carried by this packet).
        ack: cumulative subflow-level acknowledgement number.
        flags: bitwise OR of ``FLAG_*`` constants.
        payload_size / header_size: sizes in bytes; ``size`` is their sum.
        subflow_id: index of the MPTCP subflow (0 for single-path TCP and for
            the MMPTCP packet-scatter flow).
        dsn: connection-level data sequence number (byte offset).
        dack: connection-level cumulative data acknowledgement.
        ecn_capable / ecn_ce / ecn_echo: ECN negotiation and marking bits.
        sent_time: simulated time at which the (sub)flow sender transmitted
            this packet; used for RTT sampling.
        is_retransmission: marks retransmitted data (Karn's algorithm).
        hops: number of switch/host hops traversed so far.
    """

    __slots__ = (
        "packet_id",
        "flow_id",
        "src",
        "dst",
        "src_port",
        "dst_port",
        "protocol",
        "seq",
        "ack",
        "flags",
        "payload_size",
        "header_size",
        "subflow_id",
        "dsn",
        "dack",
        "ecn_capable",
        "ecn_ce",
        "ecn_echo",
        "sent_time",
        "is_retransmission",
        "hops",
    )

    def __init__(
        self,
        *,
        flow_id: int,
        src: int,
        dst: int,
        src_port: int,
        dst_port: int,
        seq: int = 0,
        ack: int = 0,
        flags: int = 0,
        payload_size: int = 0,
        header_size: int = DEFAULT_HEADER_BYTES,
        subflow_id: int = 0,
        dsn: int = 0,
        dack: int = 0,
        ecn_capable: bool = False,
        ecn_ce: bool = False,
        ecn_echo: bool = False,
        sent_time: float = 0.0,
        is_retransmission: bool = False,
        protocol: int = PROTO_TCP,
    ) -> None:
        self.packet_id = next(_packet_ids)
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.src_port = src_port
        self.dst_port = dst_port
        self.protocol = protocol
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.payload_size = payload_size
        self.header_size = header_size
        self.subflow_id = subflow_id
        self.dsn = dsn
        self.dack = dack
        self.ecn_capable = ecn_capable
        self.ecn_ce = ecn_ce
        self.ecn_echo = ecn_echo
        self.sent_time = sent_time
        self.is_retransmission = is_retransmission
        self.hops = 0

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Total on-the-wire size in bytes (header + payload)."""
        return self.header_size + self.payload_size

    @property
    def is_syn(self) -> bool:
        """True if the SYN flag is set."""
        return bool(self.flags & FLAG_SYN)

    @property
    def is_ack(self) -> bool:
        """True if the ACK flag is set."""
        return bool(self.flags & FLAG_ACK)

    @property
    def is_fin(self) -> bool:
        """True if the FIN flag is set."""
        return bool(self.flags & FLAG_FIN)

    @property
    def carries_data(self) -> bool:
        """True if the packet carries application payload."""
        return self.payload_size > 0

    def flow_tuple(self) -> tuple[int, int, int, int, int]:
        """The 5-tuple used by hash-based ECMP."""
        return (self.src, self.dst, self.src_port, self.dst_port, self.protocol)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag_names = []
        if self.is_syn:
            flag_names.append("SYN")
        if self.is_ack:
            flag_names.append("ACK")
        if self.is_fin:
            flag_names.append("FIN")
        if self.carries_data:
            flag_names.append(f"DATA[{self.payload_size}]")
        return (
            f"Packet(id={self.packet_id}, flow={self.flow_id}, "
            f"{self.src}:{self.src_port}->{self.dst}:{self.dst_port}, "
            f"seq={self.seq}, ack={self.ack}, dsn={self.dsn}, "
            f"sf={self.subflow_id}, {'|'.join(flag_names) or 'none'})"
        )


def make_ack(
    original: Packet,
    *,
    ack: int,
    dack: int = 0,
    src_port: Optional[int] = None,
    dst_port: Optional[int] = None,
    ecn_echo: bool = False,
    sent_time: float = 0.0,
) -> Packet:
    """Build an acknowledgement packet for ``original``.

    The ACK is addressed back to the original sender; by default it swaps the
    port pair so that it follows a stable reverse path under ECMP.  Callers
    can override ``dst_port`` when the data packet used a randomised source
    port (MMPTCP packet scatter) but acknowledgements must reach the sender's
    canonical port.
    """
    return Packet(
        flow_id=original.flow_id,
        src=original.dst,
        dst=original.src,
        src_port=src_port if src_port is not None else original.dst_port,
        dst_port=dst_port if dst_port is not None else original.src_port,
        ack=ack,
        dack=dack,
        flags=FLAG_ACK,
        payload_size=0,
        subflow_id=original.subflow_id,
        ecn_capable=original.ecn_capable,
        ecn_echo=ecn_echo,
        sent_time=sent_time,
    )
