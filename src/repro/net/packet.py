"""Packet model and the packet free-list pool.

A :class:`Packet` is a mutable record that travels through the simulated
network.  It carries both the fields a real TCP/IP header would carry
(addresses, ports, sequence/acknowledgement numbers, flags, ECN bits) and
the MPTCP data-sequence-signal fields (``dsn`` / ``dack`` / ``subflow_id``)
that MPTCP and MMPTCP need.

Packets are deliberately simple Python objects with ``__slots__`` — millions
of them are created per experiment, so attribute access speed and memory
footprint matter.  Two further data-plane optimisations live here:

* **Derived fields are precomputed.**  ``size`` is a plain slot (header +
  payload, set whenever either part changes), and ``flow_bytes`` holds the
  packed little-endian serialisation of the ECMP 5-tuple so that per-hop
  hashing walks a cached ``bytes`` object instead of re-deriving 40 bytes
  from five attributes at every switch.  ``flow_hash`` caches the unsalted
  FNV-1a digest of ``flow_bytes`` (filled lazily by
  :func:`repro.net.ecmp.ecmp_hash`).  **Invariant:** the 5-tuple fields
  (``src`` / ``dst`` / ``src_port`` / ``dst_port`` / ``protocol``) must not
  be mutated after construction — build (or acquire) a new packet instead,
  exactly as real hardware would emit a new frame.  Likewise
  ``payload_size`` / ``header_size`` must only change through
  :meth:`Packet.resize` so that ``size`` stays in sync.

* **Packets are pooled.**  Transports acquire packets from a
  :class:`PacketPool` free list instead of allocating, and the network
  releases every packet it consumes (endpoint delivery, queue drops,
  fault drops, unroutable packets) back to the pool.  Ownership is strictly
  linear: once a packet has been handed to ``Host.send`` /
  ``Interface.send`` the sender must never touch it again — the pool may
  recycle it for an unrelated flow at any moment.  ``PacketPool(debug=True)``
  poisons every released packet so that use-after-release shows up as
  loudly corrupted traffic instead of silent aliasing.
"""

from __future__ import annotations

from itertools import count
from struct import Struct
from typing import List, Optional

# TCP flag bit-mask values.
FLAG_SYN = 0x01
FLAG_ACK = 0x02
FLAG_FIN = 0x04
FLAG_DATA = 0x08

#: Combined size of the simulated IP + TCP headers in bytes.  MPTCP options
#: (DSS) would add ~20 bytes; we fold that into a single constant because the
#: evaluation is insensitive to a few header bytes.
DEFAULT_HEADER_BYTES = 54

#: Protocol numbers used in the ECMP hash.
PROTO_TCP = 6

_packet_ids = count(1)

_U64 = 0xFFFFFFFFFFFFFFFF

#: The ECMP 5-tuple packed as five little-endian u64 words — byte-for-byte
#: the sequence the seed FNV-1a implementation consumed (each value masked to
#: 64 bits, least-significant byte first), so hashes over ``flow_bytes`` are
#: exactly equal to hashes over the original tuple.
_pack_flow = Struct("<5Q").pack

#: Sentinel written into released packets when pool poisoning is on.  Any
#: component that reads a released packet sees nonsense addresses/sizes and
#: derails visibly (golden traces diverge, routing fails) instead of
#: silently aliasing live traffic.
POISON = -0x8BADF00D


class Packet:
    """A single simulated packet.

    Attributes:
        packet_id: globally unique identifier (useful for tracing); a pooled
            packet gets a fresh id on every acquisition.
        flow_id: identifier of the application flow this packet belongs to.
        src / dst: integer node addresses.
        src_port / dst_port: transport ports; MMPTCP's packet-scatter phase
            randomises ``src_port`` per packet to diversify the ECMP hash.
        protocol: IP protocol number (always TCP here, kept for hashing).
        seq: subflow-level sequence number (byte offset of the first payload
            byte carried by this packet).
        ack: cumulative subflow-level acknowledgement number.
        flags: bitwise OR of ``FLAG_*`` constants.
        payload_size / header_size: sizes in bytes; ``size`` is their
            precomputed sum (use :meth:`resize` to change them).
        subflow_id: index of the MPTCP subflow (0 for single-path TCP and for
            the MMPTCP packet-scatter flow).
        dsn: connection-level data sequence number (byte offset).
        dack: connection-level cumulative data acknowledgement.
        ecn_capable / ecn_ce / ecn_echo: ECN negotiation and marking bits.
        sent_time: simulated time at which the (sub)flow sender transmitted
            this packet; used for RTT sampling.
        is_retransmission: marks retransmitted data (Karn's algorithm).
        hops: number of switch/host hops traversed so far.
        flow_bytes: packed 5-tuple fed to the per-hop ECMP hash (``None``
            until the first hashed hop; see :meth:`flow_key`).
        flow_hash: cached unsalted FNV-1a digest of ``flow_bytes`` (``None``
            until first needed).
    """

    __slots__ = (
        "packet_id",
        "flow_id",
        "src",
        "dst",
        "src_port",
        "dst_port",
        "protocol",
        "seq",
        "ack",
        "flags",
        "payload_size",
        "header_size",
        "size",
        "subflow_id",
        "dsn",
        "dack",
        "ecn_capable",
        "ecn_ce",
        "ecn_echo",
        "sent_time",
        "is_retransmission",
        "hops",
        "flow_bytes",
        "flow_hash",
        "_in_pool",
    )

    def __init__(
        self,
        *,
        flow_id: int,
        src: int,
        dst: int,
        src_port: int,
        dst_port: int,
        seq: int = 0,
        ack: int = 0,
        flags: int = 0,
        payload_size: int = 0,
        header_size: int = DEFAULT_HEADER_BYTES,
        subflow_id: int = 0,
        dsn: int = 0,
        dack: int = 0,
        ecn_capable: bool = False,
        ecn_ce: bool = False,
        ecn_echo: bool = False,
        sent_time: float = 0.0,
        is_retransmission: bool = False,
        protocol: int = PROTO_TCP,
    ) -> None:
        """(Re)initialise every field.

        The packet pool calls ``__init__`` again on recycled instances, so
        this method *must* assign every slot — including a fresh
        ``packet_id`` — which is what makes recycled packets
        indistinguishable from freshly constructed ones (pooling can never
        leak state between logical packets).
        """
        self._in_pool = False
        self.packet_id = next(_packet_ids)
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.src_port = src_port
        self.dst_port = dst_port
        self.protocol = protocol
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.payload_size = payload_size
        self.header_size = header_size
        self.size = header_size + payload_size
        self.subflow_id = subflow_id
        self.dsn = dsn
        self.dack = dack
        self.ecn_capable = ecn_capable
        self.ecn_ce = ecn_ce
        self.ecn_echo = ecn_echo
        self.sent_time = sent_time
        self.is_retransmission = is_retransmission
        self.hops = 0
        # Lazily packed on the first hashed hop: packets that never cross a
        # multi-candidate ECMP group (pure downlink paths, early drops) skip
        # the packing cost entirely.
        self.flow_bytes = None
        self.flow_hash = None

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------

    def resize(
        self, *, payload_size: Optional[int] = None, header_size: Optional[int] = None
    ) -> None:
        """Change payload/header size, keeping the precomputed ``size`` in sync."""
        if payload_size is not None:
            self.payload_size = payload_size
        if header_size is not None:
            self.header_size = header_size
        self.size = self.header_size + self.payload_size

    def flow_key(self) -> bytes:
        """The packed 5-tuple fed to the ECMP hash (packed once, then cached).

        Hot paths (``ecmp_hash``, ``Switch.flow_hash_for``) inline this
        lazy-fill rather than calling it; keep the logic in sync.
        """
        key = self.flow_bytes
        if key is None:
            key = self.flow_bytes = _pack_flow(
                self.src & _U64,
                self.dst & _U64,
                self.src_port & _U64,
                self.dst_port & _U64,
                self.protocol & _U64,
            )
        return key

    @property
    def is_syn(self) -> bool:
        """True if the SYN flag is set."""
        return bool(self.flags & FLAG_SYN)

    @property
    def is_ack(self) -> bool:
        """True if the ACK flag is set."""
        return bool(self.flags & FLAG_ACK)

    @property
    def is_fin(self) -> bool:
        """True if the FIN flag is set."""
        return bool(self.flags & FLAG_FIN)

    @property
    def carries_data(self) -> bool:
        """True if the packet carries application payload."""
        return self.payload_size > 0

    def flow_tuple(self) -> tuple[int, int, int, int, int]:
        """The 5-tuple used by hash-based ECMP."""
        return (self.src, self.dst, self.src_port, self.dst_port, self.protocol)

    # ------------------------------------------------------------------
    # Pool support
    # ------------------------------------------------------------------

    def _poison(self) -> None:
        """Overwrite every field with garbage (pool debug mode).

        A released packet that is still referenced anywhere now carries an
        unroutable destination, a negative size and a corrupt flow hash, so
        any use-after-release derails the simulation instead of silently
        reading stale (or worse, recycled) state.
        """
        self.flow_id = POISON
        self.src = POISON
        self.dst = POISON
        self.src_port = POISON
        self.dst_port = POISON
        self.protocol = POISON
        self.seq = POISON
        self.ack = POISON
        self.flags = 0
        self.payload_size = POISON
        self.header_size = POISON
        self.size = POISON
        self.subflow_id = POISON
        self.dsn = POISON
        self.dack = POISON
        self.ecn_capable = False
        self.ecn_ce = False
        self.ecn_echo = False
        self.sent_time = float("nan")
        self.is_retransmission = False
        self.hops = POISON
        self.flow_bytes = b"\xde\xad" * 20
        self.flow_hash = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag_names = []
        if self.is_syn:
            flag_names.append("SYN")
        if self.is_ack:
            flag_names.append("ACK")
        if self.is_fin:
            flag_names.append("FIN")
        if self.carries_data:
            flag_names.append(f"DATA[{self.payload_size}]")
        return (
            f"Packet(id={self.packet_id}, flow={self.flow_id}, "
            f"{self.src}:{self.src_port}->{self.dst}:{self.dst_port}, "
            f"seq={self.seq}, ack={self.ack}, dsn={self.dsn}, "
            f"sf={self.subflow_id}, {'|'.join(flag_names) or 'none'})"
        )


class PacketPool:
    """A LIFO free list of :class:`Packet` objects.

    ``acquire`` pops a recycled packet (or allocates when the list is empty)
    and re-initialises every field; ``release`` returns a consumed packet.
    Double releases always raise.  With ``debug=True`` every released packet
    is additionally poisoned (see :meth:`Packet._poison`) and re-checked on
    acquisition, turning use-after-release and release-while-live bugs into
    immediate, loud failures — golden-trace runs with poisoning on prove the
    acquire/release discipline is airtight.

    Pooling is a pure allocation optimisation: acquisition re-runs
    ``Packet.__init__`` on the recycled instance, which rewrites every slot
    (including a fresh ``packet_id``), so simulations are byte-identical
    with or without reuse, for any free-list size.
    """

    def __init__(self, max_free: int = 4096, debug: bool = False) -> None:
        if max_free < 0:
            raise ValueError("max_free cannot be negative")
        self._free: List[Packet] = []
        self.max_free = max_free
        self.debug = debug
        self.allocated = 0
        self.reused = 0
        self.released = 0
        # Profiling (off by default: one falsy attribute check per
        # acquire/release).  ``outstanding``/``highwater`` track live packets
        # only while ``profile`` is on — diagnostics, never simulation state.
        self.profile = False
        self.outstanding = 0
        self.highwater = 0

    # ------------------------------------------------------------------

    def acquire(self, **fields) -> Packet:
        """Return a packet initialised with ``fields`` (recycled when possible)."""
        free = self._free
        if free:
            packet = free.pop()
            if self.debug and (
                packet.src != POISON
                or packet.dst != POISON
                or packet.src_port != POISON
                or packet.dst_port != POISON
                or packet.seq != POISON
                or packet.ack != POISON
                or packet.size != POISON
                or packet.payload_size != POISON
                or packet.dsn != POISON
                or packet.hops != POISON
            ):
                raise RuntimeError(
                    "packet pool corruption: a free-list packet was mutated "
                    "while released (use-after-release)"
                )
            # Re-running __init__ rewrites every slot (and clears _in_pool).
            packet.__init__(**fields)
            self.reused += 1
            if self.profile:
                outstanding = self.outstanding + 1
                self.outstanding = outstanding
                if outstanding > self.highwater:
                    self.highwater = outstanding
            return packet
        self.allocated += 1
        if self.profile:
            outstanding = self.outstanding + 1
            self.outstanding = outstanding
            if outstanding > self.highwater:
                self.highwater = outstanding
        return Packet(**fields)

    def release(self, packet: Packet) -> None:
        """Return ``packet`` to the free list.  The caller forfeits ownership.

        Packets of foreign classes (e.g. reference implementations in
        benchmarks) are ignored — only real :class:`Packet` objects are
        recycled.
        """
        if packet.__class__ is not Packet:
            return
        if packet._in_pool:
            raise RuntimeError(f"double release of packet {packet.packet_id}")
        packet._in_pool = True
        self.released += 1
        if self.profile:
            self.outstanding -= 1
        if self.debug:
            packet._poison()
        if len(self._free) < self.max_free:
            self._free.append(packet)

    # ------------------------------------------------------------------

    @property
    def free_count(self) -> int:
        """Packets currently parked on the free list."""
        return len(self._free)

    def clear(self) -> None:
        """Drop every parked packet (mainly for test isolation)."""
        self._free.clear()


#: The process-wide default pool used by the transports and the network
#: layer.  Parallel sweep workers each get their own copy (module state is
#: per-process), and pooling never affects simulation results, so sharing a
#: pool across experiments in one process is safe.
_default_pool = PacketPool()


def default_pool() -> PacketPool:
    """The process-wide :class:`PacketPool`."""
    return _default_pool


#: Acquire a packet from the default pool (transport-side entry point) /
#: release a consumed packet to it (network-side entry point).  Exported as
#: bound methods: one call layer fewer on the two hottest allocation paths.
acquire_packet = _default_pool.acquire
release_packet = _default_pool.release


def set_pool_debug(enabled: bool) -> bool:
    """Toggle poisoning on the default pool; returns the previous setting.

    The free list is emptied whenever the setting changes: entries released
    before enabling are not poisoned (and would trip the acquisition check),
    and poisoned entries from a debug session must not outlive it.
    """
    previous = _default_pool.debug
    if previous != enabled:
        _default_pool.debug = enabled
        _default_pool.clear()
    return previous


def set_pool_profile(enabled: bool) -> bool:
    """Toggle outstanding/highwater tracking on the default pool.

    Returns the previous setting.  Enabling resets the watermarks so a
    profiled run reports its own peak, not a predecessor's; pooling itself
    is unaffected (the free list is preserved) and simulation results never
    depend on the setting.
    """
    previous = _default_pool.profile
    _default_pool.profile = enabled
    if enabled and not previous:
        _default_pool.outstanding = 0
        _default_pool.highwater = 0
    return previous


def make_ack(
    original: Packet,
    *,
    ack: int,
    dack: int = 0,
    src_port: Optional[int] = None,
    dst_port: Optional[int] = None,
    ecn_echo: bool = False,
    sent_time: float = 0.0,
) -> Packet:
    """Build an acknowledgement packet for ``original`` (pool-acquired).

    The ACK is addressed back to the original sender; by default it swaps the
    port pair so that it follows a stable reverse path under ECMP.  Callers
    can override ``dst_port`` when the data packet used a randomised source
    port (MMPTCP packet scatter) but acknowledgements must reach the sender's
    canonical port.
    """
    return _default_pool.acquire(
        flow_id=original.flow_id,
        src=original.dst,
        dst=original.src,
        src_port=src_port if src_port is not None else original.dst_port,
        dst_port=dst_port if dst_port is not None else original.src_port,
        ack=ack,
        dack=dack,
        flags=FLAG_ACK,
        payload_size=0,
        subflow_id=original.subflow_id,
        ecn_capable=original.ecn_capable,
        ecn_echo=ecn_echo,
        sent_time=sent_time,
    )
