"""Hash-based Equal-Cost Multi-Path (ECMP) selection.

Data-centre switches pick one of several equal-cost next hops by hashing the
packet's 5-tuple, so all packets of a TCP flow follow the same path (no
reordering) while different flows spread across paths.  MMPTCP's packet
scatter phase deliberately randomises the source port per packet so that this
very mechanism sprays consecutive packets over *all* available paths.

The hash must be deterministic across runs (for reproducibility) yet differ
between switches (otherwise every switch would make correlated choices and
entire subtrees would see the same path decisions).  We therefore mix a
per-switch salt into an FNV-1a hash of the 5-tuple.

Hot-path note: FNV-1a folds the salt into the *initial basis*, so a fully
salted digest cannot be precomputed once per packet and cheaply re-mixed per
switch — doing so would change every path decision and invalidate the golden
traces.  What can be (and is) hoisted out of the per-hop loop:

* the 5-tuple's byte serialisation — packed once (lazily, at the packet's
  first hashed hop) into ``Packet.flow_bytes`` and walked directly from then
  on (no tuple building, masking or shifting per hop; it is ``None`` until
  that first hop, so always go through ``Packet.flow_key()`` or the inlined
  lazy fill below rather than reading the slot directly);
* the unsalted digest — cached in ``Packet.flow_hash`` the first time a
  salt-0 consumer asks for it;
* the salted per-flow digest — memoised per switch, keyed by ``flow_bytes``
  (see :meth:`repro.net.switch.Switch.flow_hash_for`), which collapses the
  per-hop cost to one dict lookup for every packet of an established flow.

All three caches produce digests *identical* to :func:`fnv1a_64` over the
tuple, which is what keeps the golden traces byte-for-byte stable.
"""

from __future__ import annotations

from repro.net.packet import Packet

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def fnv1a_64(values: tuple[int, ...], salt: int = 0) -> int:
    """64-bit FNV-1a hash over a tuple of non-negative integers.

    Reference implementation: :func:`fnv1a_bytes` over the packed form of
    ``values`` must always agree with it (a property test pins this).
    """
    digest = (_FNV_OFFSET ^ (salt & _MASK)) & _MASK
    for value in values:
        # Hash the value one byte at a time, eight bytes (LSB first) per
        # value, so that large ints contribute fully — the byte order
        # Struct("<5Q") packing must reproduce exactly.
        remaining = value & _MASK
        for _ in range(8):
            digest ^= remaining & 0xFF
            digest = (digest * _FNV_PRIME) & _MASK
            remaining >>= 8
    return digest


def hash_basis(salt: int = 0) -> int:
    """The FNV-1a initial digest for ``salt`` (precomputable per switch)."""
    return (_FNV_OFFSET ^ (salt & _MASK)) & _MASK


def fnv1a_bytes(data: bytes, basis: int = _FNV_OFFSET) -> int:
    """64-bit FNV-1a over ``data`` starting from ``basis``.

    Iterating a cached ``bytes`` object yields each byte at C speed, which is
    what makes per-hop hashing cheap; the digest is identical to
    :func:`fnv1a_64` over the unpacked values when ``data`` is the packet's
    ``flow_bytes`` and ``basis`` is ``hash_basis(salt)``.
    """
    for byte in data:
        basis = ((basis ^ byte) * _FNV_PRIME) & _MASK
    return basis


def ecmp_hash(packet: Packet, salt: int = 0) -> int:
    """Hash a packet's 5-tuple, mixed with a per-switch salt."""
    key = packet.flow_bytes
    if key is None:
        key = packet.flow_key()
    if salt:
        return fnv1a_bytes(key, (_FNV_OFFSET ^ (salt & _MASK)) & _MASK)
    digest = packet.flow_hash
    if digest is None:
        digest = packet.flow_hash = fnv1a_bytes(key, _FNV_OFFSET)
    return digest


def select_path(packet: Packet, num_paths: int, salt: int = 0) -> int:
    """Pick a next-hop index in ``[0, num_paths)`` for ``packet``."""
    if num_paths <= 0:
        raise ValueError("num_paths must be positive")
    if num_paths == 1:
        return 0
    return ecmp_hash(packet, salt) % num_paths


def select_among(packet: Packet, candidates: "list[int]", salt: int = 0) -> int:
    """Pick one element of ``candidates`` by the same flow hash.

    This is the failure-aware re-hash: when some next hops of an ECMP group
    are down, the switch re-hashes the packet over the surviving subset, so
    flows mapped onto a dead path deterministically move to a live one (and
    flows already on live paths keep their path whenever the subset ordering
    preserves their index — the hash itself never changes).
    """
    if not candidates:
        raise ValueError("candidates must be non-empty")
    if len(candidates) == 1:
        return candidates[0]
    return candidates[ecmp_hash(packet, salt) % len(candidates)]
