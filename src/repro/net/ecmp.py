"""Hash-based Equal-Cost Multi-Path (ECMP) selection.

Data-centre switches pick one of several equal-cost next hops by hashing the
packet's 5-tuple, so all packets of a TCP flow follow the same path (no
reordering) while different flows spread across paths.  MMPTCP's packet
scatter phase deliberately randomises the source port per packet so that this
very mechanism sprays consecutive packets over *all* available paths.

The hash must be deterministic across runs (for reproducibility) yet differ
between switches (otherwise every switch would make correlated choices and
entire subtrees would see the same path decisions).  We therefore mix a
per-switch salt into an FNV-1a hash of the 5-tuple.
"""

from __future__ import annotations

from repro.net.packet import Packet

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def fnv1a_64(values: tuple[int, ...], salt: int = 0) -> int:
    """64-bit FNV-1a hash over a tuple of non-negative integers."""
    digest = (_FNV_OFFSET ^ (salt & _MASK)) & _MASK
    for value in values:
        # Hash the value four bytes at a time so that large ints contribute fully.
        remaining = value & _MASK
        for _ in range(8):
            digest ^= remaining & 0xFF
            digest = (digest * _FNV_PRIME) & _MASK
            remaining >>= 8
    return digest


def ecmp_hash(packet: Packet, salt: int = 0) -> int:
    """Hash a packet's 5-tuple, mixed with a per-switch salt."""
    return fnv1a_64(packet.flow_tuple(), salt=salt)


def select_path(packet: Packet, num_paths: int, salt: int = 0) -> int:
    """Pick a next-hop index in ``[0, num_paths)`` for ``packet``."""
    if num_paths <= 0:
        raise ValueError("num_paths must be positive")
    if num_paths == 1:
        return 0
    return ecmp_hash(packet, salt) % num_paths


def select_among(packet: Packet, candidates: "list[int]", salt: int = 0) -> int:
    """Pick one element of ``candidates`` by the same flow hash.

    This is the failure-aware re-hash: when some next hops of an ECMP group
    are down, the switch re-hashes the packet over the surviving subset, so
    flows mapped onto a dead path deterministically move to a live one (and
    flows already on live paths keep their path whenever the subset ordering
    preserves their index — the hash itself never changes).
    """
    if not candidates:
        raise ValueError("candidates must be non-empty")
    if len(candidates) == 1:
        return candidates[0]
    return candidates[ecmp_hash(packet, salt) % len(candidates)]
