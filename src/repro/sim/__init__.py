"""Discrete-event simulation core: engine, units, randomness and tracing."""

from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.randomness import RandomStreams, derive_seed
from repro.sim.timerwheel import Timer, TimerWheel
from repro.sim.tracing import (
    NULL_SINK,
    CallbackTraceSink,
    RecordingTraceSink,
    TraceEvent,
    TraceSink,
)

__all__ = [
    "Event",
    "SimulationError",
    "Simulator",
    "Timer",
    "TimerWheel",
    "RandomStreams",
    "derive_seed",
    "TraceSink",
    "TraceEvent",
    "RecordingTraceSink",
    "CallbackTraceSink",
    "NULL_SINK",
]
