"""Deterministic random-number management.

Every stochastic component of the simulator (traffic arrivals, ECMP hashing
seeds, source-port randomisation, permutation matrices) draws from a named
stream derived from a single experiment seed.  Two runs with the same seed
produce byte-identical event sequences; changing the seed of one stream does
not perturb the others, which keeps comparisons between protocols paired:
the *same* workload is offered to TCP, MPTCP and MMPTCP.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(root_seed: int, stream_name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name.

    Uses SHA-256 so that stream names that differ only slightly (e.g.
    ``"flow-1"`` vs ``"flow-2"``) still produce unrelated child seeds.
    """
    digest = hashlib.sha256(f"{root_seed}:{stream_name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A registry of named, independently-seeded ``random.Random`` streams."""

    def __init__(self, root_seed: int = 1) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream registered under ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.root_seed, name))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child registry whose root seed is derived from ``name``.

        Useful to give each flow or each host its own family of streams.
        """
        return RandomStreams(derive_seed(self.root_seed, name))

    # Convenience wrappers -------------------------------------------------

    def uniform(self, name: str, low: float, high: float) -> float:
        """Uniform float in ``[low, high)`` from stream ``name``."""
        return self.stream(name).uniform(low, high)

    def randint(self, name: str, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` from stream ``name``."""
        return self.stream(name).randint(low, high)

    def expovariate(self, name: str, rate: float) -> float:
        """Exponential variate with the given rate from stream ``name``."""
        return self.stream(name).expovariate(rate)

    def choice(self, name: str, options: Sequence[T]) -> T:
        """Uniformly pick one element of ``options`` from stream ``name``."""
        return self.stream(name).choice(options)

    def shuffled(self, name: str, items: Iterable[T]) -> list[T]:
        """Return a new list with ``items`` shuffled by stream ``name``."""
        result = list(items)
        self.stream(name).shuffle(result)
        return result
