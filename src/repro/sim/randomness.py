"""Deterministic random-number management.

Every stochastic component of the simulator (traffic arrivals, ECMP hashing
seeds, source-port randomisation, permutation matrices) draws from a named
stream derived from a single experiment seed.  Two runs with the same seed
produce byte-identical event sequences; changing the seed of one stream does
not perturb the others, which keeps comparisons between protocols paired:
the *same* workload is offered to TCP, MPTCP and MMPTCP.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(root_seed: int, stream_name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name.

    Uses SHA-256 so that stream names that differ only slightly (e.g.
    ``"flow-1"`` vs ``"flow-2"``) still produce unrelated child seeds.
    """
    digest = hashlib.sha256(f"{root_seed}:{stream_name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def spawn_seed(root_seed: int, *spawn_key: int | str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a spawn-key path.

    This is the hash-derived analogue of ``numpy.random.SeedSequence``'s
    spawn keys: each element of ``spawn_key`` names one level of a
    derivation tree, so ``spawn_seed(s, "sweep", 3)`` is the seed of the
    fourth point of the sweep rooted at ``s``.  The derivation depends only
    on ``(root_seed, spawn_key)`` — never on execution order, process
    identity or any global RNG state — which is what makes a sweep's
    results bit-identical whether its points run serially or on a process
    pool.

    Key elements are length-prefixed before hashing so ambiguous
    concatenations (``("ab", "c")`` vs ``("a", "bc")``) cannot collide,
    and the integer 3 is distinguished from the string ``"3"``.
    """
    if not spawn_key:
        raise ValueError("spawn_seed needs at least one spawn-key element")
    hasher = hashlib.sha256(f"root:{root_seed}".encode("utf-8"))
    for element in spawn_key:
        tag = "i" if isinstance(element, int) else "s"
        text = str(element)
        hasher.update(f"|{tag}{len(text)}:{text}".encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big")


def spawn_seeds(root_seed: int, count: int, *prefix: int | str) -> list[int]:
    """The first ``count`` child seeds of the stream named by ``prefix``.

    Element ``i`` equals ``spawn_seed(s, *prefix, "point", i)``, so
    extending ``count`` later leaves the existing seeds unchanged.  This is
    the single derivation scheme for per-point seed lists;
    :func:`repro.experiments.parallel.seeded_replications` is exactly
    ``spawn_seeds(root, n, "replication")`` applied to configs.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return [spawn_seed(root_seed, *prefix, "point", index) for index in range(count)]


class RandomStreams:
    """A registry of named, independently-seeded ``random.Random`` streams."""

    def __init__(self, root_seed: int = 1) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream registered under ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.root_seed, name))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child registry whose root seed is derived from ``name``.

        Useful to give each flow or each host its own family of streams.
        """
        return RandomStreams(derive_seed(self.root_seed, name))

    def spawn_indexed(self, *spawn_key: int | str) -> "RandomStreams":
        """Create a child registry rooted at ``spawn_seed(root, *spawn_key)``.

        The indexed analogue of :meth:`spawn`, for callers that want a
        whole substream *family* (not just one seed) per point of some
        indexed structure — e.g. ``streams.spawn_indexed("host", i)``.
        The derivation depends only on ``(root_seed, spawn_key)``, never on
        creation order, so the families are stable under parallel
        execution.  The built-in sweeps don't need this (their points are
        whole experiments, seeded via the config); it exists for custom
        studies that partition one experiment's randomness.
        """
        return RandomStreams(spawn_seed(self.root_seed, *spawn_key))

    # Convenience wrappers -------------------------------------------------

    def uniform(self, name: str, low: float, high: float) -> float:
        """Uniform float in ``[low, high)`` from stream ``name``."""
        return self.stream(name).uniform(low, high)

    def randint(self, name: str, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` from stream ``name``."""
        return self.stream(name).randint(low, high)

    def expovariate(self, name: str, rate: float) -> float:
        """Exponential variate with the given rate from stream ``name``."""
        return self.stream(name).expovariate(rate)

    def choice(self, name: str, options: Sequence[T]) -> T:
        """Uniformly pick one element of ``options`` from stream ``name``."""
        return self.stream(name).choice(options)

    def shuffled(self, name: str, items: Iterable[T]) -> list[T]:
        """Return a new list with ``items`` shuffled by stream ``name``."""
        result = list(items)
        self.stream(name).shuffle(result)
        return result
