"""Unit helpers used throughout the simulator.

The simulator uses a small set of base units consistently:

* **time** is expressed in seconds as a ``float``,
* **data sizes** are expressed in bytes as an ``int``,
* **rates** are expressed in bits per second as a ``float``.

These helpers exist so that configuration code can say
``rate=gigabits_per_second(1)`` or ``delay=microseconds(20)`` instead of
sprinkling magic numbers such as ``1e9`` and ``2e-05`` around, and so that
conversions (e.g. transmission delay of a packet on a link) live in one
audited place.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------


def seconds(value: float) -> float:
    """Return ``value`` interpreted as seconds (identity, for symmetry)."""
    return float(value)


def milliseconds(value: float) -> float:
    """Convert milliseconds to seconds."""
    return float(value) * 1e-3


def microseconds(value: float) -> float:
    """Convert microseconds to seconds."""
    return float(value) * 1e-6


def nanoseconds(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return float(value) * 1e-9


def to_milliseconds(time_s: float) -> float:
    """Convert a time in seconds to milliseconds."""
    return time_s * 1e3


def to_microseconds(time_s: float) -> float:
    """Convert a time in seconds to microseconds."""
    return time_s * 1e6


# ---------------------------------------------------------------------------
# Data sizes
# ---------------------------------------------------------------------------


def bytes_(value: int) -> int:
    """Return ``value`` interpreted as bytes (identity, for symmetry)."""
    return int(value)


def kilobytes(value: float) -> int:
    """Convert kilobytes (10^3 bytes) to bytes."""
    return int(value * 1_000)


def kibibytes(value: float) -> int:
    """Convert kibibytes (2^10 bytes) to bytes."""
    return int(value * 1024)


def megabytes(value: float) -> int:
    """Convert megabytes (10^6 bytes) to bytes."""
    return int(value * 1_000_000)


def mebibytes(value: float) -> int:
    """Convert mebibytes (2^20 bytes) to bytes."""
    return int(value * 1024 * 1024)


def gigabytes(value: float) -> int:
    """Convert gigabytes (10^9 bytes) to bytes."""
    return int(value * 1_000_000_000)


# ---------------------------------------------------------------------------
# Rates
# ---------------------------------------------------------------------------


def bits_per_second(value: float) -> float:
    """Return ``value`` interpreted as bits per second."""
    return float(value)


def kilobits_per_second(value: float) -> float:
    """Convert kilobits per second to bits per second."""
    return float(value) * 1e3


def megabits_per_second(value: float) -> float:
    """Convert megabits per second to bits per second."""
    return float(value) * 1e6


def gigabits_per_second(value: float) -> float:
    """Convert gigabits per second to bits per second."""
    return float(value) * 1e9


def transmission_delay(size_bytes: int, rate_bps: float) -> float:
    """Time in seconds to serialise ``size_bytes`` onto a link of ``rate_bps``.

    Raises:
        ValueError: if the rate is not strictly positive.
    """
    if rate_bps <= 0:
        raise ValueError(f"link rate must be positive, got {rate_bps!r}")
    return (size_bytes * 8.0) / rate_bps


def bytes_per_interval(rate_bps: float, interval_s: float) -> float:
    """How many bytes a link of ``rate_bps`` can carry in ``interval_s`` seconds."""
    return rate_bps * interval_s / 8.0


def throughput_bps(size_bytes: int, duration_s: float) -> float:
    """Achieved throughput in bits per second for ``size_bytes`` over ``duration_s``.

    Returns ``0.0`` for non-positive durations rather than raising, because
    zero-duration flows occur naturally for empty transfers.
    """
    if duration_s <= 0:
        return 0.0
    return size_bytes * 8.0 / duration_s
