"""Reusable timer handles backed by a hierarchical timer wheel.

Retransmission timers are the pathological workload for a plain event heap:
every in-flight segment arms a timer that is almost always cancelled and
re-armed a few microseconds later, so the heap fills with dead entries that
``heappop`` must still sift through, each sift paying a Python-level
``Event.__lt__`` call.  A :class:`Timer` is a *reusable* handle — arming,
re-arming and cancelling never allocates a new heap entry:

* arming appends a ``(time, sequence, timer)`` tuple to a wheel bucket
  (an O(1) ``list.append``; the bucket-key heap holds small ints whose
  comparisons run in C);
* cancelling and re-arming just bump the handle's ``sequence`` — the old
  bucket entry becomes *stale* and is skipped when its slot is reached;
* stale entries are swept (buckets rebuilt) once they outnumber live
  timers, so a churn-heavy run cannot accumulate garbage.

The wheel is hierarchical: a fine level whose slots are ``tick`` seconds
wide covers the near future (RTO and delayed-ACK horizons), a coarse level
covers minutes, and a plain overflow heap catches anything further out.
Coarse buckets are *cascaded* — re-bucketed into the fine level — when the
simulation clock approaches their range, so far-future timers are touched
O(levels) times, not once per slot.

Determinism contract: a timer armed at time ``t`` with sequence ``s`` fires
in exactly the same global ``(t, s)`` order as a heap event would, and each
``arm`` consumes one sequence number from the simulator's shared counter —
the same consumption pattern as ``schedule`` + ``cancel`` — so converting a
call site from raw events to timers does not perturb event ordering
anywhere else in the run (golden traces stay byte-identical).

The implementation keeps buckets in dictionaries keyed by the *absolute*
slot index (``int(time / tick)``), with a lazy min-heap of occupied keys per
level.  Slot indices are monotonic in time (IEEE division and truncation
are monotonic), which is all the ordering argument needs; the sorted "due"
buffer extracted from the earliest occupied slot is what :meth:`peek`
serves, and the class invariant is that every live entry outside the due
buffer fires no earlier than every entry inside it.
"""

from __future__ import annotations

from bisect import insort
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator

#: A scheduled incarnation of a timer: ``(fire_time, sequence, handle)``.
#: The entry is *live* while ``handle.sequence == sequence``; any cancel or
#: re-arm bumps the handle's sequence and orphans the tuple in place.
TimerEntry = Tuple[float, int, "Timer"]

_INF = float("inf")


class Timer:
    """A reusable arm/re-arm/cancel handle for a single pending callback.

    A timer is created once (typically per connection or per interface) and
    then cycled through ``arm``/``cancel`` for its whole life.  At most one
    incarnation is pending at a time: arming an armed timer atomically
    replaces the previous deadline.

    Attributes:
        callback: invoked as ``callback(*args)`` when the timer fires.
        args: positional arguments captured by the most recent ``arm``.
        time: absolute fire time of the current incarnation (valid only
            while ``armed``).
        sequence: tie-break sequence of the current incarnation, drawn from
            the simulator's shared counter; ``-1`` while disarmed.
    """

    __slots__ = ("simulator", "callback", "args", "time", "sequence")

    def __init__(self, simulator: "Simulator", callback: Callable[..., None]) -> None:
        self.simulator = simulator
        self.callback = callback
        self.args: tuple = ()
        self.time = 0.0
        self.sequence = -1

    # ------------------------------------------------------------------

    @property
    def armed(self) -> bool:
        """True while an incarnation of this timer is pending."""
        return self.sequence >= 0

    @property
    def when(self) -> Optional[float]:
        """Absolute fire time of the pending incarnation, or ``None``."""
        return self.time if self.sequence >= 0 else None

    def arm(self, delay: float, *args: Any) -> "Timer":
        """(Re-)arm the timer ``delay`` seconds from now.

        Replaces any pending incarnation; ``args`` become the callback
        arguments for this firing.  Returns ``self`` for chaining.  This is
        the hottest call in an RTO-heavy run (once per ACK), so the whole
        arm path is two Python calls: this method and the wheel's.
        """
        simulator = self.simulator
        if delay < 0:
            from repro.sim.engine import SimulationError

            raise SimulationError(f"cannot arm timer with negative delay {delay!r}")
        simulator._wheel.arm(self, simulator._now + delay, args, simulator)
        return self

    def arm_at(self, when: float, *args: Any) -> "Timer":
        """(Re-)arm the timer at absolute simulated time ``when``."""
        simulator = self.simulator
        if when < simulator._now:
            from repro.sim.engine import SimulationError

            raise SimulationError(
                f"cannot arm timer in the past: now={simulator._now!r}, requested={when!r}"
            )
        simulator._wheel.arm(self, when, args, simulator)
        return self

    def cancel(self) -> None:
        """Disarm the timer (idempotent; a disarmed timer can be re-armed)."""
        if self.sequence >= 0:
            self.sequence = -1
            wheel = self.simulator._wheel
            wheel.live_count -= 1
            wheel._note_stale()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"t={self.time!r} seq={self.sequence}" if self.armed else "disarmed"
        return f"Timer({self.callback!r}, {state})"


class TimerWheel:
    """Hierarchical timer wheel holding every armed :class:`Timer`.

    Levels (all keyed by absolute slot index, no rings):

    * level 0 — slots ``tick`` seconds wide, used for deadlines within
      ``tick * slots_per_level`` of now (the RTO/delayed-ACK horizon);
    * level 1 — slots ``tick * slots_per_level`` wide, for deadlines within
      the squared horizon (backed-off RTOs up to ``max_rto``);
    * overflow — a plain heap of exact entries for anything further out.

    The engine only calls :meth:`peek` and :meth:`pop`; arming goes through
    :class:`Timer`, which delegates to :meth:`insert`.
    """

    __slots__ = (
        "tick",
        "slots_per_level",
        "_span0",
        "_span1",
        "_tick1",
        "_buckets0",
        "_keys0",
        "_buckets1",
        "_keys1",
        "_overflow",
        "_due",
        "_due_idx",
        "_due_end",
        "live_count",
        "_stale",
        "sweeps",
        "cascades",
    )

    def __init__(self, tick: float = 1e-3, slots_per_level: int = 256) -> None:
        if tick <= 0:
            raise ValueError("tick must be positive")
        if slots_per_level < 2:
            raise ValueError("slots_per_level must be at least 2")
        self.tick = tick
        self.slots_per_level = slots_per_level
        self._tick1 = tick * slots_per_level
        self._span0 = tick * slots_per_level
        self._span1 = self._tick1 * slots_per_level
        #: absolute slot index -> unordered list of entries.
        self._buckets0: Dict[int, List[TimerEntry]] = {}
        self._keys0: List[int] = []  # min-heap of occupied level-0 slots
        self._buckets1: Dict[int, List[TimerEntry]] = {}
        self._keys1: List[int] = []
        self._overflow: List[TimerEntry] = []  # exact-entry heap
        #: entries extracted from the earliest slot, sorted by (time, seq);
        #: ``_due[_due_idx:]`` is the unserved tail.  Every live entry still
        #: in a bucket fires at or after ``_due_end``.
        self._due: List[TimerEntry] = []
        self._due_idx = 0
        self._due_end = -_INF
        self.live_count = 0
        self._stale = 0
        self.sweeps = 0  # diagnostic: how many hygiene sweeps have run
        self.cascades = 0  # diagnostic: coarse/overflow re-bucketing passes

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def arm(self, timer: Timer, when: float, args: tuple, simulator: "Simulator") -> None:
        """Arm/re-arm ``timer`` at absolute time ``when`` (hot path, O(1)).

        Allocates the incarnation's sequence number from the simulator's
        shared counter, updates the live/stale accounting and files the
        entry — all in one call, because this runs once per ACK in an
        RTO-heavy simulation.
        """
        sequence = simulator._sequence
        simulator._sequence = sequence + 1
        rearmed = timer.sequence >= 0
        # Bump the handle's sequence *before* any stale accounting: a sweep
        # triggered below must already see the old entry as orphaned, or it
        # would survive the rebuild uncounted and skew the stale counter.
        timer.time = when
        timer.sequence = sequence
        timer.args = args
        if rearmed:
            stale = self._stale + 1
            self._stale = stale
            if stale > 64 and stale > self.live_count:
                self._sweep()
        else:
            self.live_count += 1
        self.insert(when, sequence, timer, simulator._now)

    def insert(self, when: float, sequence: int, timer: Timer, now: float) -> None:
        """File one armed incarnation into the right level."""
        entry = (when, sequence, timer)
        if when < self._due_end:
            # The due buffer's slot is still being served and this deadline
            # falls inside it: merge directly so peek() stays the global min.
            insort(self._due, entry, self._due_idx)
            return
        delta = when - now
        if delta < self._span0:
            self._insert_level(entry, self._buckets0, self._keys0, self.tick)
        elif delta < self._span1:
            self._insert_level(entry, self._buckets1, self._keys1, self._tick1)
        else:
            heappush(self._overflow, entry)

    @staticmethod
    def _insert_level(
        entry: TimerEntry,
        buckets: Dict[int, List[TimerEntry]],
        keys: List[int],
        tick: float,
    ) -> None:
        key = int(entry[0] / tick)
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [entry]
            heappush(keys, key)
        else:
            bucket.append(entry)

    # ------------------------------------------------------------------
    # Serving (engine-facing)
    # ------------------------------------------------------------------

    def peek(self) -> Optional[TimerEntry]:
        """The earliest live entry by ``(time, sequence)``, or ``None``.

        Amortised O(1): stale due-buffer heads are skipped destructively and
        each bucket entry is extracted into the due buffer exactly once.
        The fast path — a live entry already at the due head — is a couple
        of loads, because the engine calls this once per processed event.
        """
        due = self._due
        idx = self._due_idx
        if idx < len(due):
            entry = due[idx]
            if entry[2].sequence == entry[1]:
                return entry
        return self._peek_slow()

    def _peek_slow(self) -> Optional[TimerEntry]:
        if self.live_count == 0:
            return None
        while True:
            due = self._due
            idx = self._due_idx
            length = len(due)
            while idx < length:
                entry = due[idx]
                if entry[2].sequence == entry[1]:
                    self._due_idx = idx
                    return entry
                idx += 1
                self._stale -= 1
            self._due_idx = idx
            self._refill_due()

    def pop(self) -> TimerEntry:
        """Remove and return the entry :meth:`peek` would serve, disarming it."""
        entry = self.peek()
        if entry is None:
            raise IndexError("pop from an empty timer wheel")
        self._due_idx += 1
        self.live_count -= 1
        entry[2].sequence = -1
        return entry

    def _refill_due(self) -> None:
        """Extract the earliest occupied slot into the sorted due buffer.

        Cascades coarse buckets / overflow entries into level 0 first, so
        that when a slot is extracted no other structure holds an entry
        firing before that slot's end.  Only called with ``live_count > 0``,
        which guarantees termination with a non-empty due buffer.
        """
        buckets0, keys0 = self._buckets0, self._keys0
        buckets1, keys1 = self._buckets1, self._keys1
        overflow = self._overflow
        tick = self.tick
        while True:
            while keys0 and keys0[0] not in buckets0:
                heappop(keys0)  # key emptied by a sweep
            end0 = (keys0[0] + 1) * tick if keys0 else _INF
            while keys1 and keys1[0] not in buckets1:
                heappop(keys1)
            if keys1 and keys1[0] * self._tick1 < end0:
                # The coarse bucket may hold entries before end0: cascade it.
                self.cascades += 1
                for entry in buckets1.pop(heappop(keys1)):
                    if entry[2].sequence == entry[1]:
                        self._insert_level(entry, buckets0, keys0, tick)
                    else:
                        self._stale -= 1
                continue
            if overflow and overflow[0][0] < end0:
                # Promote a coarse-slot-sized window of overflow entries.
                self.cascades += 1
                bound = min(end0, overflow[0][0] + self._tick1)
                while overflow and overflow[0][0] < bound:
                    entry = heappop(overflow)
                    if entry[2].sequence == entry[1]:
                        self._insert_level(entry, buckets0, keys0, tick)
                    else:
                        self._stale -= 1
                continue
            # Level 0 now provably holds the earliest remaining entries.
            key = heappop(keys0)
            extracted = buckets0.pop(key)
            live = [entry for entry in extracted if entry[2].sequence == entry[1]]
            self._stale -= len(extracted) - len(live)
            if not live:
                continue
            live.sort()
            self._due = live
            self._due_idx = 0
            self._due_end = (key + 1) * tick
            return

    # ------------------------------------------------------------------
    # Hygiene
    # ------------------------------------------------------------------

    def _note_stale(self) -> None:
        stale = self._stale + 1
        self._stale = stale
        if stale > 64 and stale > self.live_count:
            self._sweep()

    def _sweep(self) -> None:
        """Rebuild every bucket without its stale entries.

        O(total entries); triggered only when stale entries outnumber live
        timers, so the amortised cost per cancellation is O(1).
        """

        def _live(entries: List[TimerEntry]) -> List[TimerEntry]:
            return [entry for entry in entries if entry[2].sequence == entry[1]]

        for buckets, keys in (
            (self._buckets0, self._keys0),
            (self._buckets1, self._keys1),
        ):
            dead_keys = []
            for key, entries in buckets.items():
                kept = _live(entries)
                if kept:
                    # repro: allow[no-mutation-during-iteration] -- value swap, never resizes
                    buckets[key] = kept
                else:
                    dead_keys.append(key)
            for key in dead_keys:
                del buckets[key]
            # Stale keys linger in the heap and are lazily discarded by
            # _refill_due; rebuilding keeps it tight instead.
            keys[:] = list(buckets)
            heapify(keys)
        kept_overflow = _live(self._overflow)
        heapify(kept_overflow)
        self._overflow = kept_overflow
        self._due = _live(self._due[self._due_idx :])  # already sorted
        self._due_idx = 0
        self._stale = 0
        self.sweeps += 1

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.live_count

    @property
    def stale_entries(self) -> int:
        """Orphaned (cancelled / re-armed) entries awaiting a sweep."""
        return self._stale

    def physical_size(self) -> int:
        """Total entries held, live and stale (bounded-growth assertions)."""
        total = len(self._due) - self._due_idx + len(self._overflow)
        for buckets in (self._buckets0, self._buckets1):
            for entries in buckets.values():
                total += len(entries)
        return total

    def clear(self) -> None:
        """Disarm every pending timer and drop all entries (engine reset)."""
        for buckets in (self._buckets0, self._buckets1):
            for entries in buckets.values():
                for entry in entries:
                    if entry[2].sequence == entry[1]:
                        entry[2].sequence = -1
            buckets.clear()
        for container in (self._overflow, self._due[self._due_idx :]):
            for entry in container:
                if entry[2].sequence == entry[1]:
                    entry[2].sequence = -1
        self._keys0.clear()
        self._keys1.clear()
        self._overflow.clear()
        self._due = []
        self._due_idx = 0
        self._due_end = -_INF
        self.live_count = 0
        self._stale = 0
