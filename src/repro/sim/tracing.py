"""Lightweight tracing / instrumentation hooks.

Components publish named trace events (packet enqueued, packet dropped,
RTO fired, phase switched, ...) to a :class:`TraceSink`.  The default sink
discards everything at near-zero cost; tests and the metrics collector
install recording sinks to observe internal behaviour without the
components needing to know who is listening.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, DefaultDict, Dict, Iterable, List, Optional


@dataclass
class TraceEvent:
    """A single trace record."""

    time: float
    name: str
    data: Dict[str, Any] = field(default_factory=dict)


class TraceSink:
    """Base sink: ignores every event.  Subclass or use callbacks to observe."""

    enabled: bool = False

    def emit(self, time: float, name: str, **data: Any) -> None:
        """Record a trace event; the base implementation is a no-op."""


class RecordingTraceSink(TraceSink):
    """A sink that stores every event in memory, grouped by name.

    ``max_events`` bounds memory for long recordings (flow-level runs can
    emit millions of events): once the log exceeds the bound, the *oldest*
    events are evicted — deterministically, in amortised O(1) batches — and
    :attr:`overflowed` latches so consumers know the record is a suffix,
    not the whole run.  The default (``None``) keeps everything, which is
    what the golden-trace tests rely on.
    """

    def __init__(self, max_events: Optional[int] = None) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be a positive count (or None)")
        self.enabled = True
        self.max_events = max_events
        self.overflowed = False
        self.events_dropped = 0
        self.events: List[TraceEvent] = []
        self.by_name: DefaultDict[str, List[TraceEvent]] = defaultdict(list)

    def emit(self, time: float, name: str, **data: Any) -> None:
        event = TraceEvent(time=time, name=name, data=data)
        events = self.events
        events.append(event)
        self.by_name[name].append(event)
        # Amortised batch eviction: let the log grow to twice the bound,
        # then cut the oldest half in one slice and rebuild the per-name
        # index from the survivors.  Which events survive depends only on
        # the emitted sequence, never on timing.
        max_events = self.max_events
        if max_events is not None and len(events) > 2 * max_events:
            excess = len(events) - max_events
            del events[:excess]
            self.events_dropped += excess
            self.overflowed = True
            self.by_name.clear()
            for survivor in events:
                self.by_name[survivor.name].append(survivor)

    def count(self, name: str) -> int:
        """Number of events recorded under ``name`` (post-eviction)."""
        return len(self.by_name[name])

    def clear(self) -> None:
        """Forget all recorded events (the overflow latch too)."""
        self.events.clear()
        self.by_name.clear()
        self.overflowed = False
        self.events_dropped = 0


class CallbackTraceSink(TraceSink):
    """A sink that forwards events matching registered names to callbacks."""

    def __init__(self) -> None:
        self.enabled = True
        self._callbacks: DefaultDict[str, List[Callable[[TraceEvent], None]]] = defaultdict(list)

    def on(self, name: str, callback: Callable[[TraceEvent], None]) -> None:
        """Register ``callback`` to be invoked for events named ``name``."""
        self._callbacks[name].append(callback)

    def emit(self, time: float, name: str, **data: Any) -> None:
        callbacks = self._callbacks.get(name)
        if not callbacks:
            return
        event = TraceEvent(time=time, name=name, data=data)
        for callback in callbacks:
            callback(event)


NULL_SINK = TraceSink()


# ---------------------------------------------------------------------------
# Canonical serialisation (golden-trace regression tests)
# ---------------------------------------------------------------------------


def canonical_event_line(event: TraceEvent) -> str:
    """One deterministic text line for ``event``.

    Floats are rendered with ``repr`` (shortest round-trip form — stable
    across platforms and Python versions since 3.1) and data keys are
    sorted, so the same event always produces the same bytes.
    """
    parts = [repr(event.time), event.name]
    parts.extend(f"{key}={event.data[key]!r}" for key in sorted(event.data))
    return " ".join(parts)


def canonical_trace(events: Iterable[TraceEvent]) -> str:
    """The whole event sequence as one canonical text blob.

    Golden-trace tests record this for a reference run and assert
    byte-for-byte equality after refactors: any change to event timing,
    ordering, naming or payload shows up as a diff rather than as a silent
    behaviour drift.
    """
    return "".join(canonical_event_line(event) + "\n" for event in events)


def trace_digest(events: Iterable[TraceEvent]) -> str:
    """SHA-256 hex digest of :func:`canonical_trace` (compact golden value)."""
    return hashlib.sha256(canonical_trace(events).encode("utf-8")).hexdigest()
