"""Discrete-event simulation engine.

The engine merges two event sources, popped in global chronological order
(ties broken by a shared insertion-sequence counter so behaviour is
deterministic):

* a classic event heap for one-shot callbacks —
  ``simulator.schedule(delay, callback, *args)`` /
  ``simulator.schedule_at(time, callback, *args)``;
* a hierarchical timer wheel (:mod:`repro.sim.timerwheel`) for *reusable*
  :class:`~repro.sim.timerwheel.Timer` handles —
  ``simulator.timer(callback)`` then ``timer.arm(delay, *args)`` — the
  right tool for retransmission/delayed-ACK style timers that are armed and
  cancelled once per packet and almost never fire.

Events can be cancelled (lazily: the entry stays in the heap until popped or
compacted) and the run can be bounded by simulated time, wall-clock time or
event count.

The event type and the run loop are the hottest code in the whole library
(every simulated packet costs several events), so both are written for
speed: :class:`Event` is a hand-rolled ``__slots__`` class whose ``__lt__``
compares the two hot fields directly instead of building tuples the way a
``dataclass(order=True)`` does, and :meth:`Simulator.run` binds the queue
and ``heappop`` to locals and only performs the horizon/budget checks the
caller asked for.  Heap hygiene keeps lazy cancellation honest: once
cancelled entries exceed half the heap (and a small floor), the heap is
compacted in one O(n) pass, so neither ``heappop`` nor
:meth:`Simulator.peek_next_time` degrades with cancellation churn.
"""

from __future__ import annotations

import time as _wallclock
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

from repro.sim.timerwheel import Timer, TimerWheel

#: Heaps smaller than this are never compacted — not worth the pass.
_COMPACTION_FLOOR = 64


class SimulationError(RuntimeError):
    """Raised for invalid scheduler usage (e.g. scheduling in the past)."""


class Event:
    """A single scheduled callback.

    Events sort by ``(time, sequence)`` which gives FIFO ordering among
    events scheduled for the same instant.  Sequence numbers are unique, so
    comparison never falls through to the callback.
    """

    __slots__ = ("time", "sequence", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Callable[..., None],
        args: tuple = (),
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = cancelled

    def __lt__(self, other: "Event") -> bool:
        t = self.time
        o = other.time
        if t < o:
            return True
        if t > o:
            return False
        return self.sequence < other.sequence

    def __le__(self, other: "Event") -> bool:
        return not other.__lt__(self)

    def __gt__(self, other: "Event") -> bool:
        return other.__lt__(self)

    def __ge__(self, other: "Event") -> bool:
        return not self.__lt__(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.time == other.time and self.sequence == other.sequence

    def __hash__(self) -> int:
        return hash((self.time, self.sequence))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(time={self.time!r}, sequence={self.sequence!r}, "
            f"callback={self.callback!r}, args={self.args!r}, "
            f"cancelled={self.cancelled!r})"
        )

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it is popped.

        Prefer :meth:`Simulator.cancel`, which additionally feeds the heap's
        compaction accounting; cancelling through the event alone is still
        correct but invisible to the hygiene heuristics.
        """
        self.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    Attributes:
        now: current simulated time in seconds.
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._now: float = 0.0
        self._sequence: int = 0
        self._running: bool = False
        self._stopped: bool = False
        self._heap_dead: int = 0
        self._wheel = TimerWheel()
        self.events_processed: int = 0
        self.heap_compactions: int = 0
        #: Optional dispatch profiler (see :mod:`repro.obs.profiler`).  The
        #: run loop re-binds it as a local per run; None (the default) costs
        #: one local None-check per event.
        self.profiler: Optional[Any] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def is_running(self) -> bool:
        """True while :meth:`run` is executing events."""
        return self._running

    @property
    def timer_wheel(self) -> TimerWheel:
        """The engine's timer wheel (read-only; profiler/diagnostics use)."""
        return self._wheel

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay!r}")
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(self._now + delay, sequence, callback, args)
        heappush(self._queue, event)
        return event

    def schedule_at(self, when: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: now={self._now!r}, requested={when!r}"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(when, sequence, callback, args)
        heappush(self._queue, event)
        return event

    def timer(self, callback: Callable[..., None]) -> Timer:
        """Create a reusable (initially disarmed) timer for ``callback``.

        Arm/re-arm/cancel cycles on the returned handle go through the timer
        wheel instead of allocating heap entries, which is dramatically
        cheaper for churn-heavy timers (RTO, delayed ACK).  Each ``arm``
        draws one sequence number from the same counter as ``schedule``, so
        timers and events interleave deterministically.
        """
        return Timer(self, callback)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (``None`` is tolerated).

        Cancellation is lazy, but the engine counts it and compacts the heap
        once cancelled entries outnumber live ones (above a small floor), so
        heavy schedule/cancel churn cannot degrade ``heappop``.
        """
        if event is not None and not event.cancelled:
            event.cancelled = True
            dead = self._heap_dead + 1
            self._heap_dead = dead
            if dead > _COMPACTION_FLOOR and dead * 2 > len(self._queue):
                self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries (O(live) pass)."""
        self._queue = [event for event in self._queue if not event.cancelled]
        heapify(self._queue)
        self._heap_dead = 0
        self.heap_compactions += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        wallclock_limit: Optional[float] = None,
    ) -> None:
        """Run the event loop.

        A stop request (:meth:`stop`) is honoured by exactly one run: the
        run it interrupts, or — when issued while no run is active — the
        next ``run()`` call, which then returns before processing anything.
        Either way the request is consumed on return, so a subsequent
        ``run()`` proceeds normally.

        Args:
            until: stop once simulated time would exceed this value.  Events
                scheduled exactly at ``until`` are executed.
            max_events: stop after this many events have been processed.
            wallclock_limit: stop after this many real seconds have elapsed
                (checked every 4096 events); useful as a safety net in
                benchmarks.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly from a callback")
        if self._stopped:
            # stop() was requested before this run started: consume it.
            self._stopped = False
            return
        self._running = True
        try:
            processed_this_run = 0
            # The wallclock_limit escape hatch is the engine's one sanctioned
            # real-clock read: it can only stop a run early (benchmarks use it
            # as a safety net), never reorder or retime simulated events.
            # repro: allow[no-wallclock-or-global-random] -- bounded-run safety net
            wall_start = _wallclock.monotonic() if wallclock_limit is not None else 0.0

            queue = self._queue
            wheel = self._wheel
            pop = heappop
            profiler = self.profiler
            bounded = max_events is not None or wallclock_limit is not None

            while not self._stopped:
                # A cancel() inside the previous callback may have compacted
                # (and therefore replaced) the heap; re-bind before touching it.
                queue = self._queue
                # Lazily discard cancelled events sitting at the heap head.
                while queue and queue[0].cancelled:
                    pop(queue)
                    if self._heap_dead:
                        self._heap_dead -= 1
                event = queue[0] if queue else None
                entry = wheel.peek() if wheel.live_count else None
                if event is not None and (
                    entry is None
                    or event.time < entry[0]
                    or (event.time == entry[0] and event.sequence < entry[1])
                ):
                    when = event.time
                    if until is not None and when > until:
                        # Advance the clock to the horizon so repeated run()
                        # calls with increasing horizons behave intuitively.
                        self._now = until
                        break
                    pop(queue)
                    self._now = when
                    if profiler is not None:
                        profiler.note(event.callback)
                    event.callback(*event.args)
                elif entry is not None:
                    when = entry[0]
                    if until is not None and when > until:
                        self._now = until
                        break
                    timer = entry[2]
                    wheel.pop()
                    self._now = when
                    if profiler is not None:
                        profiler.note(timer.callback)
                    timer.callback(*timer.args)
                else:
                    # Both sources exhausted.
                    if until is not None and self._now < until:
                        self._now = until
                    break
                self.events_processed += 1
                if bounded:
                    processed_this_run += 1
                    if max_events is not None and processed_this_run >= max_events:
                        break
                    if wallclock_limit is not None and processed_this_run % 4096 == 0:
                        # repro: allow[no-wallclock-or-global-random] -- see above
                        if _wallclock.monotonic() - wall_start > wallclock_limit:
                            break
        finally:
            self._stopped = False
            self._running = False

    def stop(self) -> None:
        """Request a halt after the current event.

        Valid at any time: during a run it stops that run; outside a run it
        makes the *next* ``run()`` return immediately (processing nothing).
        The request is consumed by whichever run honours it.
        """
        self._stopped = True

    @property
    def stop_requested(self) -> bool:
        """True if a stop request is pending (not yet consumed by a run)."""
        return self._stopped

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events and armed timers still waiting."""
        return (
            sum(1 for event in self._queue if not event.cancelled)
            + self._wheel.live_count
        )

    def peek_next_time(self) -> Optional[float]:
        """Simulated time of the next live event, or ``None`` if none is pending.

        Amortised O(1): cancelled heap heads are popped (each at most once)
        instead of sorting the queue, and the timer wheel keeps its own
        earliest-entry cursor.
        """
        queue = self._queue
        while queue and queue[0].cancelled:
            heappop(queue)
            if self._heap_dead:
                self._heap_dead -= 1
        entry = self._wheel.peek() if self._wheel.live_count else None
        head = queue[0] if queue else None
        if head is None:
            return entry[0] if entry is not None else None
        if entry is None or head.time <= entry[0]:
            return head.time
        return entry[0]

    def reset(self) -> None:
        """Discard all pending work and rewind the clock to zero.

        Pending events are dropped, armed timers are disarmed (their handles
        stay usable), the stop flag is cleared and counters rewind.  Calling
        ``reset()`` from inside a running event loop is an error — the loop
        cannot survive its queue being torn down underneath it.
        """
        if self._running:
            raise SimulationError("reset() called while the event loop is running")
        self._queue.clear()
        self._wheel.clear()
        self._now = 0.0
        self._sequence = 0
        self._heap_dead = 0
        self.events_processed = 0
        self._stopped = False
