"""Discrete-event simulation engine.

The engine is a classic event-heap design: callbacks are scheduled at
absolute simulated times, and :meth:`Simulator.run` pops them in
chronological order (ties broken by insertion order so behaviour is
deterministic).  Everything else in the library — links, queues, transport
timers, traffic generators — is built on these two operations:

* ``simulator.schedule(delay, callback, *args)``
* ``simulator.schedule_at(time, callback, *args)``

Events can be cancelled (used heavily by retransmission timers) and the run
can be bounded by simulated time, wall-clock time or event count.
"""

from __future__ import annotations

import heapq
import time as _wallclock
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for invalid scheduler usage (e.g. scheduling in the past)."""


@dataclass(order=True, slots=True)
class Event:
    """A single scheduled callback.

    Events sort by ``(time, sequence)`` which gives FIFO ordering among
    events scheduled for the same instant.
    """

    time: float
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it is popped."""
        self.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    Attributes:
        now: current simulated time in seconds.
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._now: float = 0.0
        self._sequence: int = 0
        self._running: bool = False
        self._stopped: bool = False
        self.events_processed: int = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, when: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: now={self._now!r}, requested={when!r}"
            )
        event = Event(time=when, sequence=self._sequence, callback=callback, args=args)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return event

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (``None`` is tolerated)."""
        if event is not None:
            event.cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        wallclock_limit: Optional[float] = None,
    ) -> None:
        """Run the event loop.

        Args:
            until: stop once simulated time would exceed this value.  Events
                scheduled exactly at ``until`` are executed.
            max_events: stop after this many events have been processed.
            wallclock_limit: stop after this many real seconds have elapsed
                (checked every 4096 events); useful as a safety net in
                benchmarks.
        """
        self._running = True
        self._stopped = False
        processed_this_run = 0
        wall_start = _wallclock.monotonic() if wallclock_limit is not None else 0.0

        while self._queue and not self._stopped:
            event = self._queue[0]
            if until is not None and event.time > until:
                # Advance the clock to the horizon so repeated run() calls
                # with increasing horizons behave intuitively.
                self._now = until
                break
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            self.events_processed += 1
            processed_this_run += 1
            if max_events is not None and processed_this_run >= max_events:
                break
            if wallclock_limit is not None and processed_this_run % 4096 == 0:
                if _wallclock.monotonic() - wall_start > wallclock_limit:
                    break

        if not self._queue and until is not None and self._now < until:
            self._now = until
        self._running = False

    def stop(self) -> None:
        """Request the currently running event loop to stop after the current event."""
        self._stopped = True

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still waiting in the queue."""
        return sum(1 for event in self._queue if not event.cancelled)

    def peek_next_time(self) -> Optional[float]:
        """Simulated time of the next live event, or ``None`` if the queue is empty."""
        for event in sorted(self._queue):
            if not event.cancelled:
                return event.time
        return None

    def reset(self) -> None:
        """Discard all pending events and rewind the clock to zero."""
        self._queue.clear()
        self._now = 0.0
        self._sequence = 0
        self.events_processed = 0
        self._stopped = False
