"""Discrete-event simulation engine.

The engine is a classic event-heap design: callbacks are scheduled at
absolute simulated times, and :meth:`Simulator.run` pops them in
chronological order (ties broken by insertion order so behaviour is
deterministic).  Everything else in the library — links, queues, transport
timers, traffic generators — is built on these two operations:

* ``simulator.schedule(delay, callback, *args)``
* ``simulator.schedule_at(time, callback, *args)``

Events can be cancelled (used heavily by retransmission timers) and the run
can be bounded by simulated time, wall-clock time or event count.

The event type and the run loop are the hottest code in the whole library
(every simulated packet costs several events), so both are written for
speed: :class:`Event` is a hand-rolled ``__slots__`` class whose ``__lt__``
compares the two hot fields directly instead of building tuples the way a
``dataclass(order=True)`` does, and :meth:`Simulator.run` binds the queue
and ``heappop`` to locals and only performs the horizon/budget checks the
caller asked for.
"""

from __future__ import annotations

import time as _wallclock
from heapq import heappop, heappush
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for invalid scheduler usage (e.g. scheduling in the past)."""


class Event:
    """A single scheduled callback.

    Events sort by ``(time, sequence)`` which gives FIFO ordering among
    events scheduled for the same instant.  Sequence numbers are unique, so
    comparison never falls through to the callback.
    """

    __slots__ = ("time", "sequence", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Callable[..., None],
        args: tuple = (),
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = cancelled

    def __lt__(self, other: "Event") -> bool:
        t = self.time
        o = other.time
        if t < o:
            return True
        if t > o:
            return False
        return self.sequence < other.sequence

    def __le__(self, other: "Event") -> bool:
        return not other.__lt__(self)

    def __gt__(self, other: "Event") -> bool:
        return other.__lt__(self)

    def __ge__(self, other: "Event") -> bool:
        return not self.__lt__(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.time == other.time and self.sequence == other.sequence

    def __hash__(self) -> int:
        return hash((self.time, self.sequence))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(time={self.time!r}, sequence={self.sequence!r}, "
            f"callback={self.callback!r}, args={self.args!r}, "
            f"cancelled={self.cancelled!r})"
        )

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it is popped."""
        self.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    Attributes:
        now: current simulated time in seconds.
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._now: float = 0.0
        self._sequence: int = 0
        self._running: bool = False
        self._stopped: bool = False
        self.events_processed: int = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay!r}")
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(self._now + delay, sequence, callback, args)
        heappush(self._queue, event)
        return event

    def schedule_at(self, when: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: now={self._now!r}, requested={when!r}"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(when, sequence, callback, args)
        heappush(self._queue, event)
        return event

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (``None`` is tolerated)."""
        if event is not None:
            event.cancelled = True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        wallclock_limit: Optional[float] = None,
    ) -> None:
        """Run the event loop.

        Args:
            until: stop once simulated time would exceed this value.  Events
                scheduled exactly at ``until`` are executed.
            max_events: stop after this many events have been processed.
            wallclock_limit: stop after this many real seconds have elapsed
                (checked every 4096 events); useful as a safety net in
                benchmarks.
        """
        self._running = True
        self._stopped = False
        processed_this_run = 0
        wall_start = _wallclock.monotonic() if wallclock_limit is not None else 0.0

        queue = self._queue
        pop = heappop
        bounded = max_events is not None or wallclock_limit is not None

        while queue and not self._stopped:
            event = queue[0]
            if until is not None and event.time > until:
                # Advance the clock to the horizon so repeated run() calls
                # with increasing horizons behave intuitively.
                self._now = until
                break
            pop(queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            self.events_processed += 1
            if bounded:
                processed_this_run += 1
                if max_events is not None and processed_this_run >= max_events:
                    break
                if wallclock_limit is not None and processed_this_run % 4096 == 0:
                    if _wallclock.monotonic() - wall_start > wallclock_limit:
                        break

        if not queue and until is not None and self._now < until:
            self._now = until
        self._running = False

    def stop(self) -> None:
        """Request the currently running event loop to stop after the current event."""
        self._stopped = True

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still waiting in the queue."""
        return sum(1 for event in self._queue if not event.cancelled)

    def peek_next_time(self) -> Optional[float]:
        """Simulated time of the next live event, or ``None`` if the queue is empty."""
        for event in sorted(self._queue):
            if not event.cancelled:
                return event.time
        return None

    def reset(self) -> None:
        """Discard all pending events and rewind the clock to zero."""
        self._queue.clear()
        self._now = 0.0
        self._sequence = 0
        self.events_processed = 0
        self._stopped = False
