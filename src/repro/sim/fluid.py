"""Deterministic (weighted) max-min fair-share allocation.

This is the rate solver at the heart of the flow-level fidelity tier
(:mod:`repro.flowlevel`): every active subflow is a *participant* with a
fixed set of directed links (its path) and a positive weight, and the
allocation is the classic progressive-filling one — raise every unfrozen
participant's rate in proportion to its weight until some link saturates,
freeze the participants crossing that link, repeat.  The result is the
unique weighted max-min fair allocation for unbounded demands.

Weights are how MPTCP-style *coupling* is approximated: a multipath flow
splits weight ``1/k`` over its ``k`` subflow paths, so at a bottleneck link
shared by all of its subflows (a host's access link, say) the whole flow
weighs exactly as much as a single-path TCP flow — the fairness goal of
coupled congestion control — while still being able to fill several
disjoint paths.

Determinism: the solver's arithmetic is order-independent (one addition /
subtraction per participant / link per round), and every iteration that
*could* depend on ordering walks its keys sorted, so equal inputs produce
bit-equal outputs on any platform and in any process.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple, TypeVar

Key = TypeVar("Key")

#: Relative tolerance (to a link's capacity) below which a link's residual
#: capacity counts as zero.  Progressive filling drives the bottleneck
#: link's residual to exactly zero in real arithmetic; this absorbs the
#: float round-off of ``remaining - (remaining / weight) * weight``.
_SATURATION_EPSILON = 1e-9


def max_min_rates(
    capacities: Mapping[str, float],
    paths: Mapping[Key, Sequence[str]],
    weights: Optional[Mapping[Key, float]] = None,
) -> Dict[Key, float]:
    """Weighted max-min fair rates for unbounded-demand participants.

    Args:
        capacities: directed link name → capacity (bits/s).  A non-positive
            capacity models a failed link: participants crossing it are
            pinned at rate zero (they stall; they do not free their other
            links' shares for ever — they simply hold no bandwidth).
        paths: participant key → the directed links the participant's
            traffic crosses.  Keys must be mutually sortable (the engine
            uses ``(flow_id, subflow_index)`` tuples).  Duplicate links in
            one path are collapsed — a participant cannot congest a link
            with itself twice.
        weights: participant key → positive weight (defaults to 1.0 for
            every participant).  Shares on a contended link are allocated
            proportionally to weight.

    Returns:
        participant key → allocated rate (bits/s), with the guarantees the
        property tests pin: per-link allocations sum to at most the link's
        capacity, and every participant is bottlenecked — its path crosses
        at least one saturated link, or only dead links stalled it.
    """
    link_sets: Dict[Key, Tuple[str, ...]] = {}
    rates: Dict[Key, float] = {}
    remaining: Dict[str, float] = {}
    for key in sorted(paths):
        links = tuple(dict.fromkeys(paths[key]))
        if not links:
            raise ValueError(f"participant {key!r} has an empty path")
        for link in links:
            if link not in remaining:
                if link not in capacities:
                    raise ValueError(f"participant {key!r} crosses unknown link {link!r}")
                remaining[link] = max(0.0, float(capacities[link]))
        link_sets[key] = links
        rates[key] = 0.0

    weight_of: Dict[Key, float] = {}
    for key in sorted(link_sets):
        weight = 1.0 if weights is None else float(weights[key])
        if weight <= 0:
            raise ValueError(f"participant {key!r} has non-positive weight {weight!r}")
        weight_of[key] = weight

    # Participants whose path crosses a dead link never receive bandwidth.
    active = [
        key
        for key in sorted(link_sets)
        if all(remaining[link] > 0.0 for link in link_sets[key])
    ]

    while active:
        # Aggregate unfrozen weight per link, then find the link that
        # saturates first when every unfrozen participant grows its rate by
        # ``weight * increment``.
        link_weight: Dict[str, float] = {}
        for key in active:
            weight = weight_of[key]
            for link in link_sets[key]:
                link_weight[link] = link_weight.get(link, 0.0) + weight
        bottleneck = ""
        increment = -1.0
        for link in sorted(link_weight):
            share = remaining[link] / link_weight[link]
            if increment < 0.0 or share < increment:
                increment = share
                bottleneck = link

        saturated = set()
        for link in sorted(link_weight):
            remaining[link] -= increment * link_weight[link]
            tolerance = _SATURATION_EPSILON * max(1.0, float(capacities[link]))
            if remaining[link] <= tolerance:
                remaining[link] = 0.0
                saturated.add(link)
        # The arg-min link is saturated by construction; force it in case
        # round-off left a residual just above the tolerance.
        saturated.add(bottleneck)

        still_active = []
        for key in active:
            rates[key] += increment * weight_of[key]
            if not saturated.isdisjoint(link_sets[key]):
                continue
            still_active.append(key)
        active = still_active

    return rates
