"""Scenario registry.

Scenarios are registered by name so experiments, the CLI and CI jobs can
refer to conditions declaratively (``scenarios run core-link-failure``)
instead of hand-assembling fault schedules.  The built-in catalogue below
covers the regimes the paper's healthy-fabric figures leave untested: failed
links, flapping links, degraded capacity, asymmetric (over-subscribed /
heterogeneous-speed) fat-trees, and endpoint mobility (live migration, VIP
failover, rolling link drains).

All built-in fault endpoints exist on any FatTree-family fabric with
``k >= 4`` (``core-0``/``core-1``, ``agg-0-0``, ``edge-0-0``), which every
named scale in this repository satisfies.
"""

from __future__ import annotations

from typing import Dict, List

from repro.net.faults import degradation, host_migration, link_drain, link_failure, link_flap
from repro.scenarios.spec import WORKLOAD_INCAST, ScenarioSpec

#: Address assumed by the failover target in ``vip-failover``.  Encoded well
#: above any FatTree host address (pod field ≥ 256), so it never collides
#: with a real host at any scale.
VIP_FAILOVER_ADDRESS = (1 << 28) + 1

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, overwrite: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the registry (and return it, for decorator-free chaining)."""
    if not overwrite and spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look a scenario up by name, with a helpful error listing what exists."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(scenario_names()) or "(none)"
        raise KeyError(f"unknown scenario {name!r}; registered scenarios: {known}") from None


def scenario_names() -> List[str]:
    """Registered scenario names, in registration order."""
    return list(_REGISTRY)


def all_scenarios() -> List[ScenarioSpec]:
    """All registered specs, in registration order."""
    return list(_REGISTRY.values())


# ---------------------------------------------------------------------------
# Built-in catalogue
# ---------------------------------------------------------------------------

register_scenario(
    ScenarioSpec(
        name="baseline",
        description="Healthy, symmetric fat-tree; the paper's evaluation condition.",
    )
)

register_scenario(
    ScenarioSpec(
        name="core-link-failure",
        description="A core<->aggregation link fails at t=30 ms and never recovers.",
        faults=(link_failure(0.03, "core-0", "agg-0-0"),),
    )
)

register_scenario(
    ScenarioSpec(
        name="agg-edge-flap",
        description="An aggregation<->edge link goes down at t=30 ms and returns at t=150 ms.",
        faults=link_flap(0.03, 0.15, "edge-0-0", "agg-0-0"),
    )
)

register_scenario(
    ScenarioSpec(
        name="degraded-core",
        description="A core uplink drops to quarter speed at t=20 ms, restored at t=250 ms.",
        faults=degradation(0.02, "core-0", "agg-0-0", factor=0.25, restore_s=0.25),
    )
)

register_scenario(
    ScenarioSpec(
        name="oversubscribed-core",
        description="Core links at half the edge speed: a 2:1 core:agg over-subscription.",
        config_overrides={"core_oversubscription": 2.0},
    )
)

register_scenario(
    ScenarioSpec(
        name="asymmetric-fabric",
        description=(
            "2:1 core over-subscription plus one core uplink permanently at half of "
            "that — heterogeneous path capacities end to end."
        ),
        config_overrides={"core_oversubscription": 2.0},
        faults=degradation(0.0, "core-1", "agg-0-0", factor=0.5),
    )
)

# The two incast scenarios pin the burst target to the same host so they are
# a paired comparison: same senders, same responses, with and without a
# failure on the receiver's ingress.  Failing one of edge-0-0's two uplinks
# halves the receiver-side path diversity mid-burst — a failure the
# equal-cost core has no way to hide.
register_scenario(
    ScenarioSpec(
        name="incast-burst",
        description="A synchronised 8-to-1 fan-in of 70 KB responses on a healthy fabric.",
        workload=WORKLOAD_INCAST,
        fan_in=8,
        receiver="host-0-0-0",
    )
)

register_scenario(
    ScenarioSpec(
        name="incast-link-failure",
        description=(
            "The 8-to-1 incast burst with one of the receiver's edge uplinks "
            "failing mid-burst."
        ),
        workload=WORKLOAD_INCAST,
        fan_in=8,
        receiver="host-0-0-0",
        faults=(link_failure(0.02, "edge-0-0", "agg-0-0"),),
    )
)

# Mobility scenarios: an endpoint's attachment point (and possibly address)
# changes mid-run.  MPTCP-family transports detect the break through RTOs,
# resolve the peer's current address and re-establish subflows; single-path
# TCP has no such machinery and must ride out the stall (or, when the
# address changed, never recovers) — the contrast the paper's resilience
# claims predict.
register_scenario(
    ScenarioSpec(
        name="vm-migration",
        description=(
            "host-0-0-0 live-migrates to edge-0-1 at t=40 ms with a 60 ms "
            "blackout window; its address is preserved."
        ),
        faults=(host_migration(0.04, "host-0-0-0", "edge-0-1", downtime_s=0.06),),
    )
)

register_scenario(
    ScenarioSpec(
        name="vip-failover",
        description=(
            "host-0-0-0 fails over to edge-1-0 at t=40 ms instantly, assuming "
            "a new (virtual-IP) address — in-flight traffic to the old "
            "address black-holes."
        ),
        faults=(
            host_migration(
                0.04, "host-0-0-0", "edge-1-0", new_address=VIP_FAILOVER_ADDRESS
            ),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="rolling-drain",
        description=(
            "agg-0-0's two core uplinks are drained in a staggered rollout "
            "(gradual degrade staircase, then down), leaving pod 0 on agg-0-1."
        ),
        faults=(
            link_drain(0.02, "core-0", "agg-0-0", duration_s=0.09, factor=0.5),
            link_drain(0.05, "core-1", "agg-0-0", duration_s=0.09, factor=0.5),
        ),
    )
)
