"""Declarative scenario specifications.

A :class:`ScenarioSpec` bundles everything that distinguishes one evaluation
condition from another — a topology variant (via config overrides such as
``core_oversubscription``), a fault schedule, and a workload shape — without
fixing the transport protocol or the fabric scale.  The scenario matrix
crosses specs with protocols, so the same fault hits TCP, MPTCP and MMPTCP
under the *same* seed-derived workload, which is what makes the per-scenario
deltas meaningful.

Specs are pure data: applying one to an :class:`ExperimentConfig` yields
another frozen, picklable config, so scenario runs fan out through
:class:`repro.experiments.parallel.SweepRunner` exactly like any other sweep
and stay byte-identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.incast_study import build_incast_workload_for
from repro.net.faults import FaultEvent
from repro.sim.units import kilobytes, megabits_per_second
from repro.traffic.workloads import Workload

#: Workload shapes a scenario can request.
WORKLOAD_SHORT_LONG = "short_long"
WORKLOAD_INCAST = "incast"
WORKLOAD_KINDS = (WORKLOAD_SHORT_LONG, WORKLOAD_INCAST)


@dataclass(frozen=True)
class ScenarioSpec:
    """One evaluation condition: topology variant + fault schedule + workload.

    Attributes:
        name: registry key (kebab-case by convention).
        description: one-line human description shown by ``scenarios list``.
        config_overrides: :class:`ExperimentConfig` field overrides that
            define the topology variant (e.g. ``{"core_oversubscription": 2.0}``).
            The transport protocol is *not* part of a scenario — the matrix
            supplies it.
        faults: timed :class:`FaultEvent`s applied during the run.  Fault
            endpoints name fabric nodes (``core-0``, ``agg-0-0``, ...), so a
            scenario with faults presumes a FatTree-family topology of
            sufficient arity.
        workload: ``short_long`` (the paper's mixed workload, built from the
            config) or ``incast`` (a synchronised fan-in burst).
        fan_in / response_bytes / receiver: incast parameters; ignored for
            ``short_long``.  ``receiver`` pins the burst target to a named
            host (``None`` = drawn from the seed), which lets a fault
            schedule aim a failure at the receiver's ingress links.
    """

    name: str
    description: str = ""
    config_overrides: Mapping[str, Any] = field(default_factory=dict)
    faults: Tuple[FaultEvent, ...] = ()
    workload: str = WORKLOAD_SHORT_LONG
    fan_in: int = 8
    response_bytes: int = kilobytes(70)
    receiver: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name cannot be empty")
        if self.workload not in WORKLOAD_KINDS:
            raise ValueError(
                f"unknown workload kind {self.workload!r}; expected one of {WORKLOAD_KINDS}"
            )
        if not isinstance(self.faults, tuple):
            raise ValueError("faults must be a tuple of FaultEvent")
        if self.fan_in < 1:
            raise ValueError("fan_in must be at least 1")
        if self.response_bytes <= 0:
            raise ValueError("response_bytes must be positive")
        if "protocol" in self.config_overrides or "fault_schedule" in self.config_overrides:
            raise ValueError(
                "config_overrides cannot set 'protocol' (the matrix supplies it) "
                "or 'fault_schedule' (use the faults field)"
            )

    def apply_to(self, config: ExperimentConfig) -> ExperimentConfig:
        """The config that runs this scenario on top of ``config``."""
        return config.with_updates(fault_schedule=self.faults, **dict(self.config_overrides))

    @property
    def has_faults(self) -> bool:
        """True when the scenario injects at least one fault event."""
        return bool(self.faults)


def build_scenario_workload(
    config: ExperimentConfig,
    workload_kind: str,
    fan_in: int = 8,
    response_bytes: int = kilobytes(70),
    receiver: Optional[str] = None,
) -> Optional[Workload]:
    """Materialise a scenario's workload inside a worker process.

    Module-level so :class:`repro.experiments.parallel.RunSpec` can carry it
    by reference.  Returns ``None`` for ``short_long`` — the experiment
    runner then builds the default mixed workload from the config, exactly as
    a plain run would.
    """
    if workload_kind == WORKLOAD_SHORT_LONG:
        return None
    if workload_kind == WORKLOAD_INCAST:
        return build_incast_workload_for(
            config, fan_in, response_bytes, config.protocol, receiver=receiver
        )
    raise ValueError(f"unknown workload kind {workload_kind!r}")


def tiny_config(seed: int = 20150817, **overrides) -> ExperimentConfig:
    """The 'tiny' scale used by scenario matrices and the CI smoke matrix.

    A 16-host k=4 FatTree with a dozen short flows: big enough that faults
    and over-subscription visibly move the metrics, small enough that a
    full scenario × transport matrix finishes in well under a minute.
    """
    defaults = dict(
        fattree_k=4,
        hosts_per_edge=2,
        link_rate_bps=megabits_per_second(100),
        arrival_window_s=0.12,
        drain_time_s=1.2,
        short_flow_rate_per_sender=4.0,
        long_flow_size_bytes=500_000,
        max_short_flows=12,
        num_subflows=4,
        initial_cwnd_segments=2,
        seed=seed,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)
