"""Declarative fault-injection scenarios and the scenario × transport matrix.

Public surface:

* :class:`~repro.scenarios.spec.ScenarioSpec` — topology variant + fault
  schedule + workload, independent of transport and scale.
* :func:`~repro.scenarios.registry.register_scenario` /
  :func:`~repro.scenarios.registry.get_scenario` /
  :func:`~repro.scenarios.registry.scenario_names` — the registry (importing
  this package registers the built-in catalogue).
* :class:`~repro.scenarios.runner.ScenarioMatrixRunner` /
  :func:`~repro.scenarios.runner.run_scenario` /
  :func:`~repro.scenarios.runner.matrix_rows` — execution.
* :func:`~repro.scenarios.spec.tiny_config` — the matrix-friendly scale.
"""

from repro.scenarios.registry import (
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenarios.runner import (
    DEFAULT_MATRIX_PROTOCOLS,
    DEFAULT_MATRIX_SCENARIOS,
    ScenarioCell,
    ScenarioMatrixRunner,
    matrix_rows,
    run_scenario,
    scenario_run_specs,
)
from repro.scenarios.spec import (
    WORKLOAD_INCAST,
    WORKLOAD_SHORT_LONG,
    ScenarioSpec,
    build_scenario_workload,
    tiny_config,
)

__all__ = [
    "DEFAULT_MATRIX_PROTOCOLS",
    "DEFAULT_MATRIX_SCENARIOS",
    "ScenarioCell",
    "ScenarioMatrixRunner",
    "ScenarioSpec",
    "WORKLOAD_INCAST",
    "WORKLOAD_SHORT_LONG",
    "all_scenarios",
    "build_scenario_workload",
    "get_scenario",
    "matrix_rows",
    "register_scenario",
    "run_scenario",
    "scenario_names",
    "scenario_run_specs",
    "tiny_config",
]
