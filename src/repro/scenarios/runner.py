"""Scenario matrix execution.

The :class:`ScenarioMatrixRunner` crosses registered scenarios with
transport protocols and fans every cell out through the shared
:class:`repro.experiments.parallel.SweepRunner`.  Each cell is one
:class:`RunSpec` whose config carries the scenario's fault schedule and
topology overrides, and whose workload travels as a picklable recipe —
so a matrix parallelises byte-identically for any ``workers`` value, the
same determinism contract as every other sweep in the repository.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import RunSpec, SweepRunner, resolve_workers
from repro.experiments.runner import ExperimentResult
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ScenarioSpec, build_scenario_workload, tiny_config
from repro.traffic.flowspec import PROTOCOL_MMPTCP, PROTOCOL_MPTCP, PROTOCOL_TCP

#: The default 2 × 3 matrix: healthy fabric and a hard link failure, across
#: the paper's three protagonist transports.
DEFAULT_MATRIX_SCENARIOS = ("baseline", "core-link-failure")
DEFAULT_MATRIX_PROTOCOLS = (PROTOCOL_TCP, PROTOCOL_MPTCP, PROTOCOL_MMPTCP)


@dataclass
class ScenarioCell:
    """One (scenario, protocol) cell of a matrix, with its full result."""

    scenario: str
    protocol: str
    spec: ScenarioSpec
    result: ExperimentResult


def _specs_for(
    base_config: ExperimentConfig,
    scenario_specs: Sequence[ScenarioSpec],
    protocols: Sequence[str],
    probes: Tuple[str, ...] = (),
    profile: bool = False,
) -> List[RunSpec]:
    if not scenario_specs or not protocols:
        raise ValueError("need at least one scenario and one protocol")
    specs: List[RunSpec] = []
    for spec in scenario_specs:
        for protocol in protocols:
            config = spec.apply_to(base_config.with_updates(protocol=protocol))
            specs.append(
                RunSpec(
                    index=len(specs),
                    config=config,
                    workload_factory=build_scenario_workload,
                    workload_args=(spec.workload, spec.fan_in, spec.response_bytes, spec.receiver),
                    tag={"scenario": spec.name, "protocol": protocol},
                    probes=probes,
                    profile=profile,
                )
            )
    return specs


def scenario_run_specs(
    base_config: ExperimentConfig,
    scenarios: Sequence[str],
    protocols: Sequence[str],
    probes: Tuple[str, ...] = (),
    profile: bool = False,
) -> List[RunSpec]:
    """One :class:`RunSpec` per (scenario, protocol) cell, in matrix order."""
    return _specs_for(
        base_config,
        [get_scenario(name) for name in scenarios],
        protocols,
        probes=probes,
        profile=profile,
    )


class ScenarioMatrixRunner:
    """Runs a scenario × protocol matrix, serially or on a process pool."""

    def __init__(
        self,
        base_config: Optional[ExperimentConfig] = None,
        workers: Optional[int] = 1,
        probes: Tuple[str, ...] = (),
        profile: bool = False,
    ) -> None:
        self.base_config = base_config if base_config is not None else tiny_config()
        # Fail fast on nonsense worker counts instead of at run() time.
        self.workers = resolve_workers(workers)
        self.probes = probes
        self.profile = profile

    def run(
        self,
        scenarios: Sequence[str] = DEFAULT_MATRIX_SCENARIOS,
        protocols: Sequence[str] = DEFAULT_MATRIX_PROTOCOLS,
    ) -> List[ScenarioCell]:
        """Execute the full cross-product; cells come back in matrix order."""
        # Resolve each scenario exactly once so the cells returned describe
        # the same specs the configs were built from, even if the registry
        # entry is overwritten while the matrix runs.
        scenario_specs = [get_scenario(name) for name in scenarios]
        spec_by_name = {spec.name: spec for spec in scenario_specs}
        specs = _specs_for(
            self.base_config,
            scenario_specs,
            protocols,
            probes=self.probes,
            profile=self.profile,
        )
        results = SweepRunner(self.workers).run(specs)
        cells: List[ScenarioCell] = []
        for spec, result in zip(specs, results):
            cells.append(
                ScenarioCell(
                    scenario=spec.tag["scenario"],
                    protocol=spec.tag["protocol"],
                    spec=spec_by_name[spec.tag["scenario"]],
                    result=result,
                )
            )
        return cells


def run_scenario(
    name: str,
    base_config: Optional[ExperimentConfig] = None,
    protocol: str = PROTOCOL_MMPTCP,
) -> ScenarioCell:
    """Run a single scenario for one protocol (the ``scenarios run`` command)."""
    cells = ScenarioMatrixRunner(base_config, workers=1).run(
        scenarios=(name,), protocols=(protocol,)
    )
    return cells[0]


#: The metric columns of a per-cell row, in emission order.  This order is a
#: **public contract**: CSV headers and report tables are generated from row
#: insertion order, so reordering these keys changes exported bytes.
CELL_METRIC_FIELDS = (
    "short_flows",
    "completion_rate",
    "mean_fct_ms",
    "p99_fct_ms",
    "rto_incidence",
    "retransmits",
    "rtos",
    "fault_drops",
    "long_tput_mbps",
)


def result_metrics_row(result: ExperimentResult) -> Dict[str, object]:
    """The shared metric columns of one run, keyed per :data:`CELL_METRIC_FIELDS`.

    Used by both scenario-matrix rows and campaign-report rows, so the two
    table families stay column-compatible.  Everything here derives from the
    simulated metrics only — never from wall-clock or worker counts — which
    keeps rows byte-stable across re-runs and cache hits.
    """
    metrics = result.metrics
    fct = metrics.short_flow_fct_summary()
    return {
        "short_flows": len(metrics.short_flows),
        "completion_rate": metrics.short_flow_completion_rate(),
        "mean_fct_ms": fct.mean,
        "p99_fct_ms": fct.p99,
        "rto_incidence": metrics.rto_incidence(),
        "retransmits": sum(record.retransmitted_packets for record in metrics.flows),
        "rtos": sum(record.rto_events for record in metrics.flows),
        "fault_drops": metrics.fault_drops,
        "long_tput_mbps": metrics.mean_long_flow_throughput_bps() / 1e6,
    }


def matrix_rows(cells: Sequence[ScenarioCell]) -> List[Dict[str, object]]:
    """Flat per-cell rows for table rendering / CSV export / reports.

    Key order — ``scenario``, ``protocol``, ``faults``, then
    :data:`CELL_METRIC_FIELDS` — is insertion-stable and part of the public
    contract (CSV headers come from it); rows appear in matrix (cell) order.
    """
    rows: List[Dict[str, object]] = []
    for cell in cells:
        row: Dict[str, object] = {
            "scenario": cell.scenario,
            "protocol": cell.protocol,
            "faults": len(cell.spec.faults),
        }
        row.update(result_metrics_row(cell.result))
        rows.append(row)
    return rows
