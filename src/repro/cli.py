"""Command-line interface for the MMPTCP reproduction.

Exposes the experiment harness without writing any Python::

    repro-mmptcp run --protocol mmptcp --subflows 8 --k 4 --hosts-per-edge 8
    repro-mmptcp figure1a --scale quick
    repro-mmptcp section3 --scale quick --export-dir results/
    repro-mmptcp loadsweep --factors 0.5 1.0 2.0 --workers 4
    repro-mmptcp coexistence
    repro-mmptcp incast --fan-ins 8 16 32 --topologies fattree dualhomed
    repro-mmptcp deadlines --slack 2.0
    repro-mmptcp scenarios list
    repro-mmptcp scenarios run core-link-failure --protocol mmptcp
    repro-mmptcp scenarios run vm-migration --protocol mmptcp
    repro-mmptcp scenarios matrix --workers 4 --export-dir results/
    repro-mmptcp scenarios matrix --scenarios vm-migration vip-failover \
        --transports tcp mmptcp
    repro-mmptcp run --fidelity flow --max-short-flows 5000
    repro-mmptcp campaign run --store results/store --workers 4 --report report.md
    repro-mmptcp campaign run --store results/store --fidelities packet flow
    repro-mmptcp campaign status --store results/store
    repro-mmptcp campaign report --store results/store --output report.md
    repro-mmptcp campaign gc --store results/store
    repro-mmptcp campaign run --store results/store --progress-events events.jsonl
    repro-mmptcp campaign status --store results/store --summary
    repro-mmptcp store verify --store results/store --budget 100000000
    repro-mmptcp store gc --store results/store --budget 100000000 --dry-run
    repro-mmptcp run --probes all --profile --telemetry-out run.telemetry.jsonl
    repro-mmptcp scenarios matrix --probes transport faults --telemetry-dir results/
    repro-mmptcp trace export run.telemetry.jsonl --output run.trace.json

Every sub-command prints the same tables the corresponding benchmark prints
and can optionally export per-flow CSVs / JSON summaries via
``--export-dir``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.lint.cli import (
    LintUsageError,
    add_lint_arguments,
    run_lint_command,
)
from repro.analysis.report import scenario_matrix_markdown
from repro.campaigns import (
    CAMPAIGN_SCALES,
    CampaignIncompleteError,
    CampaignSpec,
    campaign_gc,
    campaign_report,
    campaign_rows,
    campaign_status,
    campaign_summary_rows,
    outcome_report,
    params_label,
    run_campaign,
    status_summary_rows,
)
from repro.experiments.coexistence import coexistence_rows, run_coexistence_experiment
from repro.experiments.config import (
    FIDELITIES,
    SCALES,
    ExperimentConfig,
    scaled_config,
)
from repro.experiments.deadline_study import deadline_rows, run_deadline_study
from repro.experiments.figure1 import figure1a_series, figure1b_scatter, figure1c_scatter
from repro.experiments.hotspot import hotspot_rows, run_hotspot_comparison
from repro.experiments.incast_study import incast_rows, run_incast_sweep
from repro.experiments.loadsweep import load_sweep_rows, run_load_sweep
from repro.experiments.parallel import workers_argument_type
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.section3 import section3_statistics
from repro.metrics.export import (
    dumps_deterministic,
    write_flow_records_csv,
    write_series_csv,
    write_summary_json,
)
from repro.metrics.reporting import render_table
from repro.obs import (
    ALL_GROUPS,
    PROBE_GROUPS,
    chrome_trace_document,
    make_recorder,
    probe_groups_argument,
    telemetry_jsonl,
    telemetry_records,
)
from repro.scenarios import (
    DEFAULT_MATRIX_PROTOCOLS,
    DEFAULT_MATRIX_SCENARIOS,
    ScenarioMatrixRunner,
    all_scenarios,
    matrix_rows,
    run_scenario,
    tiny_config,
)
from repro.sim.units import megabits_per_second
from repro.store import RunStore, StoreError, StoreIntegrityError
from repro.traffic.flowspec import ALL_PROTOCOLS, PROTOCOL_MMPTCP, PROTOCOL_MPTCP
from repro.transport.path_manager import path_manager_names
from repro.transport.scheduler import scheduler_names

#: The scenario and campaign commands additionally accept the matrix-friendly
#: tiny scale (same tuple as the campaign layer's).
SCENARIO_SCALES = CAMPAIGN_SCALES


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    """Build an :class:`ExperimentConfig` from the ``run`` sub-command's flags."""
    config = scaled_config(args.scale, args.seed)
    overrides = {
        "protocol": args.protocol,
        "num_subflows": args.subflows,
    }
    if args.k is not None:
        overrides["fattree_k"] = args.k
    if args.hosts_per_edge is not None:
        overrides["hosts_per_edge"] = args.hosts_per_edge
    if args.link_mbps is not None:
        overrides["link_rate_bps"] = megabits_per_second(args.link_mbps)
    if args.max_short_flows is not None:
        overrides["max_short_flows"] = args.max_short_flows
    if args.arrival_rate is not None:
        overrides["short_flow_rate_per_sender"] = args.arrival_rate
    if args.topology is not None:
        overrides["topology"] = args.topology
    if args.queue is not None:
        overrides["queue_kind"] = args.queue
    if args.switching is not None:
        overrides["switching_policy"] = args.switching
    overrides.update(_transport_matrix_overrides(args))
    return config.with_updates(**overrides)


def _transport_matrix_overrides(args: argparse.Namespace) -> Dict[str, str]:
    """The scheduler/path-manager/fidelity overrides shared across commands.

    Every entry follows the same rule: an omitted flag adds no override, so
    the resulting config — and any store key derived from it — is untouched.
    """
    overrides: Dict[str, str] = {}
    if getattr(args, "scheduler", None) is not None:
        overrides["scheduler"] = args.scheduler
    if getattr(args, "path_manager", None) is not None:
        overrides["path_manager"] = args.path_manager
    if getattr(args, "fidelity", None) is not None:
        overrides["fidelity"] = args.fidelity
    return overrides


def _print_summary(result: ExperimentResult) -> None:
    summary = result.metrics.summary_dict()
    rows = [[key, f"{value:.4f}"] for key, value in sorted(summary.items())]
    print(render_table(["metric", "value"], rows))
    print(
        f"events processed: {result.events_processed}, "
        f"wall-clock: {result.wallclock_s:.1f} s, flows: {result.workload_size}"
    )


def _maybe_export(result: ExperimentResult, export_dir: Optional[str], stem: str) -> None:
    if not export_dir:
        return
    directory = Path(export_dir)
    flows_path = write_flow_records_csv(result.metrics.flows, directory / f"{stem}_flows.csv")
    summary_path = write_summary_json(
        result.metrics,
        directory / f"{stem}_summary.json",
        extra={"protocol": result.config.protocol, "seed": result.config.seed},
    )
    print(f"wrote {flows_path} and {summary_path}")


def _export_rows(rows: List[Dict[str, object]], export_dir: Optional[str], stem: str) -> None:
    if not export_dir or not rows:
        return
    path = write_series_csv(rows, Path(export_dir) / f"{stem}.csv")
    print(f"wrote {path}")


def _command_error(message: str) -> int:
    """One-line diagnostic on stderr, exit code 2.

    The uniform failure path for anticipated CLI errors — a bad ``--spec``
    file, an unknown scenario, a corrupt store artifact, a missing lint
    path — shared by the campaign and lint sub-commands so none of them
    dumps a traceback at the user.
    """
    print(message, file=sys.stderr)
    return 2


def _rows_table(rows: List[Dict[str, object]]) -> str:
    if not rows:
        return "(no rows)"
    headers = list(rows[0].keys())
    body = []
    for row in rows:
        cells = []
        for header in headers:
            value = row[header]
            cells.append(f"{value:.4f}" if isinstance(value, float) else str(value))
        body.append(cells)
    return render_table(headers, body)


def _probe_groups_from_args(args: argparse.Namespace):
    """The validated, sorted-deduplicated ``--probes`` tuple (empty = off)."""
    groups = getattr(args, "probes", None)
    if not groups:
        return ()
    return probe_groups_argument(groups)


def _telemetry_text(result: ExperimentResult, recorder, label: str) -> str:
    """One run's telemetry JSONL: recorder content, else a bare diagnostics line."""
    if recorder is not None:
        return telemetry_jsonl(
            telemetry_records(recorder, label=label, diagnostics=result.diagnostics)
        )
    return telemetry_jsonl([{"kind": "diagnostics", "diagnostics": result.diagnostics}])


def _print_diagnostics(result: ExperimentResult) -> None:
    """One-line ``--profile`` summary (full detail lives in the telemetry output)."""
    diagnostics = result.diagnostics
    if not diagnostics:
        return
    print(f"profile: events={diagnostics['events_processed']} "
          f"us_per_event={diagnostics['us_per_event']:.3f} "
          f"handlers={len(diagnostics['handlers'])}")


# ---------------------------------------------------------------------------
# Sub-command implementations
# ---------------------------------------------------------------------------


def _cmd_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    if args.telemetry_out and not (args.probes or args.profile):
        return _command_error(
            "run: --telemetry-out needs --probes and/or --profile to record anything")
    print(f"running protocol={config.protocol} subflows={config.num_subflows} "
          f"k={config.fattree_k} hosts/edge={config.hosts_per_edge} seed={config.seed}")
    recorder = make_recorder(_probe_groups_from_args(args))
    result = run_experiment(config, probes=recorder, profile=args.profile)
    _print_summary(result)
    _print_diagnostics(result)
    _maybe_export(result, args.export_dir, f"run_{config.protocol}")
    if args.telemetry_out:
        path = Path(args.telemetry_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(_telemetry_text(result, recorder, f"run_{config.protocol}"))
        print(f"wrote {path}")
    return 0


def _cmd_figure1a(args: argparse.Namespace) -> int:
    config = scaled_config(args.scale, args.seed)
    counts = tuple(args.subflow_counts)
    rows = figure1a_series(config, counts, workers=args.workers)
    table_rows = [
        {
            "subflows": row.num_subflows,
            "mean_fct_ms": row.mean_ms,
            "std_fct_ms": row.std_ms,
            "p99_fct_ms": row.fct_summary.p99,
            "rto_incidence": row.rto_incidence,
            "completion_rate": row.completion_rate,
        }
        for row in rows
    ]
    print("Figure 1(a) — MPTCP short-flow FCT vs subflow count")
    print(_rows_table(table_rows))
    _export_rows(table_rows, args.export_dir, "figure1a")
    return 0


def _cmd_figure1bc(args: argparse.Namespace, which: str) -> int:
    config = scaled_config(args.scale, args.seed)
    builder = figure1b_scatter if which == "b" else figure1c_scatter
    result = builder(config, args.subflows)
    label = "MPTCP(8)" if which == "b" else "MMPTCP(PS + 8)"
    print(f"Figure 1({which}) — {label} per-flow short-flow completion times")
    _print_summary(result)
    _maybe_export(result, args.export_dir, f"figure1{which}")
    return 0


def _cmd_section3(args: argparse.Namespace) -> int:
    config = scaled_config(args.scale, args.seed)
    comparison = section3_statistics(config, args.subflows)
    rows = [
        {"protocol": "mptcp", **comparison.mptcp.as_dict()},
        {"protocol": "mmptcp", **comparison.mmptcp.as_dict()},
    ]
    print("Section 3 statistics — MPTCP vs MMPTCP (paired workload)")
    print(_rows_table(rows))
    _export_rows(rows, args.export_dir, "section3")
    return 0


def _cmd_loadsweep(args: argparse.Namespace) -> int:
    config = scaled_config(args.scale, args.seed)
    config = config.with_updates(**_transport_matrix_overrides(args))
    points = run_load_sweep(
        config,
        protocols=tuple(args.protocols),
        load_factors=tuple(args.factors),
        num_subflows=args.subflows,
        workers=args.workers,
    )
    rows = load_sweep_rows(points)
    print("Load sweep — short-flow FCT vs offered load")
    print(_rows_table(rows))
    _export_rows(rows, args.export_dir, "loadsweep")
    return 0


def _cmd_coexistence(args: argparse.Namespace) -> int:
    config = scaled_config(args.scale, args.seed).with_updates(num_subflows=args.subflows)
    outcome = run_coexistence_experiment(config, protocols=tuple(args.protocols))
    rows = coexistence_rows(outcome)
    print("Co-existence — per-protocol statistics on a shared fabric")
    print(_rows_table(rows))
    print(f"Jain fairness index over long flows: {outcome.fairness_index():.3f}")
    _export_rows(rows, args.export_dir, "coexistence")
    return 0


def _cmd_hotspot(args: argparse.Namespace) -> int:
    config = scaled_config(args.scale, args.seed)
    outcomes = run_hotspot_comparison(
        config,
        protocols=tuple(args.protocols),
        hotspot_fraction=args.hotspot_fraction,
        load_fraction=args.load_fraction,
        num_subflows=args.subflows,
    )
    rows = hotspot_rows(outcomes)
    print("Hotspot — per-protocol statistics under skewed destinations")
    print(_rows_table(rows))
    _export_rows(rows, args.export_dir, "hotspot")
    return 0


def _cmd_incast(args: argparse.Namespace) -> int:
    config = scaled_config(args.scale, args.seed).with_updates(num_subflows=args.subflows)
    config = config.with_updates(**_transport_matrix_overrides(args))
    points = run_incast_sweep(
        config,
        protocols=tuple(args.protocols),
        fan_ins=tuple(args.fan_ins),
        response_bytes=args.response_kb * 1000,
        topologies=tuple(args.topologies),
        workers=args.workers,
    )
    rows = incast_rows(points)
    print("Incast — synchronised fan-in bursts")
    print(_rows_table(rows))
    _export_rows(rows, args.export_dir, "incast")
    return 0


def _cmd_deadlines(args: argparse.Namespace) -> int:
    config = scaled_config(args.scale, args.seed)
    outcomes = run_deadline_study(
        config,
        protocols=tuple(args.protocols),
        slack_factor=args.slack,
        num_subflows=args.subflows,
    )
    rows = deadline_rows(outcomes)
    print(f"Deadline study — slack factor {args.slack}")
    print(_rows_table(rows))
    _export_rows(rows, args.export_dir, "deadlines")
    return 0


def _scenario_scaled_config(scale: str, seed: int):
    """Like :func:`scaled_config` but with the extra ``tiny`` matrix scale."""
    if scale == "tiny":
        return tiny_config(seed=seed)
    return scaled_config(scale, seed)


def _cmd_scenarios_list(args: argparse.Namespace) -> int:
    rows = [
        {
            "name": spec.name,
            "workload": spec.workload,
            "faults": len(spec.faults),
            "description": spec.description,
        }
        for spec in all_scenarios()
    ]
    print("Registered scenarios")
    print(_rows_table(rows))
    return 0


def _cmd_scenarios_run(args: argparse.Namespace) -> int:
    base = _scenario_scaled_config(args.scale, args.seed)
    base = base.with_updates(**_transport_matrix_overrides(args))
    try:
        cell = run_scenario(args.name, base_config=base, protocol=args.protocol)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    spec = cell.spec
    print(f"scenario={spec.name} protocol={cell.protocol} "
          f"faults={len(spec.faults)} workload={spec.workload}")
    if spec.description:
        print(spec.description)
    _print_summary(cell.result)
    _maybe_export(cell.result, args.export_dir, f"scenario_{spec.name}_{cell.protocol}")
    return 0


def _cmd_scenarios_matrix(args: argparse.Namespace) -> int:
    base = _scenario_scaled_config(args.scale, args.seed)
    base = base.with_updates(**_transport_matrix_overrides(args))
    if args.telemetry_dir and not (args.probes or args.profile):
        return _command_error(
            "scenarios matrix: --telemetry-dir needs --probes and/or --profile")
    runner = ScenarioMatrixRunner(
        base,
        workers=args.workers,
        probes=_probe_groups_from_args(args),
        profile=args.profile,
    )
    try:
        cells = runner.run(scenarios=tuple(args.scenarios), protocols=tuple(args.transports))
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    rows = matrix_rows(cells)
    print(f"Scenario matrix — {len(args.scenarios)} scenario(s) × "
          f"{len(args.transports)} transport(s)")
    print(_rows_table(rows))
    baseline = args.baseline_protocol
    if baseline in args.transports:
        print()
        print(scenario_matrix_markdown(rows, baseline_protocol=baseline))
    else:
        print(f"(no delta table: baseline protocol {baseline!r} is not among "
              f"the requested transports {list(args.transports)})")
    _export_rows(rows, args.export_dir, "scenario_matrix")
    if args.telemetry_dir:
        directory = Path(args.telemetry_dir)
        directory.mkdir(parents=True, exist_ok=True)
        written = 0
        for cell in cells:
            if cell.result.telemetry is None:
                continue
            path = directory / f"telemetry_{cell.scenario}_{cell.protocol}.jsonl"
            path.write_text(telemetry_jsonl(cell.result.telemetry))
            written += 1
        print(f"wrote telemetry for {written} cell(s) to {directory}")
    return 0


# ---------------------------------------------------------------------------
# Campaign commands
# ---------------------------------------------------------------------------


def _campaign_spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    """The campaign spec: from ``--spec FILE`` when given, else from flags."""
    if args.spec:
        return CampaignSpec.from_file(args.spec)
    # Scheduler / path-manager / fidelity lists become ordinary sweep axes;
    # omitting a flag adds no axis, so cell labels and cache keys of existing
    # campaigns are untouched.
    sweeps = []
    if getattr(args, "schedulers", None):
        sweeps.append(("scheduler", tuple(args.schedulers)))
    if getattr(args, "path_managers", None):
        sweeps.append(("path_manager", tuple(args.path_managers)))
    if getattr(args, "fidelities", None):
        sweeps.append(("fidelity", tuple(args.fidelities)))
    return CampaignSpec(
        name=args.name,
        scenarios=tuple(args.scenarios),
        protocols=tuple(args.transports),
        replications=args.replications,
        scale=args.scale,
        seed=args.seed,
        sweeps=tuple(sweeps),
    )


def _campaign_command(args: argparse.Namespace, body) -> int:
    """Run one campaign sub-command with uniform error reporting.

    Every anticipated failure — unknown scenario (``KeyError`` from the
    registry), missing cells, a corrupt or tampered artifact
    (``StoreError``), an unreadable or invalid ``--spec`` file — prints a
    one-line diagnostic to stderr and exits 2 instead of dumping a
    traceback.
    """
    try:
        spec = _campaign_spec_from_args(args)
        store = RunStore(args.store)
        return body(spec, store)
    except CampaignIncompleteError as exc:
        return _command_error(str(exc))
    except KeyError as exc:
        return _command_error(exc.args[0])
    except (StoreError, OSError, ValueError) as exc:
        return _command_error(f"campaign command failed: {exc}")


def _campaign_summary_line(name: str, cells: int, hits: int, simulated: int, store: str) -> str:
    """The machine-greppable one-line outcome (CI asserts on ``simulated=``)."""
    return (
        f"campaign '{name}': cells={cells} cache_hits={hits} "
        f"simulated={simulated} store={store}"
    )


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    def body(spec: CampaignSpec, store: RunStore) -> int:
        emit_event = None
        events_file = None
        if args.progress_events:
            events_path = Path(args.progress_events)
            events_path.parent.mkdir(parents=True, exist_ok=True)
            events_file = events_path.open("w", encoding="utf-8")

            def emit_event(event: Dict[str, object]) -> None:
                # One compact deterministic-dump line per event, flushed
                # immediately so a tailing operator sees progress live.
                events_file.write(dumps_deterministic(event, indent=None))
                events_file.flush()

        try:
            outcome = run_campaign(spec, store, workers=args.workers, events=emit_event)
        finally:
            if events_file is not None:
                events_file.close()
        if args.progress_events:
            print(f"wrote {args.progress_events}")
        rows = campaign_rows(outcome.cells)
        print(f"Campaign '{spec.name}' — {len(spec.scenarios)} scenario(s) × "
              f"{len(spec.protocols)} transport(s) × {len(spec.sweep_points())} sweep "
              f"point(s) × {spec.replications} replication(s)")
        print(_rows_table(rows))
        if spec.replications > 1:
            print()
            print("Across replications (mean ± 95% CI)")
            print(_rows_table(campaign_summary_rows(outcome.cells)))
        print(_campaign_summary_line(
            spec.name, len(outcome.cells), outcome.cache_hits, outcome.simulated, args.store
        ))
        if args.report:
            # In-memory rows yield bytes identical to campaign_report's
            # store-backed path, without re-reading the artifacts just written.
            report = outcome_report(outcome, baseline_protocol=args.baseline_protocol)
            path = Path(args.report)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(report)
            print(f"wrote {path}")
        _export_rows(rows, args.export_dir, f"campaign_{spec.name}")
        return 0

    return _campaign_command(args, body)


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    def body(spec: CampaignSpec, store: RunStore) -> int:
        statuses = campaign_status(spec, store)
        if args.summary:
            rows = status_summary_rows(statuses)
        else:
            rows = [
                {
                    "scenario": status.scenario,
                    "protocol": status.protocol,
                    "params": params_label(status.params),
                    "replication": status.replication,
                    "stored": status.stored,
                    "key": status.key[:12],
                }
                for status in statuses
            ]
        print(f"Campaign '{spec.name}' store status — {args.store}")
        print(_rows_table(rows))
        stored = sum(1 for status in statuses if status.stored)
        print(f"campaign '{spec.name}': cells={len(statuses)} stored={stored} "
              f"missing={len(statuses) - stored}")
        return 0

    return _campaign_command(args, body)


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    def body(spec: CampaignSpec, store: RunStore) -> int:
        report = campaign_report(spec, store, baseline_protocol=args.baseline_protocol)
        if args.output:
            path = Path(args.output)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(report)
            print(f"wrote {path}")
        else:
            print(report, end="")
        return 0

    return _campaign_command(args, body)


def _cmd_campaign_gc(args: argparse.Namespace) -> int:
    def body(spec: CampaignSpec, store: RunStore) -> int:
        removed = campaign_gc(spec, store, dry_run=args.dry_run)
        verb = "would remove" if args.dry_run else "removed"
        for key in removed:
            print(f"{verb} {key}")
        print(f"campaign '{spec.name}' gc: {verb} {len(removed)} artifact(s) "
              f"from {args.store}")
        return 0

    return _campaign_command(args, body)


# ---------------------------------------------------------------------------
# Store commands
# ---------------------------------------------------------------------------


def _cmd_store_verify(args: argparse.Namespace) -> int:
    """Re-verify every stored artifact's embedded integrity hashes.

    Walks the store's ``objects/`` tree and re-reads each artifact through
    the verified path, so bit-rot, truncation or tampering anywhere in the
    payload surfaces as a per-key diagnostic and exit code 2.  With
    ``--budget`` it additionally reports size usage and previews which
    artifacts a least-recently-used eviction would drop — report only,
    nothing is deleted (groundwork for a future size-capped store).
    """
    if args.budget is not None and args.budget <= 0:
        return _command_error("store verify: --budget must be a positive byte count")
    entries = []  # (key, size_bytes, mtime_ns, error_or_None)
    try:
        store = RunStore(args.store)
        for key in store.keys():
            stat = store.object_path(key).stat()
            error = None
            try:
                store.get_artifact(key)
            except StoreIntegrityError as exc:
                error = str(exc)
            entries.append((key, stat.st_size, stat.st_mtime_ns, error))
    except (StoreError, OSError) as exc:
        return _command_error(f"store verify failed: {exc}")
    corrupt = [(key, error) for key, _, _, error in entries if error]
    for key, error in corrupt:
        print(f"corrupt {key}: {error}", file=sys.stderr)
    total_bytes = sum(size for _, size, _, _ in entries)
    print(
        f"store '{args.store}': artifacts={len(entries)} "
        f"ok={len(entries) - len(corrupt)} corrupt={len(corrupt)} bytes={total_bytes}"
    )
    if args.budget is not None:
        print(f"budget: {total_bytes}/{args.budget} bytes "
              f"({100.0 * total_bytes / args.budget:.1f}% used)")
        if total_bytes > args.budget:
            excess = total_bytes - args.budget
            # Preview via the exact selection 'store gc --budget' would make:
            # same (mtime, key) LRU order, same stop condition.
            sizes = {key: size for key, size, _, _ in entries}
            try:
                victims = store.gc_budget(args.budget, dry_run=True)
            except (StoreError, OSError) as exc:
                return _command_error(f"store verify failed: {exc}")
            freed = sum(sizes.get(key, 0) for key in victims)
            print(f"over budget by {excess} bytes; 'store gc --budget "
                  f"{args.budget}' would evict {len(victims)} artifact(s) "
                  f"freeing {freed} bytes:")
            for key in victims:
                print(f"  evict {key} ({sizes.get(key, 0)} bytes)")
    return 2 if corrupt else 0


def _cmd_store_gc(args: argparse.Namespace) -> int:
    """Evict least-recently-used artifacts until the store fits ``--budget``.

    The destructive counterpart of the ``store verify --budget`` preview:
    both rank artifacts by the same deterministic ``(mtime, key)`` LRU order
    (:meth:`RunStore.lru_entries`), so the preview names exactly the keys
    this sweep deletes.  ``--dry-run`` lists the victims without touching
    the store.
    """
    if args.budget < 0:
        return _command_error("store gc: --budget must be a non-negative byte count")
    try:
        store = RunStore(args.store)
        sizes = {key: size for key, size, _ in store.lru_entries()}
        victims = store.gc_budget(args.budget, dry_run=args.dry_run)
    except (StoreError, OSError) as exc:
        return _command_error(f"store gc failed: {exc}")
    verb = "would evict" if args.dry_run else "evicted"
    freed = 0
    for key in victims:
        size = sizes.get(key, 0)
        freed += size
        print(f"{verb} {key} ({size} bytes)")
    print(f"store '{args.store}' gc: {verb} {len(victims)} artifact(s) "
          f"freeing {freed} bytes against budget {args.budget}")
    return 0


# ---------------------------------------------------------------------------
# Trace commands
# ---------------------------------------------------------------------------


def _cmd_trace_export(args: argparse.Namespace) -> int:
    """Convert a telemetry JSONL file into a Chrome trace-event document.

    The output loads directly in ``chrome://tracing`` or Perfetto's legacy
    JSON importer: series samples become counter tracks, probe and fault
    events become instants, and counters/diagnostics ride along under
    ``otherData``.
    """
    try:
        text = Path(args.input).read_text(encoding="utf-8")
    except OSError as exc:
        return _command_error(f"trace export failed: {exc}")
    records = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            return _command_error(f"trace export failed: {args.input}:{number}: {exc}")
    try:
        document = chrome_trace_document(records)
    except (KeyError, TypeError, ValueError) as exc:
        return _command_error(
            f"trace export failed: {args.input} is not a telemetry JSONL file ({exc})")
    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(dumps_deterministic(document, indent=2))
    print(f"wrote {output} ({len(document['traceEvents'])} trace event(s))")
    return 0


# ---------------------------------------------------------------------------
# Lint command
# ---------------------------------------------------------------------------


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the AST-based invariant linter (see :mod:`repro.analysis.lint`)."""
    try:
        return run_lint_command(args)
    except LintUsageError as exc:
        return _command_error(f"lint failed: {exc}")


# ---------------------------------------------------------------------------
# Argument parsing
# ---------------------------------------------------------------------------


#: Parse-time ``--workers`` validation, shared with the examples.
_workers_count = workers_argument_type


def _add_fidelity_argument(parser: argparse.ArgumentParser) -> None:
    """The ``--fidelity`` tier knob (None = config default, packet)."""
    parser.add_argument("--fidelity", choices=FIDELITIES, default=None,
                        help="simulation fidelity tier: packet = per-segment "
                             "engine, flow = fluid bandwidth sharing for ~100x "
                             "flow scale (default: packet)")


def _add_transport_matrix_arguments(parser: argparse.ArgumentParser) -> None:
    """``--scheduler`` / ``--path-manager`` / ``--fidelity`` knobs (None = config default)."""
    parser.add_argument("--scheduler", choices=scheduler_names(), default=None,
                        help="MPTCP chunk scheduler (default: fcfs)")
    parser.add_argument("--path-manager", choices=path_manager_names(), default=None,
                        help="MPTCP subflow creation policy (default: ndiffports)")
    _add_fidelity_argument(parser)


def _add_probe_arguments(parser: argparse.ArgumentParser) -> None:
    """``--probes`` / ``--profile``: the observability opt-ins (default off)."""
    parser.add_argument("--probes", nargs="+", metavar="GROUP", default=None,
                        choices=(ALL_GROUPS,) + PROBE_GROUPS,
                        help="record telemetry probe groups ('all' or any of: "
                             + ", ".join(PROBE_GROUPS) + "); metrics, goldens "
                             "and store keys are unchanged either way")
    parser.add_argument("--profile", action="store_true",
                        help="profile the event loop; the diagnostics record is "
                             "wall-clock-bearing and excluded from store keys "
                             "and byte-compare surfaces")


def _add_common_arguments(parser: argparse.ArgumentParser, workers: bool = False) -> None:
    parser.add_argument("--scale", choices=SCALES, default="quick",
                        help="experiment scale (quick/large/paper)")
    parser.add_argument("--seed", type=int, default=20150817, help="random seed")
    parser.add_argument("--subflows", type=int, default=8, help="MPTCP/MMPTCP subflow count")
    parser.add_argument("--export-dir", default=None,
                        help="directory for CSV/JSON exports (omit to skip)")
    if workers:
        # Only the sub-commands that actually fan points out accept the
        # flag; accepting-and-ignoring it elsewhere would mislead.
        parser.add_argument("--workers", type=_workers_count, default=1,
                            help="process-pool size (1 = serial, 0 = one per "
                                 "CPU; results are identical for any value)")


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-mmptcp",
        description="MMPTCP reproduction: run experiments and regenerate the paper's results",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one experiment")
    _add_common_arguments(run_parser)
    run_parser.add_argument("--protocol", choices=ALL_PROTOCOLS, default=PROTOCOL_MMPTCP)
    run_parser.add_argument("--k", type=int, default=None, help="FatTree arity")
    run_parser.add_argument("--hosts-per-edge", type=int, default=None)
    run_parser.add_argument("--link-mbps", type=float, default=None)
    run_parser.add_argument("--max-short-flows", type=int, default=None)
    run_parser.add_argument("--arrival-rate", type=float, default=None,
                            help="short flows per second per sender")
    run_parser.add_argument("--topology", choices=("fattree", "dualhomed", "vl2"), default=None)
    run_parser.add_argument("--queue", choices=("droptail", "ecn", "shared"), default=None)
    run_parser.add_argument("--switching",
                            choices=("data_volume", "congestion_event", "hybrid", "never"),
                            default=None)
    _add_transport_matrix_arguments(run_parser)
    _add_probe_arguments(run_parser)
    run_parser.add_argument("--telemetry-out", default=None, metavar="FILE",
                            help="write the run's telemetry JSONL here "
                                 "(needs --probes and/or --profile)")
    run_parser.set_defaults(handler=_cmd_run)

    fig1a = subparsers.add_parser("figure1a", help="regenerate Figure 1(a)")
    _add_common_arguments(fig1a, workers=True)
    fig1a.add_argument("--subflow-counts", type=int, nargs="+", default=[1, 2, 4, 8])
    fig1a.set_defaults(handler=_cmd_figure1a)

    fig1b = subparsers.add_parser("figure1b", help="regenerate Figure 1(b)")
    _add_common_arguments(fig1b)
    fig1b.set_defaults(handler=lambda args: _cmd_figure1bc(args, "b"))

    fig1c = subparsers.add_parser("figure1c", help="regenerate Figure 1(c)")
    _add_common_arguments(fig1c)
    fig1c.set_defaults(handler=lambda args: _cmd_figure1bc(args, "c"))

    section3 = subparsers.add_parser("section3", help="regenerate the Section 3 statistics")
    _add_common_arguments(section3)
    section3.set_defaults(handler=_cmd_section3)

    loadsweep = subparsers.add_parser("loadsweep", help="sweep the offered load")
    _add_common_arguments(loadsweep, workers=True)
    loadsweep.add_argument("--factors", type=float, nargs="+", default=[0.5, 1.0, 1.5, 2.0])
    loadsweep.add_argument("--protocols", nargs="+", default=[PROTOCOL_MPTCP, PROTOCOL_MMPTCP],
                           choices=ALL_PROTOCOLS)
    _add_fidelity_argument(loadsweep)
    loadsweep.set_defaults(handler=_cmd_loadsweep)

    coexistence = subparsers.add_parser("coexistence",
                                        help="run TCP, MPTCP and MMPTCP on a shared fabric")
    _add_common_arguments(coexistence)
    coexistence.add_argument("--protocols", nargs="+",
                             default=["tcp", "mptcp", "mmptcp"], choices=ALL_PROTOCOLS)
    coexistence.set_defaults(handler=_cmd_coexistence)

    hotspot = subparsers.add_parser("hotspot", help="run the hotspot-skew comparison")
    _add_common_arguments(hotspot)
    hotspot.add_argument("--protocols", nargs="+", default=[PROTOCOL_MPTCP, PROTOCOL_MMPTCP],
                         choices=ALL_PROTOCOLS)
    hotspot.add_argument("--hotspot-fraction", type=float, default=0.125)
    hotspot.add_argument("--load-fraction", type=float, default=0.5)
    hotspot.set_defaults(handler=_cmd_hotspot)

    incast = subparsers.add_parser("incast", help="run synchronised fan-in (incast) sweeps")
    _add_common_arguments(incast, workers=True)
    incast.add_argument("--fan-ins", type=int, nargs="+", default=[8, 16, 32])
    incast.add_argument("--protocols", nargs="+", default=["tcp", "mptcp", "mmptcp"],
                        choices=ALL_PROTOCOLS)
    incast.add_argument("--response-kb", type=int, default=70,
                        help="size of each incast response in kB")
    incast.add_argument("--topologies", nargs="+", default=["fattree"],
                        choices=("fattree", "dualhomed", "vl2"))
    _add_fidelity_argument(incast)
    incast.set_defaults(handler=_cmd_incast)

    deadlines = subparsers.add_parser("deadlines", help="run the deadline-miss study")
    _add_common_arguments(deadlines)
    deadlines.add_argument("--slack", type=float, default=2.0,
                           help="deadline slack factor over the ideal transfer time")
    deadlines.add_argument("--protocols", nargs="+",
                           default=["tcp", "dctcp", "d2tcp", "mptcp", "mmptcp"],
                           choices=ALL_PROTOCOLS)
    deadlines.set_defaults(handler=_cmd_deadlines)

    scenarios = subparsers.add_parser(
        "scenarios", help="declarative fault-injection scenarios and matrices")
    scenario_sub = scenarios.add_subparsers(dest="scenario_command", required=True)

    scen_list = scenario_sub.add_parser("list", help="list the registered scenarios")
    scen_list.set_defaults(handler=_cmd_scenarios_list)

    def _add_scenario_arguments(sub: argparse.ArgumentParser, workers: bool = False) -> None:
        sub.add_argument("--scale", choices=SCENARIO_SCALES, default="tiny",
                         help="experiment scale (tiny/quick/large/paper)")
        sub.add_argument("--seed", type=int, default=20150817, help="random seed")
        sub.add_argument("--export-dir", default=None,
                         help="directory for CSV/JSON exports (omit to skip)")
        _add_transport_matrix_arguments(sub)
        if workers:
            sub.add_argument("--workers", type=_workers_count, default=1,
                             help="process-pool size (1 = serial, 0 = one per "
                                  "CPU; results are identical for any value)")

    scen_run = scenario_sub.add_parser("run", help="run one scenario for one transport")
    scen_run.add_argument("name", help="registered scenario name (see 'scenarios list')")
    scen_run.add_argument("--protocol", choices=ALL_PROTOCOLS, default=PROTOCOL_MMPTCP)
    _add_scenario_arguments(scen_run)
    scen_run.set_defaults(handler=_cmd_scenarios_run)

    scen_matrix = scenario_sub.add_parser(
        "matrix", help="run a scenario × transport matrix (parallelisable)")
    scen_matrix.add_argument("--scenarios", nargs="+", default=list(DEFAULT_MATRIX_SCENARIOS),
                             help="scenario names (default: baseline core-link-failure)")
    scen_matrix.add_argument("--transports", nargs="+",
                             default=list(DEFAULT_MATRIX_PROTOCOLS), choices=ALL_PROTOCOLS)
    scen_matrix.add_argument("--baseline-protocol", default="tcp", choices=ALL_PROTOCOLS,
                             help="protocol the delta columns compare against")
    _add_scenario_arguments(scen_matrix, workers=True)
    _add_probe_arguments(scen_matrix)
    scen_matrix.add_argument("--telemetry-dir", default=None, metavar="DIR",
                             help="write one telemetry JSONL per cell here "
                                  "(needs --probes and/or --profile)")
    scen_matrix.set_defaults(handler=_cmd_scenarios_matrix)

    lint = subparsers.add_parser(
        "lint",
        help="statically enforce the determinism/JSON/pool/store/timer invariants",
        description="AST-based invariant linter; exits 0 on a clean tree, 1 on "
        "violations, 2 on usage errors. Silence a finding with a justified "
        "'# repro: allow[rule-name]' comment on (or directly above) its line.",
    )
    add_lint_arguments(lint)
    lint.set_defaults(handler=_cmd_lint)

    store_parser = subparsers.add_parser(
        "store", help="inspect and verify a content-addressed run store")
    store_sub = store_parser.add_subparsers(dest="store_command", required=True)

    store_verify = store_sub.add_parser(
        "verify",
        help="re-verify every artifact's integrity hashes (exit 2 on corruption)")
    store_verify.add_argument("--store", required=True,
                              help="run-store directory to verify")
    store_verify.add_argument("--budget", type=int, default=None, metavar="BYTES",
                              help="also report size usage against a byte budget "
                                   "and preview an LRU eviction (nothing is deleted)")
    store_verify.set_defaults(handler=_cmd_store_verify)

    store_gc = store_sub.add_parser(
        "gc",
        help="evict least-recently-used artifacts until the store fits a byte budget")
    store_gc.add_argument("--store", required=True,
                          help="run-store directory to sweep")
    store_gc.add_argument("--budget", type=int, required=True, metavar="BYTES",
                          help="target store size; oldest-touched artifacts are "
                               "evicted in deterministic (mtime, key) order "
                               "until the rest fits")
    store_gc.add_argument("--dry-run", action="store_true",
                          help="list the eviction victims without deleting them")
    store_gc.set_defaults(handler=_cmd_store_gc)

    trace_parser = subparsers.add_parser(
        "trace", help="telemetry timeline tools")
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)

    trace_export = trace_sub.add_parser(
        "export",
        help="convert telemetry JSONL into Chrome trace-event / Perfetto JSON")
    trace_export.add_argument("input",
                              help="telemetry JSONL file (from --telemetry-out "
                                   "or --telemetry-dir)")
    trace_export.add_argument("--output", required=True,
                              help="destination timeline JSON (open in "
                                   "chrome://tracing or ui.perfetto.dev)")
    trace_export.set_defaults(handler=_cmd_trace_export)

    campaign = subparsers.add_parser(
        "campaign",
        help="resumable, store-backed campaigns (scenario × transport × sweep × replication)")
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    def _add_campaign_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--store", required=True,
                         help="run-store directory (created on first use)")
        sub.add_argument("--spec", default=None,
                         help="campaign spec JSON file (overrides the grid flags)")
        sub.add_argument("--name", default="cli",
                         help="campaign name when no --spec file is given")
        sub.add_argument("--scenarios", nargs="+", default=list(DEFAULT_MATRIX_SCENARIOS),
                         help="scenario names (default: baseline core-link-failure)")
        sub.add_argument("--transports", nargs="+",
                         default=list(DEFAULT_MATRIX_PROTOCOLS), choices=ALL_PROTOCOLS)
        sub.add_argument("--replications", type=int, default=1,
                         help="seeded replications per cell (default 1)")
        sub.add_argument("--scale", choices=SCENARIO_SCALES, default="tiny",
                         help="experiment scale (tiny/quick/large/paper)")
        sub.add_argument("--seed", type=int, default=20150817, help="campaign root seed")
        sub.add_argument("--schedulers", nargs="+", choices=scheduler_names(), default=None,
                         help="sweep axis over MPTCP chunk schedulers (omit for "
                              "the config default, fcfs)")
        sub.add_argument("--path-managers", nargs="+", choices=path_manager_names(),
                         default=None,
                         help="sweep axis over MPTCP path managers (omit for "
                              "the config default, ndiffports)")
        sub.add_argument("--fidelities", nargs="+", choices=FIDELITIES, default=None,
                         help="sweep axis over simulation fidelity tiers (omit "
                              "for the config default, packet)")
        sub.add_argument("--baseline-protocol", default="tcp", choices=ALL_PROTOCOLS,
                         help="protocol the report's delta table compares against")

    camp_run = campaign_sub.add_parser(
        "run", help="run the campaign with cache-aware dispatch (hits skip simulation)")
    _add_campaign_arguments(camp_run)
    camp_run.add_argument("--workers", type=_workers_count, default=1,
                          help="process-pool size for cache misses (1 = serial, "
                               "0 = one per CPU; results are identical for any value)")
    camp_run.add_argument("--report", default=None,
                          help="also write the markdown report to this file")
    camp_run.add_argument("--export-dir", default=None,
                          help="directory for the per-cell CSV export (omit to skip)")
    camp_run.add_argument("--progress-events", default=None, metavar="FILE",
                          help="write structured JSONL progress events "
                               "(campaign_start, cell_hit, cell_start, "
                               "cell_finish, campaign_finish) to this file; "
                               "operator telemetry in completion order, never "
                               "a byte-compare surface")
    camp_run.set_defaults(handler=_cmd_campaign_run)

    camp_status = campaign_sub.add_parser(
        "status", help="show which cells are persisted, without running anything")
    _add_campaign_arguments(camp_status)
    camp_status.add_argument("--summary", action="store_true",
                             help="aggregate to one row per (scenario, protocol) "
                                  "with stored/missing counts instead of per cell")
    camp_status.set_defaults(handler=_cmd_campaign_status)

    camp_report = campaign_sub.add_parser(
        "report", help="regenerate the report from stored artifacts (zero simulation)")
    _add_campaign_arguments(camp_report)
    camp_report.add_argument("--output", default=None,
                             help="write the markdown report here (default: stdout)")
    camp_report.set_defaults(handler=_cmd_campaign_report)

    camp_gc = campaign_sub.add_parser(
        "gc", help="drop this campaign's stored artifacts that the spec no longer "
                   "declares (other campaigns in the store are untouched)")
    _add_campaign_arguments(camp_gc)
    camp_gc.add_argument("--dry-run", action="store_true",
                         help="list removable artifacts without deleting them")
    camp_gc.set_defaults(handler=_cmd_campaign_gc)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by the ``repro-mmptcp`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
