"""k-ary FatTree topology (Al-Fares et al., SIGCOMM 2008).

The paper evaluates MMPTCP on a 512-server FatTree with a 4:1
over-subscription ratio.  A canonical k-ary FatTree has:

* ``k`` pods, each with ``k/2`` edge switches and ``k/2`` aggregation switches,
* ``(k/2)^2`` core switches,
* ``k/2`` hosts per edge switch (full bisection bandwidth).

Over-subscription is introduced the same way the authors do it: attach more
hosts per edge switch than the edge switch has uplinks.  With ``k = 8`` and
16 hosts per edge switch the fabric has 512 servers at 4:1 — the paper's
configuration.  The scaled-down defaults used by the benchmarks keep the 4:1
ratio but shrink ``k`` so a pure-Python run finishes in minutes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.address import encode_fattree_address
from repro.net.host import Host
from repro.net.link import QueueFactory
from repro.net.switch import LAYER_AGGREGATION, LAYER_CORE, LAYER_EDGE
from repro.sim.engine import Simulator
from repro.sim.tracing import NULL_SINK, TraceSink
from repro.topology.base import DEFAULT_LINK_DELAY_S, DEFAULT_LINK_RATE_BPS, Topology


@dataclass(frozen=True)
class FatTreeParams:
    """Configuration of a (possibly over-subscribed) k-ary FatTree.

    Attributes:
        k: FatTree arity; must be even and >= 2.
        hosts_per_edge: servers attached to each edge switch.  ``None`` means
            the canonical ``k/2`` (1:1 subscription).  Setting it to
            ``(k/2) * r`` yields an ``r``:1 over-subscription ratio.
        link_rate_bps: capacity of every link in the fabric (the host/edge and
            edge/aggregation default).
        core_oversubscription: divides the aggregation↔core link rate, so a
            value of 2.0 gives the core layer half the capacity of the layers
            below it (a 2:1 core:agg over-subscription) without changing the
            wiring or the shortest-path structure.
        core_link_rate_bps: explicit aggregation↔core link rate; overrides
            ``core_oversubscription`` when set.  Together these two knobs
            express asymmetric fabrics with heterogeneous link speeds.
        host_link_rate_bps: explicit host↔edge link rate (``None`` = the
            fabric-wide ``link_rate_bps``).
        link_delay_s: per-hop propagation delay.
    """

    k: int = 4
    hosts_per_edge: Optional[int] = None
    link_rate_bps: float = DEFAULT_LINK_RATE_BPS
    core_oversubscription: float = 1.0
    core_link_rate_bps: Optional[float] = None
    host_link_rate_bps: Optional[float] = None
    link_delay_s: float = DEFAULT_LINK_DELAY_S

    def __post_init__(self) -> None:
        if self.k < 2 or self.k % 2 != 0:
            raise ValueError(f"FatTree arity k must be an even integer >= 2, got {self.k}")
        if self.hosts_per_edge is not None and self.hosts_per_edge < 1:
            raise ValueError("hosts_per_edge must be at least 1")
        if self.core_oversubscription <= 0:
            raise ValueError("core_oversubscription must be positive")
        if self.core_link_rate_bps is not None and self.core_link_rate_bps <= 0:
            raise ValueError("core_link_rate_bps must be positive")
        if self.host_link_rate_bps is not None and self.host_link_rate_bps <= 0:
            raise ValueError("host_link_rate_bps must be positive")

    @property
    def effective_hosts_per_edge(self) -> int:
        """Hosts attached to each edge switch after applying the default."""
        return self.hosts_per_edge if self.hosts_per_edge is not None else self.k // 2

    @property
    def effective_core_rate_bps(self) -> float:
        """The aggregation↔core link rate after over-subscription/overrides."""
        if self.core_link_rate_bps is not None:
            return self.core_link_rate_bps
        return self.link_rate_bps / self.core_oversubscription

    @property
    def effective_host_rate_bps(self) -> float:
        """The host↔edge link rate."""
        if self.host_link_rate_bps is not None:
            return self.host_link_rate_bps
        return self.link_rate_bps

    @property
    def num_pods(self) -> int:
        """Number of pods (= k)."""
        return self.k

    @property
    def edge_per_pod(self) -> int:
        """Edge switches per pod (= k/2)."""
        return self.k // 2

    @property
    def agg_per_pod(self) -> int:
        """Aggregation switches per pod (= k/2)."""
        return self.k // 2

    @property
    def num_core(self) -> int:
        """Core switches (= (k/2)^2)."""
        return (self.k // 2) ** 2

    @property
    def num_hosts(self) -> int:
        """Total servers in the fabric."""
        return self.num_pods * self.edge_per_pod * self.effective_hosts_per_edge

    @property
    def oversubscription_ratio(self) -> float:
        """Ratio of host-facing to core-facing capacity at the edge layer."""
        return self.effective_hosts_per_edge / (self.k / 2)

    @property
    def inter_pod_path_count(self) -> int:
        """Equal-cost paths between hosts in different pods (= (k/2)^2)."""
        return self.num_core

    @property
    def intra_pod_path_count(self) -> int:
        """Equal-cost paths between hosts under different edge switches of one pod."""
        return self.k // 2


class FatTreeTopology(Topology):
    """A fully wired, routed k-ary FatTree."""

    def __init__(
        self,
        simulator: Simulator,
        params: FatTreeParams = FatTreeParams(),
        queue_factory: Optional[QueueFactory] = None,
        trace: TraceSink = NULL_SINK,
    ) -> None:
        super().__init__(simulator, trace)
        self.params = params
        self.default_queue_factory = queue_factory
        half_k = params.k // 2

        # Core layer -----------------------------------------------------
        core_switches = [
            self.add_switch(f"core-{index}", LAYER_CORE) for index in range(params.num_core)
        ]

        # Pods -------------------------------------------------------------
        for pod in range(params.num_pods):
            aggregation_switches = [
                self.add_switch(f"agg-{pod}-{index}", LAYER_AGGREGATION)
                for index in range(params.agg_per_pod)
            ]
            edge_switches = [
                self.add_switch(f"edge-{pod}-{index}", LAYER_EDGE)
                for index in range(params.edge_per_pod)
            ]

            # Aggregation <-> core: aggregation switch i of every pod connects
            # to core group i (cores i*k/2 ... i*k/2 + k/2 - 1).
            for agg_index, aggregation in enumerate(aggregation_switches):
                for offset in range(half_k):
                    core = core_switches[agg_index * half_k + offset]
                    self.connect_nodes(
                        aggregation,
                        core,
                        params.effective_core_rate_bps,
                        params.link_delay_s,
                        queue_factory,
                    )

            # Edge <-> aggregation: full bipartite within the pod.
            for edge in edge_switches:
                for aggregation in aggregation_switches:
                    self.connect_nodes(
                        edge,
                        aggregation,
                        params.link_rate_bps,
                        params.link_delay_s,
                        queue_factory,
                    )

            # Hosts.
            for edge_index, edge in enumerate(edge_switches):
                for host_index in range(params.effective_hosts_per_edge):
                    address = encode_fattree_address(pod, edge_index, host_index)
                    host = self.add_host(f"host-{pod}-{edge_index}-{host_index}", address)
                    self.connect_nodes(
                        host,
                        edge,
                        params.effective_host_rate_bps,
                        params.link_delay_s,
                        queue_factory,
                    )

        self.build_routes()

    # ------------------------------------------------------------------

    def expected_path_count(self, host_a: Host, host_b: Host) -> int:
        """Paths between two hosts derived purely from their structured addresses.

        This is the topology-specific shortcut the paper proposes: FatTree's
        addressing scheme reveals whether two hosts share an edge switch, a
        pod, or neither, and hence how many equal-cost paths separate them —
        without querying any central component.
        """
        address_a, address_b = host_a.address, host_b.address
        if address_a == address_b:
            return 1
        if (address_a >> 10) == (address_b >> 10):  # same pod and edge switch
            return 1
        if (address_a >> 20) == (address_b >> 20):  # same pod, different edge
            return self.params.intra_pod_path_count
        return self.params.inter_pod_path_count
