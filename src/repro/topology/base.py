"""Topology construction framework.

A :class:`Topology` owns the simulator's node objects (hosts and switches),
the connectivity graph used for route computation, and convenience lookups.
Concrete topologies (FatTree, VL2, ...) subclass it and populate the fabric
in their constructor, then call :meth:`build_routes` once wiring is complete.
"""

from __future__ import annotations

from typing import Dict, Optional

import networkx as nx

from repro.net.host import Host
from repro.net.link import Interface, QueueFactory, connect
from repro.net.monitor import NetworkMonitor
from repro.net.node import Node
from repro.net.routing import build_ecmp_routes, count_equal_cost_paths
from repro.net.switch import Switch
from repro.sim.engine import Simulator
from repro.sim.tracing import NULL_SINK, TraceSink
from repro.sim.units import gigabits_per_second, microseconds


class Topology:
    """Base class for all network fabrics."""

    def __init__(self, simulator: Simulator, trace: TraceSink = NULL_SINK) -> None:
        self.simulator = simulator
        self.trace = trace
        self.graph = nx.Graph()
        self.hosts: list[Host] = []
        self.switches: list[Switch] = []
        self._nodes_by_name: Dict[str, Node] = {}
        self._hosts_by_address: Dict[int, Host] = {}
        self._routes_built = False
        #: Queue factory reused for links created after construction
        #: (host re-attachment); concrete topologies record theirs.
        self.default_queue_factory: Optional[QueueFactory] = None
        #: Forward map of re-addressed hosts: old address -> current address.
        #: Chains are squashed, so any historical address resolves in one hop.
        self._address_changes: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def add_host(self, name: str, address: int) -> Host:
        """Create a host, register it in the graph and return it."""
        if name in self._nodes_by_name:
            raise ValueError(f"duplicate node name {name!r}")
        if address in self._hosts_by_address:
            raise ValueError(f"duplicate host address {address!r}")
        host = Host(self.simulator, name, address, trace=self.trace)
        self.hosts.append(host)
        self._nodes_by_name[name] = host
        self._hosts_by_address[address] = host
        self.graph.add_node(name, kind="host")
        return host

    def add_switch(self, name: str, layer: str) -> Switch:
        """Create a switch (ECMP salt derived from its creation order) and return it."""
        if name in self._nodes_by_name:
            raise ValueError(f"duplicate node name {name!r}")
        switch = Switch(
            self.simulator, name, layer=layer, ecmp_salt=len(self.switches) + 1, trace=self.trace
        )
        self.switches.append(switch)
        self._nodes_by_name[name] = switch
        self.graph.add_node(name, kind="switch", layer=layer)
        return switch

    def connect_nodes(
        self,
        node_a: Node,
        node_b: Node,
        rate_bps: float,
        delay_s: float,
        queue_factory: Optional[QueueFactory] = None,
    ) -> tuple[Interface, Interface]:
        """Wire a full-duplex link between two already-registered nodes."""
        interfaces = connect(self.simulator, node_a, node_b, rate_bps, delay_s, queue_factory)
        self.graph.add_edge(node_a.name, node_b.name)
        return interfaces

    def build_routes(self) -> None:
        """Compute and install ECMP forwarding tables on every switch."""
        build_ecmp_routes(self.graph, self.hosts, self.switches)
        self._routes_built = True

    def rebuild_routes(self) -> None:
        """Recompute forwarding tables after the graph changed (fault injection).

        Unlike the initial :meth:`build_routes`, destinations that became
        unreachable are tolerated: their routes are removed and packets for
        them count as unroutable at the switches.
        """
        build_ecmp_routes(self.graph, self.hosts, self.switches, allow_partial=True)

    # ------------------------------------------------------------------
    # Host migration
    # ------------------------------------------------------------------

    def detach_host(self, name: str, *, rebuild: bool = True) -> None:
        """Take ``name`` off the fabric (the first half of a migration).

        Every live link to the host goes administratively down in both
        directions, parked queue contents are purged (a detached host's
        packets are gone for good, on both sides of the cable), and the
        connectivity graph loses the edges.  The host's interfaces are *not*
        removed — interface indices are referenced by switch forwarding
        tables and pinned subflows, so dead interfaces stay in place, marked
        down.  Detaching an already-detached host is a no-op.
        """
        host = self._nodes_by_name.get(name)
        if not isinstance(host, Host):
            raise ValueError(f"unknown host {name!r}")
        for interface in host.interfaces:
            peer = interface.peer
            peer_interface = interface.peer_interface
            if peer is None or peer_interface is None:
                continue
            interface.set_up(False)
            peer_interface.set_up(False)
            interface.purge_queue()
            peer_interface.purge_queue()
            if self.graph.has_edge(name, peer.name):
                self.graph.remove_edge(name, peer.name)
        if rebuild:
            self.rebuild_routes()

    def attach_host(
        self,
        name: str,
        switch_name: str,
        *,
        new_address: Optional[int] = None,
        rate_bps: Optional[float] = None,
        delay_s: Optional[float] = None,
    ) -> tuple[Interface, Interface]:
        """Attach ``name`` to ``switch_name`` (the second half of a migration).

        A fresh full-duplex link is created (defaulting to the host's first
        interface's rate/delay and the topology's queue factory), the host is
        optionally re-addressed, and the ECMP tables are rebuilt so the
        fabric routes to the new attachment point.  Re-addressing removes the
        old address's stale forwarding entries — packets still in flight to
        it count as unroutable, exactly like a destination lost to a
        partition — and records the old→new mapping for
        :meth:`current_address_of`.
        """
        host = self._nodes_by_name.get(name)
        if not isinstance(host, Host):
            raise ValueError(f"unknown host {name!r}")
        switch = self._nodes_by_name.get(switch_name)
        if not isinstance(switch, Switch):
            raise ValueError(f"unknown switch {switch_name!r}")
        if not host.interfaces:
            raise ValueError(f"host {name!r} has no interface to take link defaults from")
        reference = host.interfaces[0]
        rate = rate_bps if rate_bps is not None else reference.rate_bps
        delay = delay_s if delay_s is not None else reference.delay_s
        interfaces = self.connect_nodes(host, switch, rate, delay, self.default_queue_factory)
        if new_address is not None and new_address != host.address:
            self._readdress_host(host, new_address)
        self.rebuild_routes()
        return interfaces

    def migrate_host(
        self,
        name: str,
        switch_name: str,
        *,
        new_address: Optional[int] = None,
        rate_bps: Optional[float] = None,
        delay_s: Optional[float] = None,
    ) -> tuple[Interface, Interface]:
        """Re-home ``name`` onto ``switch_name`` in one step (zero downtime).

        Equivalent to :meth:`detach_host` immediately followed by
        :meth:`attach_host`; the intermediate route rebuild is skipped so the
        fabric converges once, on the post-migration graph.
        """
        self.detach_host(name, rebuild=False)
        return self.attach_host(
            name,
            switch_name,
            new_address=new_address,
            rate_bps=rate_bps,
            delay_s=delay_s,
        )

    def _readdress_host(self, host: Host, new_address: int) -> None:
        owner = self._hosts_by_address.get(new_address)
        if owner is not None and owner is not host:
            raise ValueError(
                f"address {new_address} is already owned by host {owner.name!r}"
            )
        old_address = host.address
        del self._hosts_by_address[old_address]
        self._hosts_by_address[new_address] = host
        host.address = new_address
        # A route rebuild only writes entries for *current* addresses; the
        # old address's entries must be dropped explicitly or switches would
        # keep forwarding to the abandoned attachment point forever.
        for switch in self.switches:
            switch.remove_route(old_address)
        for known_old, known_new in list(self._address_changes.items()):
            if known_new == old_address:
                self._address_changes[known_old] = new_address
        self._address_changes[old_address] = new_address
        # Migrating back to a previously-held address must not leave a cycle.
        self._address_changes.pop(new_address, None)

    def current_address_of(self, address: int) -> int:
        """Resolve a possibly-stale host address to the host's current one.

        Transports use this as their *address resolver*: it models the
        control-plane lookup (DNS / service registry) a real endpoint would
        perform when its peer stops answering.  Unmigrated addresses resolve
        to themselves.
        """
        return self._address_changes.get(address, address)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def node(self, name: str) -> Node:
        """Node object registered under ``name``."""
        return self._nodes_by_name[name]

    def host_by_address(self, address: int) -> Host:
        """Host object owning ``address``."""
        return self._hosts_by_address[address]

    def interfaces_between(self, name_a: str, name_b: str) -> tuple[Interface, Interface]:
        """The full-duplex interface pair of the ``name_a``–``name_b`` link.

        Returns ``(a_to_b, b_to_a)``.  Raises ``ValueError`` when the nodes
        are unknown or not directly connected — fault schedules that name a
        non-existent link should fail loudly.
        """
        node_a = self._nodes_by_name.get(name_a)
        node_b = self._nodes_by_name.get(name_b)
        if node_a is None or node_b is None:
            missing = name_a if node_a is None else name_b
            raise ValueError(f"unknown node {missing!r}")
        if name_b not in node_a.neighbor_to_interface or name_a not in node_b.neighbor_to_interface:
            raise ValueError(f"no link between {name_a!r} and {name_b!r}")
        return node_a.interface_to(name_b), node_b.interface_to(name_a)

    def switch_link_names(self) -> list[tuple[str, str]]:
        """All switch-to-switch links as sorted name pairs (fault-schedule targets)."""
        switch_names = {switch.name for switch in self.switches}
        return sorted(
            tuple(sorted((a, b)))
            for a, b in self.graph.edges()
            if a in switch_names and b in switch_names
        )

    def path_count(self, host_a: Host, host_b: Host) -> int:
        """Number of equal-cost shortest paths between two hosts."""
        return count_equal_cost_paths(self.graph, host_a.name, host_b.name)

    def monitor(self) -> NetworkMonitor:
        """A :class:`NetworkMonitor` covering every device in this topology."""
        return NetworkMonitor(self.hosts, self.switches)

    @property
    def routes_built(self) -> bool:
        """True once :meth:`build_routes` has run."""
        return self._routes_built

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({len(self.hosts)} hosts, "
            f"{len(self.switches)} switches, {self.graph.number_of_edges()} links)"
        )


#: Default link parameters shared by the data-centre topologies.  They mirror
#: the canonical values used by the DCTCP / MPTCP data-centre evaluations the
#: paper builds on: 1 Gbps edge links and tens of microseconds per hop.
DEFAULT_LINK_RATE_BPS = gigabits_per_second(1)
DEFAULT_LINK_DELAY_S = microseconds(20)
