"""Topology construction framework.

A :class:`Topology` owns the simulator's node objects (hosts and switches),
the connectivity graph used for route computation, and convenience lookups.
Concrete topologies (FatTree, VL2, ...) subclass it and populate the fabric
in their constructor, then call :meth:`build_routes` once wiring is complete.
"""

from __future__ import annotations

from typing import Dict, Optional

import networkx as nx

from repro.net.host import Host
from repro.net.link import Interface, QueueFactory, connect
from repro.net.monitor import NetworkMonitor
from repro.net.node import Node
from repro.net.routing import build_ecmp_routes, count_equal_cost_paths
from repro.net.switch import Switch
from repro.sim.engine import Simulator
from repro.sim.tracing import NULL_SINK, TraceSink
from repro.sim.units import gigabits_per_second, microseconds


class Topology:
    """Base class for all network fabrics."""

    def __init__(self, simulator: Simulator, trace: TraceSink = NULL_SINK) -> None:
        self.simulator = simulator
        self.trace = trace
        self.graph = nx.Graph()
        self.hosts: list[Host] = []
        self.switches: list[Switch] = []
        self._nodes_by_name: Dict[str, Node] = {}
        self._hosts_by_address: Dict[int, Host] = {}
        self._routes_built = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def add_host(self, name: str, address: int) -> Host:
        """Create a host, register it in the graph and return it."""
        if name in self._nodes_by_name:
            raise ValueError(f"duplicate node name {name!r}")
        if address in self._hosts_by_address:
            raise ValueError(f"duplicate host address {address!r}")
        host = Host(self.simulator, name, address, trace=self.trace)
        self.hosts.append(host)
        self._nodes_by_name[name] = host
        self._hosts_by_address[address] = host
        self.graph.add_node(name, kind="host")
        return host

    def add_switch(self, name: str, layer: str) -> Switch:
        """Create a switch (ECMP salt derived from its creation order) and return it."""
        if name in self._nodes_by_name:
            raise ValueError(f"duplicate node name {name!r}")
        switch = Switch(
            self.simulator, name, layer=layer, ecmp_salt=len(self.switches) + 1, trace=self.trace
        )
        self.switches.append(switch)
        self._nodes_by_name[name] = switch
        self.graph.add_node(name, kind="switch", layer=layer)
        return switch

    def connect_nodes(
        self,
        node_a: Node,
        node_b: Node,
        rate_bps: float,
        delay_s: float,
        queue_factory: Optional[QueueFactory] = None,
    ) -> tuple[Interface, Interface]:
        """Wire a full-duplex link between two already-registered nodes."""
        interfaces = connect(self.simulator, node_a, node_b, rate_bps, delay_s, queue_factory)
        self.graph.add_edge(node_a.name, node_b.name)
        return interfaces

    def build_routes(self) -> None:
        """Compute and install ECMP forwarding tables on every switch."""
        build_ecmp_routes(self.graph, self.hosts, self.switches)
        self._routes_built = True

    def rebuild_routes(self) -> None:
        """Recompute forwarding tables after the graph changed (fault injection).

        Unlike the initial :meth:`build_routes`, destinations that became
        unreachable are tolerated: their routes are removed and packets for
        them count as unroutable at the switches.
        """
        build_ecmp_routes(self.graph, self.hosts, self.switches, allow_partial=True)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def node(self, name: str) -> Node:
        """Node object registered under ``name``."""
        return self._nodes_by_name[name]

    def host_by_address(self, address: int) -> Host:
        """Host object owning ``address``."""
        return self._hosts_by_address[address]

    def interfaces_between(self, name_a: str, name_b: str) -> tuple[Interface, Interface]:
        """The full-duplex interface pair of the ``name_a``–``name_b`` link.

        Returns ``(a_to_b, b_to_a)``.  Raises ``ValueError`` when the nodes
        are unknown or not directly connected — fault schedules that name a
        non-existent link should fail loudly.
        """
        node_a = self._nodes_by_name.get(name_a)
        node_b = self._nodes_by_name.get(name_b)
        if node_a is None or node_b is None:
            missing = name_a if node_a is None else name_b
            raise ValueError(f"unknown node {missing!r}")
        if name_b not in node_a.neighbor_to_interface or name_a not in node_b.neighbor_to_interface:
            raise ValueError(f"no link between {name_a!r} and {name_b!r}")
        return node_a.interface_to(name_b), node_b.interface_to(name_a)

    def switch_link_names(self) -> list[tuple[str, str]]:
        """All switch-to-switch links as sorted name pairs (fault-schedule targets)."""
        switch_names = {switch.name for switch in self.switches}
        return sorted(
            tuple(sorted((a, b)))
            for a, b in self.graph.edges()
            if a in switch_names and b in switch_names
        )

    def path_count(self, host_a: Host, host_b: Host) -> int:
        """Number of equal-cost shortest paths between two hosts."""
        return count_equal_cost_paths(self.graph, host_a.name, host_b.name)

    def monitor(self) -> NetworkMonitor:
        """A :class:`NetworkMonitor` covering every device in this topology."""
        return NetworkMonitor(self.hosts, self.switches)

    @property
    def routes_built(self) -> bool:
        """True once :meth:`build_routes` has run."""
        return self._routes_built

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({len(self.hosts)} hosts, "
            f"{len(self.switches)} switches, {self.graph.number_of_edges()} links)"
        )


#: Default link parameters shared by the data-centre topologies.  They mirror
#: the canonical values used by the DCTCP / MPTCP data-centre evaluations the
#: paper builds on: 1 Gbps edge links and tens of microseconds per hop.
DEFAULT_LINK_RATE_BPS = gigabits_per_second(1)
DEFAULT_LINK_DELAY_S = microseconds(20)
