"""VL2 topology (Greenberg et al., SIGCOMM 2009).

VL2 is the second data-centre fabric the paper names.  It is a three-layer
Clos: Top-of-Rack (ToR) switches connect upwards to two aggregation switches,
and the aggregation layer forms a complete bipartite graph with the
intermediate (core) layer.  Valiant load balancing in the original system is
approximated here by hash-based ECMP over the many equal-cost paths, which is
how the MPTCP-in-datacentre literature (and this paper) treat VL2 as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.link import QueueFactory
from repro.net.switch import LAYER_AGGREGATION, LAYER_CORE, LAYER_EDGE
from repro.sim.engine import Simulator
from repro.sim.tracing import NULL_SINK, TraceSink
from repro.topology.base import DEFAULT_LINK_DELAY_S, DEFAULT_LINK_RATE_BPS, Topology


@dataclass(frozen=True)
class Vl2Params:
    """Configuration of a VL2 fabric.

    Attributes:
        num_tor: number of Top-of-Rack switches.
        num_aggregation: number of aggregation switches (each ToR connects to
            two of them, chosen round-robin).
        num_intermediate: number of intermediate (core) switches.
        hosts_per_tor: servers per rack.
        server_link_rate_bps: rate of the host-to-ToR links.
        fabric_link_rate_bps: rate of ToR-agg and agg-intermediate links
            (VL2 uses faster links in the fabric than to the servers).
        link_delay_s: per-hop propagation delay.
    """

    num_tor: int = 8
    num_aggregation: int = 4
    num_intermediate: int = 4
    hosts_per_tor: int = 8
    server_link_rate_bps: float = DEFAULT_LINK_RATE_BPS
    fabric_link_rate_bps: float = DEFAULT_LINK_RATE_BPS * 10
    link_delay_s: float = DEFAULT_LINK_DELAY_S

    def __post_init__(self) -> None:
        if self.num_tor < 1 or self.num_aggregation < 2 or self.num_intermediate < 1:
            raise ValueError("VL2 needs >=1 ToR, >=2 aggregation and >=1 intermediate switches")
        if self.hosts_per_tor < 1:
            raise ValueError("hosts_per_tor must be at least 1")

    @property
    def num_hosts(self) -> int:
        """Total servers in the fabric."""
        return self.num_tor * self.hosts_per_tor


class Vl2Topology(Topology):
    """A fully wired, routed VL2 Clos fabric."""

    def __init__(
        self,
        simulator: Simulator,
        params: Vl2Params = Vl2Params(),
        queue_factory: Optional[QueueFactory] = None,
        trace: TraceSink = NULL_SINK,
    ) -> None:
        super().__init__(simulator, trace)
        self.params = params
        self.default_queue_factory = queue_factory

        intermediate_switches = [
            self.add_switch(f"int-{index}", LAYER_CORE)
            for index in range(params.num_intermediate)
        ]
        aggregation_switches = [
            self.add_switch(f"agg-{index}", LAYER_AGGREGATION)
            for index in range(params.num_aggregation)
        ]
        tor_switches = [
            self.add_switch(f"tor-{index}", LAYER_EDGE) for index in range(params.num_tor)
        ]

        # Aggregation <-> intermediate: complete bipartite graph.
        for aggregation in aggregation_switches:
            for intermediate in intermediate_switches:
                self.connect_nodes(
                    aggregation,
                    intermediate,
                    params.fabric_link_rate_bps,
                    params.link_delay_s,
                    queue_factory,
                )

        # Each ToR connects to two aggregation switches (round-robin pairing).
        for tor_index, tor in enumerate(tor_switches):
            first = aggregation_switches[tor_index % params.num_aggregation]
            second = aggregation_switches[(tor_index + 1) % params.num_aggregation]
            for aggregation in {first.name: first, second.name: second}.values():
                self.connect_nodes(
                    tor,
                    aggregation,
                    params.fabric_link_rate_bps,
                    params.link_delay_s,
                    queue_factory,
                )

        # Hosts.
        address = 0
        for tor_index, tor in enumerate(tor_switches):
            for host_index in range(params.hosts_per_tor):
                host = self.add_host(f"host-{tor_index}-{host_index}", address)
                address += 1
                self.connect_nodes(
                    host, tor, params.server_link_rate_bps, params.link_delay_s, queue_factory
                )

        self.build_routes()
