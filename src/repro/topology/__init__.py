"""Data-centre and synthetic topologies."""

from repro.topology.base import (
    DEFAULT_LINK_DELAY_S,
    DEFAULT_LINK_RATE_BPS,
    Topology,
)
from repro.topology.dualhomed import DualHomedFatTreeTopology
from repro.topology.fattree import FatTreeParams, FatTreeTopology
from repro.topology.simple import (
    DumbbellTopology,
    IncastTopology,
    TwoHostTopology,
    TwoPathTopology,
)
from repro.topology.vl2 import Vl2Params, Vl2Topology

__all__ = [
    "DEFAULT_LINK_DELAY_S",
    "DEFAULT_LINK_RATE_BPS",
    "Topology",
    "DualHomedFatTreeTopology",
    "FatTreeParams",
    "FatTreeTopology",
    "DumbbellTopology",
    "IncastTopology",
    "TwoHostTopology",
    "TwoPathTopology",
    "Vl2Params",
    "Vl2Topology",
]
