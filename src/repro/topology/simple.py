"""Small synthetic topologies used by tests, examples and micro-benchmarks.

These are not part of the paper's evaluation; they exist so that transport
behaviour (window growth, fast retransmit, RTO, ECN reaction, MPTCP
coupling) can be exercised and asserted on in isolation, with a single
bottleneck whose capacity and buffering are known exactly.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.net.link import QueueFactory
from repro.net.switch import LAYER_CORE, LAYER_EDGE
from repro.sim.engine import Simulator
from repro.sim.tracing import NULL_SINK, TraceSink
from repro.sim.units import megabits_per_second, microseconds
from repro.topology.base import Topology


class TwoHostTopology(Topology):
    """Two hosts joined by a single switch — the smallest routable network."""

    def __init__(
        self,
        simulator: Simulator,
        link_rate_bps: float = megabits_per_second(100),
        link_delay_s: float = microseconds(50),
        queue_factory: Optional[QueueFactory] = None,
        trace: TraceSink = NULL_SINK,
    ) -> None:
        super().__init__(simulator, trace)
        switch = self.add_switch("switch-0", LAYER_EDGE)
        self.sender = self.add_host("host-a", 0)
        self.receiver = self.add_host("host-b", 1)
        self.connect_nodes(self.sender, switch, link_rate_bps, link_delay_s, queue_factory)
        self.connect_nodes(self.receiver, switch, link_rate_bps, link_delay_s, queue_factory)
        self.build_routes()


class DumbbellTopology(Topology):
    """``pairs`` senders and receivers sharing one bottleneck link.

    The bottleneck runs between the two switches; access links are faster so
    that congestion happens exactly where expected.
    """

    def __init__(
        self,
        simulator: Simulator,
        pairs: int = 2,
        bottleneck_rate_bps: float = megabits_per_second(100),
        access_rate_bps: float = megabits_per_second(1000),
        link_delay_s: float = microseconds(50),
        queue_factory: Optional[QueueFactory] = None,
        trace: TraceSink = NULL_SINK,
    ) -> None:
        super().__init__(simulator, trace)
        if pairs < 1:
            raise ValueError("a dumbbell needs at least one sender/receiver pair")
        left_switch = self.add_switch("switch-left", LAYER_EDGE)
        right_switch = self.add_switch("switch-right", LAYER_EDGE)
        self.connect_nodes(
            left_switch, right_switch, bottleneck_rate_bps, link_delay_s, queue_factory
        )
        self.senders = []
        self.receivers = []
        for index in range(pairs):
            sender = self.add_host(f"sender-{index}", index)
            receiver = self.add_host(f"receiver-{index}", 1000 + index)
            self.connect_nodes(sender, left_switch, access_rate_bps, link_delay_s, queue_factory)
            self.connect_nodes(
                receiver, right_switch, access_rate_bps, link_delay_s, queue_factory
            )
            self.senders.append(sender)
            self.receivers.append(receiver)
        self.build_routes()


class IncastTopology(Topology):
    """``fan_in`` senders and one receiver on a single switch.

    The receiver's downlink is the incast bottleneck; its queue overflows when
    enough synchronised senders fire at once, which is the TCP-incast pattern
    the paper's introduction describes.
    """

    def __init__(
        self,
        simulator: Simulator,
        fan_in: int = 8,
        link_rate_bps: float = megabits_per_second(100),
        link_delay_s: float = microseconds(50),
        queue_factory: Optional[QueueFactory] = None,
        trace: TraceSink = NULL_SINK,
    ) -> None:
        super().__init__(simulator, trace)
        if fan_in < 1:
            raise ValueError("an incast topology needs at least one sender")
        switch = self.add_switch("switch-0", LAYER_EDGE)
        self.receiver = self.add_host("receiver", 0)
        self.connect_nodes(self.receiver, switch, link_rate_bps, link_delay_s, queue_factory)
        self.senders = []
        for index in range(fan_in):
            sender = self.add_host(f"sender-{index}", index + 1)
            self.connect_nodes(sender, switch, link_rate_bps, link_delay_s, queue_factory)
            self.senders.append(sender)
        self.build_routes()


class TwoPathTopology(Topology):
    """Two hosts connected through two disjoint switch paths.

    The smallest topology on which ECMP path diversity, packet scatter and
    MPTCP sub-flow spreading are observable.

    ``path_delays`` (one entry per path, overriding ``link_delay_s`` on both
    hops of that path) makes the paths *asymmetric* — the setting in which
    RTT-aware subflow scheduling visibly diverges from round-robin.
    """

    def __init__(
        self,
        simulator: Simulator,
        paths: int = 2,
        link_rate_bps: float = megabits_per_second(100),
        link_delay_s: float = microseconds(50),
        path_delays: Optional[Sequence[float]] = None,
        queue_factory: Optional[QueueFactory] = None,
        trace: TraceSink = NULL_SINK,
    ) -> None:
        super().__init__(simulator, trace)
        if paths < 1:
            raise ValueError("need at least one path")
        if path_delays is not None and len(path_delays) != paths:
            raise ValueError("path_delays must have one entry per path")
        self.sender = self.add_host("host-a", 0)
        self.receiver = self.add_host("host-b", 1)
        ingress = self.add_switch("ingress", LAYER_EDGE)
        egress = self.add_switch("egress", LAYER_EDGE)
        self.connect_nodes(self.sender, ingress, link_rate_bps, link_delay_s, queue_factory)
        self.connect_nodes(self.receiver, egress, link_rate_bps, link_delay_s, queue_factory)
        self.core_switches = []
        for index in range(paths):
            delay = path_delays[index] if path_delays is not None else link_delay_s
            core = self.add_switch(f"path-{index}", LAYER_CORE)
            self.connect_nodes(ingress, core, link_rate_bps, delay, queue_factory)
            self.connect_nodes(core, egress, link_rate_bps, delay, queue_factory)
            self.core_switches.append(core)
        self.build_routes()
