"""Dual-homed FatTree.

The paper's roadmap section proposes multi-homed topologies: connecting each
server to two edge switches multiplies the number of parallel paths at the
access layer and therefore the burst tolerance of the packet-scatter phase.
This module builds that variant — a FatTree in which every host has a second
uplink to the *next* edge switch of its pod.
"""

from __future__ import annotations

from typing import Optional

from repro.net.address import encode_fattree_address
from repro.net.host import Host
from repro.net.link import QueueFactory
from repro.net.switch import LAYER_AGGREGATION, LAYER_CORE, LAYER_EDGE
from repro.sim.engine import Simulator
from repro.sim.tracing import NULL_SINK, TraceSink
from repro.topology.base import Topology
from repro.topology.fattree import FatTreeParams


class DualHomedFatTreeTopology(Topology):
    """A FatTree whose hosts are attached to two edge switches each.

    Requires at least two edge switches per pod (``k >= 4``).
    """

    def __init__(
        self,
        simulator: Simulator,
        params: FatTreeParams = FatTreeParams(),
        queue_factory: Optional[QueueFactory] = None,
        trace: TraceSink = NULL_SINK,
    ) -> None:
        super().__init__(simulator, trace)
        if params.k < 4:
            raise ValueError("a dual-homed FatTree needs k >= 4 (two edge switches per pod)")
        self.params = params
        self.default_queue_factory = queue_factory
        half_k = params.k // 2

        core_switches = [
            self.add_switch(f"core-{index}", LAYER_CORE) for index in range(params.num_core)
        ]

        for pod in range(params.num_pods):
            aggregation_switches = [
                self.add_switch(f"agg-{pod}-{index}", LAYER_AGGREGATION)
                for index in range(params.agg_per_pod)
            ]
            edge_switches = [
                self.add_switch(f"edge-{pod}-{index}", LAYER_EDGE)
                for index in range(params.edge_per_pod)
            ]

            for agg_index, aggregation in enumerate(aggregation_switches):
                for offset in range(half_k):
                    core = core_switches[agg_index * half_k + offset]
                    self.connect_nodes(
                        aggregation,
                        core,
                        params.effective_core_rate_bps,
                        params.link_delay_s,
                        queue_factory,
                    )

            for edge in edge_switches:
                for aggregation in aggregation_switches:
                    self.connect_nodes(
                        edge,
                        aggregation,
                        params.link_rate_bps,
                        params.link_delay_s,
                        queue_factory,
                    )

            for edge_index, edge in enumerate(edge_switches):
                secondary_edge = edge_switches[(edge_index + 1) % len(edge_switches)]
                for host_index in range(params.effective_hosts_per_edge):
                    address = encode_fattree_address(pod, edge_index, host_index)
                    host = self.add_host(f"host-{pod}-{edge_index}-{host_index}", address)
                    self.connect_nodes(
                        host,
                        edge,
                        params.effective_host_rate_bps,
                        params.link_delay_s,
                        queue_factory,
                    )
                    self.connect_nodes(
                        host,
                        secondary_edge,
                        params.effective_host_rate_bps,
                        params.link_delay_s,
                        queue_factory,
                    )

        self.build_routes()

    def expected_path_count(self, host_a: Host, host_b: Host) -> int:
        """Paths between two hosts; dual homing doubles the access-layer diversity."""
        if host_a.address == host_b.address:
            return 1
        base = self.params.inter_pod_path_count
        if (host_a.address >> 20) == (host_b.address >> 20):
            base = self.params.intra_pod_path_count
        return base * 2
