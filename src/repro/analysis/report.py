"""Markdown report generation.

``EXPERIMENTS.md`` records paper-vs-measured outcomes in a fixed structure:
a claim, how it was regenerated, what was measured, and a verdict.  These
helpers produce that structure (and plain markdown tables) from experiment
results, so a reproduction run can regenerate its own report instead of the
numbers being transcribed by hand.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.analysis.compare import MetricComparison
from repro.metrics.stats import mean_ci95

#: How numeric cells are formatted by default.
_FLOAT_FORMAT = "{:.3f}"

#: Metric columns aggregated across replications, in pinned order (a twin of
#: :data:`repro.scenarios.runner.CELL_METRIC_FIELDS`, duplicated here to
#: keep this module free of a scenarios dependency; a regression test pins
#: the two tuples to each other).  Extend at the end only — CSV headers and
#: report tables derive from it.
REPLICATION_SUMMARY_METRICS = (
    "short_flows",
    "completion_rate",
    "mean_fct_ms",
    "p99_fct_ms",
    "rto_incidence",
    "retransmits",
    "rtos",
    "fault_drops",
    "long_tput_mbps",
)


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return _FLOAT_FORMAT.format(value)
    return str(value)


def markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A GitHub-flavoured markdown table."""
    lines = [
        "| " + " | ".join(str(header) for header in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_format_cell(cell) for cell in row) + " |")
    return "\n".join(lines)


def summary_comparison_markdown(
    comparisons: Sequence[MetricComparison],
    baseline_label: str = "baseline",
    candidate_label: str = "candidate",
) -> str:
    """A markdown table of per-metric deltas between two runs."""
    headers = ["metric", baseline_label, candidate_label, "delta", "relative", "direction"]
    rows = []
    for comparison in comparisons:
        relative = comparison.relative_delta
        relative_text = "inf" if relative == float("inf") else f"{100 * relative:+.1f}%"
        rows.append(
            [
                comparison.metric,
                comparison.baseline,
                comparison.candidate,
                comparison.absolute_delta,
                relative_text,
                comparison.direction,
            ]
        )
    return markdown_table(headers, rows)


def scenario_matrix_markdown(
    rows: Sequence[Mapping[str, object]],
    baseline_protocol: str = "tcp",
) -> str:
    """A per-scenario comparison table across transports, with deltas.

    ``rows`` are the dictionaries produced by
    :func:`repro.scenarios.runner.matrix_rows`.  Within every scenario each
    protocol is compared against ``baseline_protocol`` on the three axes the
    paper's argument rests on: short-flow completion time, long-flow
    throughput, and retransmissions.  Fault drops (packets lost at a down
    interface, which bypass every queue counter) get their own column so
    link-failure scenarios do not under-report losses.  Delta cells show
    ``n/a`` when the scenario was not run with the baseline protocol (or for
    the baseline row itself).
    """
    headers = [
        "scenario",
        "protocol",
        "completion",
        "mean FCT (ms)",
        f"ΔFCT vs {baseline_protocol}",
        "p99 FCT (ms)",
        "retransmits",
        f"Δretx vs {baseline_protocol}",
        "fault drops",
        "long tput (Mbps)",
        f"Δtput vs {baseline_protocol}",
    ]
    baselines: Dict[object, Mapping[str, object]] = {
        row["scenario"]: row for row in rows if row["protocol"] == baseline_protocol
    }

    def _relative(value: float, base: float) -> str:
        if base == 0:
            return "inf" if value else "+0.0%"
        return f"{100 * (value - base) / base:+.1f}%"

    table_rows: List[List[object]] = []
    for row in rows:
        base = baselines.get(row["scenario"])
        if base is None or row["protocol"] == baseline_protocol:
            fct_delta = retx_delta = tput_delta = "n/a"
        else:
            fct_delta = _relative(float(row["mean_fct_ms"]), float(base["mean_fct_ms"]))
            retx_delta = f"{int(row['retransmits']) - int(base['retransmits']):+d}"
            tput_delta = _relative(
                float(row["long_tput_mbps"]), float(base["long_tput_mbps"])
            )
        table_rows.append(
            [
                row["scenario"],
                row["protocol"],
                f"{100 * float(row['completion_rate']):.1f}%",
                row["mean_fct_ms"],
                fct_delta,
                row["p99_fct_ms"],
                row["retransmits"],
                retx_delta,
                row.get("fault_drops", 0),
                row["long_tput_mbps"],
                tput_delta,
            ]
        )
    return markdown_table(headers, table_rows)


def replication_summary_rows(
    rows: Sequence[Mapping[str, object]],
) -> List[Dict[str, object]]:
    """Across-replication aggregation of per-cell campaign rows.

    Groups ``rows`` (the dictionaries from
    :func:`repro.campaigns.runner.campaign_rows`) by
    (``scenario``, ``protocol``, ``params``) in first-appearance order —
    which, for campaign rows, is declared cell order — and reports the
    sample mean and 95% confidence half-width (see
    :func:`repro.metrics.stats.mean_ci95`; 0.0 for a single replication)
    of every metric in :data:`REPLICATION_SUMMARY_METRICS`.

    Key order — ``scenario``, ``protocol``, ``params``, ``replications``,
    then a ``<metric>_mean`` / ``<metric>_ci95`` pair per metric — is
    insertion-stable and part of the public contract (CSV headers and
    report tables derive from it).
    """
    groups: Dict[tuple, List[Mapping[str, object]]] = {}
    for row in rows:
        coordinate = (row["scenario"], row["protocol"], row.get("params", ""))
        groups.setdefault(coordinate, []).append(row)
    summary_rows: List[Dict[str, object]] = []
    for (scenario, protocol, params), members in groups.items():
        summary: Dict[str, object] = {
            "scenario": scenario,
            "protocol": protocol,
            "params": params,
            "replications": len(members),
        }
        for metric in REPLICATION_SUMMARY_METRICS:
            mean, half_width = mean_ci95(float(member[metric]) for member in members)
            summary[f"{metric}_mean"] = mean
            summary[f"{metric}_ci95"] = half_width
        summary_rows.append(summary)
    return summary_rows


def campaign_report_markdown(
    spec: object,
    rows: Sequence[Mapping[str, object]],
    baseline_protocol: str = "tcp",
) -> str:
    """The full markdown report of one campaign, from per-cell rows.

    ``spec`` is a :class:`repro.campaigns.spec.CampaignSpec` (duck-typed
    here to keep this module free of a campaigns dependency); ``rows`` are
    the dictionaries from :func:`repro.campaigns.runner.campaign_rows`, in
    declared cell order.

    The document is **deterministic**: it contains only the declared grid
    and the simulated numbers — no timestamps, wall-clock, or cache
    hit/miss counts — so regenerating it from the same artifacts always
    yields identical bytes.  The per-scenario delta table is included when
    it is well-defined: the baseline protocol is in the grid and every
    scenario/protocol pair maps to exactly one row (no sweeps, single
    replication).
    """
    lines: List[str] = [f"# Campaign report — {spec.name}", ""]
    lines.append(f"* **Scale:** {spec.scale} (seed {spec.seed})")
    lines.append("* **Scenarios:** " + ", ".join(spec.scenarios))
    lines.append("* **Transports:** " + ", ".join(spec.protocols))
    lines.append(f"* **Replications:** {spec.replications}")
    if spec.sweeps:
        axes = "; ".join(
            f"{name} ∈ [{', '.join(str(value) for value in values)}]"
            for name, values in spec.sweeps
        )
        lines.append(f"* **Sweeps:** {axes}")
    lines.append(f"* **Cells:** {len(rows)}")
    lines.extend(["", "## Per-cell results", ""])
    if rows:
        headers = list(rows[0].keys())
        lines.append(markdown_table(headers, [[row[h] for h in headers] for row in rows]))
    else:
        lines.append("_No cells declared._")
    if spec.replications > 1 and rows:
        # Replicated campaigns additionally get the across-replication view:
        # one row per cell coordinate with mean ± 95% CI columns.
        summary_rows = replication_summary_rows(rows)
        headers = list(summary_rows[0].keys())
        lines.extend(["", "## Across replications (mean ± 95% CI)", ""])
        lines.append(
            markdown_table(headers, [[row[h] for h in headers] for row in summary_rows])
        )
    deltas_apply = (
        baseline_protocol in spec.protocols
        and spec.replications == 1
        and not spec.sweeps
        and rows
    )
    if deltas_apply:
        lines.extend(["", f"## Per-scenario deltas vs {baseline_protocol}", ""])
        lines.append(scenario_matrix_markdown(rows, baseline_protocol=baseline_protocol))
    lines.append("")
    return "\n".join(lines)


def experiment_section(
    title: str,
    paper_claim: str,
    bench: str,
    measured_rows: Sequence[Mapping[str, object]],
    verdict: str,
    notes: Optional[str] = None,
) -> str:
    """One EXPERIMENTS.md-style section as a markdown string.

    Args:
        title: section heading (e.g. ``"Figure 1(a) — ..."``).
        paper_claim: what the paper reports.
        bench: the benchmark / command that regenerates it.
        measured_rows: homogeneous dictionaries with the measured numbers
            (rendered as a table; empty list renders a placeholder line).
        verdict: one-line reproduction verdict.
        notes: optional extra paragraph (caveats, scale sensitivity, ...).
    """
    lines: List[str] = [f"### {title}", ""]
    lines.append(f"* **Paper:** {paper_claim}")
    lines.append(f"* **Bench:** `{bench}`")
    lines.append(f"* **Verdict:** {verdict}")
    lines.append("")
    if measured_rows:
        headers = list(measured_rows[0].keys())
        table_rows = [[row[header] for header in headers] for row in measured_rows]
        lines.append(markdown_table(headers, table_rows))
    else:
        lines.append("_No measurements recorded._")
    if notes:
        lines.extend(["", notes])
    lines.append("")
    return "\n".join(lines)


def report_document(sections: Sequence[str], title: str = "Reproduction report") -> str:
    """Join sections into one markdown document with a top-level heading."""
    body = "\n".join(section.rstrip() + "\n" for section in sections)
    return f"# {title}\n\n{body}"
