"""Per-line ``# repro: allow[rule]`` suppression comments.

A finding is silenced by putting the marker **on the violating line**::

    return json.dumps(payload)  # repro: allow[no-raw-json] -- the canonical dumper

or, when the line has no room, on a comment line of its own **immediately
above** the violating line::

    # repro: allow[no-raw-json] -- tampered fixture, non-canonical on purpose
    path.write_text(json.dumps(artifact))

Several rules may be allowed at once (``allow[rule-a,rule-b]``), and
anything after the closing bracket is free-form justification — the
convention is to always say *why* the exception is sound.  Suppressions are
validated against the rule registry: naming an unknown rule is reported as
an ``unknown-suppression`` violation rather than silently doing nothing.

Comments are found with :mod:`tokenize`, not a regex over raw lines, so a
marker inside a string literal is never mistaken for a suppression.
"""

import io
import re
import tokenize
from typing import Dict, FrozenSet, List, Sequence, Tuple

#: The marker grammar (hash, then ``repro: allow[name]`` or ``allow[a,b]``);
#: whatever follows the bracket is justification text and is ignored here.
_MARKER = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")


def parse_suppressions(
    source: str, known_rules: Sequence[str]
) -> Tuple[Dict[int, FrozenSet[str]], List[Tuple[int, FrozenSet[str]]]]:
    """Extract suppressions from ``source``.

    Returns ``(by_line, bad)`` where ``by_line`` maps a line number to the
    frozenset of rule names allowed on that line, and ``bad`` lists
    ``(line, unknown_names)`` pairs for markers naming unregistered rules
    (including an empty ``allow[]``).  Unparsable files yield no
    suppressions — the driver reports those as ``parse-error`` anyway.
    """
    by_line: Dict[int, FrozenSet[str]] = {}
    bad: List[Tuple[int, FrozenSet[str]]] = []
    known = set(known_rules)
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return {}, []
    source_lines = source.splitlines()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _MARKER.search(token.string)
        if match is None:
            continue
        names = frozenset(name.strip() for name in match.group(1).split(",") if name.strip())
        line = token.start[0]
        # A marker on a comment-only line guards the line immediately below;
        # a trailing marker guards its own line.
        prefix = source_lines[line - 1][: token.start[1]] if line <= len(source_lines) else ""
        if not prefix.strip():
            line += 1
        unknown = names - known
        if not names:
            bad.append((token.start[0], frozenset({"<empty>"})))
            continue
        if unknown:
            bad.append((token.start[0], unknown))
        good = names & known
        if good:
            by_line[line] = by_line.get(line, frozenset()) | good
    return by_line, bad
