"""Command-line front end for the invariant linter.

Used both by the ``repro-mmptcp lint`` sub-command and standalone via
``python -m repro.analysis.lint``.  The argument surface is defined once in
:func:`add_lint_arguments` so the two entry points cannot drift.
"""

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.lint.core import lint_paths, registered_rules
from repro.analysis.lint.report import (
    EXIT_USAGE,
    exit_code,
    render_human,
    render_json,
)


class LintUsageError(Exception):
    """A bad invocation (unknown rule, missing path): one line, exit 2."""


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared by both entry points)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (json is byte-stable via dumps_deterministic)",
    )
    parser.add_argument(
        "--rules",
        nargs="+",
        default=None,
        metavar="RULE",
        help="run only these rules (default: all registered rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules with their descriptions and exit",
    )


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute one lint run; raises :class:`LintUsageError` on bad input."""
    if args.list_rules:
        for rule in registered_rules():
            print(f"{rule.name}: {rule.description}")
        return 0
    try:
        report = lint_paths([Path(path) for path in args.paths], rules=args.rules)
    except KeyError as exc:
        raise LintUsageError(exc.args[0]) from exc
    except FileNotFoundError as exc:
        raise LintUsageError(str(exc)) from exc
    output = render_json(report) if args.format == "json" else render_human(report) + "\n"
    sys.stdout.write(output)
    return exit_code(report)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis.lint``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="statically enforce the repository's determinism, JSON, "
        "pool-ownership, store-key and timer invariants",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return run_lint_command(args)
    except LintUsageError as exc:
        print(f"lint failed: {exc}", file=sys.stderr)
        return EXIT_USAGE


__all__: List[str] = [
    "LintUsageError",
    "add_lint_arguments",
    "main",
    "run_lint_command",
]
