"""Rule: ``repro/store/canonical.py`` stays a pure function of run input.

The store's cache keys (ROADMAP "Store keys") hash the *run input* — config,
seed, workload recipe, schema version — and deliberately exclude execution
details, which is what lets a campaign resume across machines and
``--workers`` values with zero duplicated simulation.  The key-derivation
module must therefore never reference worker counts, wall clocks, process
identity, or Python's randomised ``hash()``/``id()``.  This rule pins that
contract to the file itself: an innocent-looking ``import os`` or a
``workers`` parameter threaded into :func:`run_key` is flagged at review
time, before it can silently fork the key space.
"""

import ast
from typing import Iterator

from repro.analysis.lint.core import LintRule, ModuleContext, Violation, register

#: Modules whose very presence in canonical.py signals impurity.
_FORBIDDEN_MODULES = frozenset(
    {
        "concurrent",
        "datetime",
        "getpass",
        "multiprocessing",
        "os",
        "platform",
        "random",
        "secrets",
        "socket",
        "subprocess",
        "sys",
        "threading",
        "time",
        "uuid",
    }
)

#: Builtins whose results differ across processes (hash randomisation, object
#: identity) and must never leak into a key.
_FORBIDDEN_BUILTINS = frozenset({"hash", "id"})


def _is_workers_name(identifier: str) -> bool:
    return identifier == "workers" or identifier.endswith("_workers")


@register
class StoreKeyPurity(LintRule):
    name = "store-key-purity"
    description = (
        "store/canonical.py must not reference workers, wall-clock, process "
        "state, or randomised hash()/id() — keys are pure functions of run input"
    )

    _SCOPE = "repro/store/canonical.py"

    def violations(self, ctx: ModuleContext) -> Iterator[Violation]:
        if ctx.package_path != self._SCOPE:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(ctx, node)
            elif isinstance(node, ast.Call):
                resolved = ctx.resolve_call(node.func)
                if resolved in _FORBIDDEN_BUILTINS:
                    yield self.violation(
                        ctx,
                        node,
                        f"builtin {resolved}() is process-dependent (hash "
                        "randomisation / object identity); key material must go "
                        "through sha256_hex over canonical JSON",
                    )
            elif isinstance(node, ast.Name) and _is_workers_name(node.id):
                yield self._workers_violation(ctx, node, node.id)
            elif isinstance(node, ast.Attribute) and _is_workers_name(node.attr):
                yield self._workers_violation(ctx, node, node.attr)
            elif isinstance(node, ast.arg) and _is_workers_name(node.arg):
                yield self._workers_violation(ctx, node, node.arg)
            elif (
                isinstance(node, ast.keyword)
                and node.arg is not None
                and _is_workers_name(node.arg)
            ):
                yield self._workers_violation(ctx, node.value, node.arg)

    def _workers_violation(
        self, ctx: ModuleContext, node: ast.AST, identifier: str
    ) -> Violation:
        return self.violation(
            ctx,
            node,
            f"{identifier!r} is an execution detail; run keys must never depend "
            "on worker counts (that is what makes campaigns resumable across "
            "machines)",
        )

    def _check_import(self, ctx: ModuleContext, node: ast.AST) -> Iterator[Violation]:
        if isinstance(node, ast.Import):
            modules = [alias.name for alias in node.names]
        else:
            modules = [node.module] if node.module else []
        for module in modules:
            if module.split(".")[0] in _FORBIDDEN_MODULES:
                yield self.violation(
                    ctx,
                    node,
                    f"importing {module!r} into the key-derivation module invites "
                    "process state into store keys; keep canonical.py pure",
                )
