"""Rule: all JSON emission goes through the deterministic dumpers.

The JSON policy (ROADMAP "JSON policy") is that every artifact is written
via :func:`repro.metrics.export.dumps_deterministic` (indented artifacts)
or :func:`repro.store.canonical.canonical_dumps` (compact store/key form).
Both pin ``sort_keys``/``allow_nan=False``/float ``repr``, which is what
makes artifacts byte-comparable across runs, platforms and worker counts.
A raw ``json.dumps`` call silently forfeits all of that, so outside the two
policy modules it is a violation — tests included, because tests write
golden inputs and tampered fixtures that must opt out *explicitly*.
"""

import ast
from typing import Iterator

from repro.analysis.lint.core import LintRule, ModuleContext, Violation, register

#: The two modules that define the policy and may therefore call json.dumps.
ALLOWED_FILES = frozenset({"repro/metrics/export.py", "repro/store/canonical.py"})

_FORBIDDEN = frozenset({"json.dumps", "json.dump"})


@register
class NoRawJson(LintRule):
    name = "no-raw-json"
    description = (
        "json.dumps/json.dump outside metrics/export.py and store/canonical.py "
        "bypass the deterministic JSON policy"
    )

    def violations(self, ctx: ModuleContext) -> Iterator[Violation]:
        if ctx.package_path in ALLOWED_FILES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve_call(node.func)
            if resolved in _FORBIDDEN:
                yield self.violation(
                    ctx,
                    node,
                    f"{resolved} bypasses the deterministic JSON policy; use "
                    "repro.metrics.export.dumps_deterministic (artifacts) or "
                    "repro.store.canonical.canonical_dumps (store keys)",
                )
