"""Rule: timers follow the engine's (time, sequence) discipline.

The event core (ROADMAP "Determinism") orders simultaneous events by a
global sequence number; ``Simulator.timer()`` handles consume exactly one
sequence per ``arm`` just like ``schedule``, which is what keeps golden
traces byte-identical across engine refactors.  Two static guards:

* an ``import heapq`` anywhere in ``repro/`` outside the event core
  (``sim/engine.py``, ``sim/timerwheel.py``) is an ad-hoc event queue in the
  making — one that would order ties arbitrarily instead of by the global
  sequence;
* a raw ``*.schedule(...)`` call inside ``repro/transport/`` re-creates the
  pre-v3 retransmission-timer pattern (schedule + cancel churn on every
  ACK).  Transports must hold a reusable ``Simulator.timer()`` handle and
  ``arm``/``rearm``/``cancel`` it.

The network layer (links, fault injector, samplers) may still ``schedule``
one-shot events — delivery delays and fault arms are not timers that churn.
"""

import ast
from typing import Iterator

from repro.analysis.lint.core import LintRule, ModuleContext, Violation, register

#: The event core: the only modules allowed to build on heapq.
HEAPQ_ALLOWED_FILES = frozenset({"repro/sim/engine.py", "repro/sim/timerwheel.py"})


@register
class TimerDiscipline(LintRule):
    name = "timer-discipline"
    description = (
        "heapq outside the event core, or raw Simulator.schedule in "
        "repro/transport/, bypasses the timer-wheel sequence discipline"
    )

    def violations(self, ctx: ModuleContext) -> Iterator[Violation]:
        if not ctx.in_package("repro"):
            return
        if ctx.package_path not in HEAPQ_ALLOWED_FILES:
            for node in ast.walk(ctx.tree):
                imports_heapq = (
                    isinstance(node, ast.Import)
                    and any(alias.name.split(".")[0] == "heapq" for alias in node.names)
                ) or (
                    isinstance(node, ast.ImportFrom)
                    and node.module is not None
                    and node.module.split(".")[0] == "heapq"
                )
                if imports_heapq:
                    yield self.violation(
                        ctx,
                        node,
                        "heapq builds an ad-hoc event queue that orders ties "
                        "arbitrarily; schedule through the Simulator so the global "
                        "(time, sequence) order holds",
                    )
        if ctx.in_package("repro/transport"):
            for node in ast.walk(ctx.tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "schedule"
                ):
                    yield self.violation(
                        ctx,
                        node,
                        "transports must not call Simulator.schedule directly for "
                        "timers; hold a Simulator.timer() handle and arm/rearm/"
                        "cancel it (each arm consumes one sequence, keeping golden "
                        "traces stable)",
                    )
