"""``python -m repro.analysis.lint`` — the CI entry point for the linter."""

import sys

from repro.analysis.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
