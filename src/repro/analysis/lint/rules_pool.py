"""Rule: ``on_packet`` must not retain its packet argument.

Packet-pool ownership is linear (ROADMAP "Packet pool"): transports acquire
packets, the network releases every consumed packet after endpoint dispatch,
and an endpoint's ``on_packet`` may *read* its argument but never keep a
reference to it — the object is poisoned and recycled the moment the handler
returns.  A retained reference is a use-after-free bug that only manifests
under pool debugging or as silent field corruption.

The check is intra-procedural by design: inside any ``def on_packet(self,
packet, ...)`` body in ``repro/``, the bare packet name must not

* be assigned to an attribute or subscript target (``self.last = packet``,
  ``self.buffer[k] = packet``), directly or inside a tuple/list/set/dict
  display, nor
* be passed to a retaining container method (``append``/``add``/
  ``appendleft``/``insert``/``extend``/``put``/``push``) or ``setattr``.

Copying fields out (``self.seq = packet.seq``) and passing the packet to
helper functions remain legal; helpers that retain are caught at runtime by
pool poisoning.  Tests are exempt — they retain packets on purpose to
assert the poisoning machinery itself.
"""

import ast
from typing import Iterator

from repro.analysis.lint.core import LintRule, ModuleContext, Violation, register

_RETAINING_METHODS = frozenset(
    {"append", "appendleft", "add", "insert", "extend", "put", "push", "setdefault"}
)


def _leaks_name(node: ast.AST, name: str) -> bool:
    """True when ``node`` evaluates to (a container displaying) the bare name."""
    if isinstance(node, ast.Name):
        return node.id == name
    if isinstance(node, ast.Starred):
        return _leaks_name(node.value, name)
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return any(_leaks_name(element, name) for element in node.elts)
    if isinstance(node, ast.Dict):
        return any(
            _leaks_name(part, name) for part in [*node.keys, *node.values] if part is not None
        )
    return False


@register
class PoolOwnership(LintRule):
    name = "pool-ownership"
    description = (
        "on_packet bodies must not retain the packet argument (linear pool "
        "ownership: the network releases it after dispatch)"
    )

    def violations(self, ctx: ModuleContext) -> Iterator[Violation]:
        if not ctx.in_package("repro"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name != "on_packet":
                continue
            positional = [*node.args.posonlyargs, *node.args.args]
            if len(positional) < 2:
                continue
            packet_name = positional[1].arg
            yield from self._check_body(ctx, node, packet_name)

    def _check_body(
        self, ctx: ModuleContext, func: ast.AST, packet_name: str
    ) -> Iterator[Violation]:
        retain_msg = (
            f"on_packet retains its packet argument {packet_name!r}; ownership is "
            "linear (the network releases it after dispatch) — copy the fields "
            "you need instead"
        )
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                if _leaks_name(node.value, packet_name) and any(
                    isinstance(target, (ast.Attribute, ast.Subscript))
                    or (
                        isinstance(target, (ast.Tuple, ast.List))
                        and any(
                            isinstance(element, (ast.Attribute, ast.Subscript))
                            for element in target.elts
                        )
                    )
                    for target in node.targets
                ):
                    yield self.violation(ctx, node, retain_msg)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if (
                    node.value is not None
                    and _leaks_name(node.value, packet_name)
                    and isinstance(node.target, (ast.Attribute, ast.Subscript))
                ):
                    yield self.violation(ctx, node, retain_msg)
            elif isinstance(node, ast.Call):
                is_retaining_method = (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _RETAINING_METHODS
                )
                is_setattr = isinstance(node.func, ast.Name) and node.func.id == "setattr"
                if not (is_retaining_method or is_setattr):
                    continue
                arguments = [*node.args, *[keyword.value for keyword in node.keywords]]
                if any(_leaks_name(argument, packet_name) for argument in arguments):
                    yield self.violation(ctx, node, retain_msg)
