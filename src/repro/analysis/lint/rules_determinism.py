"""Rules: no wall-clock or global-RNG reads; no unordered-set iteration.

Simulation output must be a pure function of the run input (config, seed,
workload) — that is what makes sweep results byte-identical for any
``--workers`` value and what keeps store keys honest.  Two rule families
guard it statically:

* ``no-wallclock-or-global-random`` — reading a real clock
  (``time.time``/``monotonic``/``perf_counter``, ``datetime.now``, …),
  drawing entropy (``uuid.uuid4``), or calling the *module-level* shared
  ``random`` functions inside ``repro`` makes results depend on process
  state.  Randomness must flow through :mod:`repro.sim.randomness` or an
  injected ``random.Random`` instance (which is why ``random.Random(...)``
  itself is allowed).
* ``no-unordered-iteration`` — iterating a set/frozenset (literal,
  comprehension or constructor call) or a ``.keys()`` view inside the
  ``repro/sim``, ``repro/net`` and ``repro/topology`` packages feeds an
  order-sensitive pipeline (trace events, golden traces, route tables)
  with hash order.  Wrap the iterable in ``sorted(...)``.
"""

import ast
from typing import Iterator, Optional

from repro.analysis.lint.core import LintRule, ModuleContext, Violation, register

#: Clock and entropy reads that make output depend on when/where it ran.
WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: The only attribute of the ``random`` module that may be called: the
#: seeded-instance constructor.  Everything else (``random.random``,
#: ``random.choice``, ``random.seed``, ``random.SystemRandom``, …) either
#: touches the shared module-level generator or reads OS entropy.
ALLOWED_RANDOM_MEMBERS = frozenset({"Random"})


@register
class NoWallclockOrGlobalRandom(LintRule):
    name = "no-wallclock-or-global-random"
    description = (
        "wall-clock reads and module-level random.* calls in repro/ break "
        "cross-run determinism; use sim.randomness or an injected random.Random"
    )

    def violations(self, ctx: ModuleContext) -> Iterator[Violation]:
        if not ctx.in_package("repro"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve_call(node.func)
            if resolved is None:
                continue
            if resolved in WALLCLOCK_CALLS:
                yield self.violation(
                    ctx,
                    node,
                    f"{resolved} reads process state, so results stop being a pure "
                    "function of the run input; thread simulated time or an "
                    "explicit value through instead",
                )
            elif (
                resolved.startswith("random.")
                and resolved.count(".") == 1
                and resolved.split(".", 1)[1] not in ALLOWED_RANDOM_MEMBERS
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"{resolved} uses the shared module-level generator; draw from "
                    "repro.sim.randomness streams or an injected random.Random",
                )


def _is_sorted_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "sorted"
    )


def _unordered_reason(node: ast.AST, ctx: ModuleContext) -> Optional[str]:
    """Why iterating ``node`` is order-unstable, or None when it is fine."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        resolved = ctx.resolve_call(node.func)
        if resolved in ("set", "frozenset"):
            return f"a {resolved}(...) call"
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys"
            and not node.args
            and not node.keywords
        ):
            return "a .keys() view"
    return None


@register
class NoUnorderedIteration(LintRule):
    name = "no-unordered-iteration"
    description = (
        "iterating sets or .keys() views in repro/sim, repro/net and "
        "repro/topology without sorted() feeds hash order into traces"
    )

    _SCOPES = ("repro/sim", "repro/net", "repro/topology")

    def violations(self, ctx: ModuleContext) -> Iterator[Violation]:
        if not any(ctx.in_package(scope) for scope in self._SCOPES):
            return
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(generator.iter for generator in node.generators)
            for candidate in iters:
                if _is_sorted_call(candidate):
                    continue
                reason = _unordered_reason(candidate, ctx)
                if reason is not None:
                    yield self.violation(
                        ctx,
                        candidate,
                        f"iterating {reason} here feeds simulation state with "
                        "unordered (or order-opaque) elements; wrap it in sorted(...)",
                    )
