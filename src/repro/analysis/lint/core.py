"""Linter core: module contexts, the rule registry, and the lint driver.

Every rule sees a :class:`ModuleContext` — the parsed AST plus the
book-keeping each check needs (repo-relative path, package-relative path,
import alias maps) — and yields :class:`Violation` records.  The driver in
:func:`lint_paths` parses each file once, runs every selected rule over it,
and applies the per-line ``# repro: allow[rule]`` suppressions collected by
:mod:`repro.analysis.lint.suppress`.

Everything here is deterministic by construction: files are visited in
sorted order and violations are reported in ``(path, line, column, rule)``
order, so two runs over the same tree always produce the same bytes.
"""

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.lint.suppress import parse_suppressions

#: Rule name used for files that cannot be parsed at all.
PARSE_ERROR_RULE = "parse-error"

#: Rule name used when a suppression comment names an unknown rule.
UNKNOWN_SUPPRESSION_RULE = "unknown-suppression"

#: Names reserved by the driver itself; real rules cannot claim them and
#: suppression comments cannot silence them (a broken suppression must not
#: be able to hide itself).
META_RULES = (PARSE_ERROR_RULE, UNKNOWN_SUPPRESSION_RULE)


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: ``path:line:col`` plus the rule name and message."""

    path: str
    line: int
    column: int
    rule: str
    message: str

    def render(self) -> str:
        """The one-line human form, ``path:line:col: rule: message``."""
        return f"{self.path}:{self.line}:{self.column}: {self.rule}: {self.message}"


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule may inspect about one parsed module."""

    #: Path as given/resolved on disk.
    path: Path
    #: Path relative to the lint root, in posix form (display + scoping).
    relpath: str
    #: Path from the ``repro`` package anchor (``repro/sim/engine.py``), or
    #: the relpath unchanged when the file is not inside the package (tests,
    #: scripts).  Rules scope themselves with :meth:`in_package`.
    package_path: str
    tree: ast.Module
    #: ``import x as y`` aliases: local name -> imported module dotted path.
    module_aliases: Dict[str, str]
    #: ``from m import x as y`` aliases: local name -> ``m.x`` dotted path.
    member_aliases: Dict[str, str]

    def in_package(self, prefix: str) -> bool:
        """True when this module lives at/under ``prefix`` inside ``repro``."""
        return self.package_path == prefix or self.package_path.startswith(prefix + "/")

    def resolve_call(self, func: ast.AST) -> Optional[str]:
        """The canonical dotted name a call target resolves to, if known.

        ``_wallclock.monotonic`` resolves to ``time.monotonic`` under
        ``import time as _wallclock``; ``dumps`` resolves to ``json.dumps``
        under ``from json import dumps``.  Locally defined names and
        attribute chains rooted in non-import objects resolve to ``None``.
        """
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        if base in self.module_aliases:
            root = self.module_aliases[base]
        elif base in self.member_aliases:
            root = self.member_aliases[base]
        elif not parts:
            # A bare name that was never imported: a builtin or a local.
            return base
        else:
            return None
        return ".".join([root, *reversed(parts)]) if parts else root


class LintRule:
    """Base class for invariant checks.

    Subclasses set :attr:`name`/:attr:`description`, then implement
    :meth:`violations`; registration happens via :func:`register`.
    """

    #: Kebab-case rule identifier, used in reports and suppressions.
    name: str = ""
    #: One-line summary shown by ``--list-rules`` and the README catalogue.
    description: str = ""

    def violations(self, ctx: ModuleContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: ModuleContext, node: ast.AST, message: str) -> Violation:
        """A :class:`Violation` anchored at ``node``'s source location."""
        return Violation(
            path=ctx.relpath,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=self.name,
            message=message,
        )


#: The global rule registry, populated at import time by the rule modules.
_REGISTRY: Dict[str, LintRule] = {}


def register(rule_class: type) -> type:
    """Class decorator adding one rule instance to the registry."""
    rule = rule_class()
    if not rule.name or rule.name in META_RULES:
        raise ValueError(f"rule {rule_class.__name__} has a reserved or empty name")
    if rule.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return rule_class


def registered_rules(names: Optional[Sequence[str]] = None) -> Tuple[LintRule, ...]:
    """The selected rules in name order (all of them when ``names`` is None).

    Raises ``KeyError`` with a one-line message for an unknown rule name, so
    the CLI can turn it into an exit-2 diagnostic.
    """
    if names is None:
        return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))
    unknown = sorted(set(names) - set(_REGISTRY))
    if unknown:
        raise KeyError(
            f"unknown lint rule(s) {', '.join(unknown)}; "
            f"known rules: {', '.join(sorted(_REGISTRY))}"
        )
    return tuple(_REGISTRY[name] for name in sorted(set(names)))


def all_rule_names() -> Tuple[str, ...]:
    """Every registered rule name, sorted."""
    return tuple(sorted(_REGISTRY))


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint run."""

    violations: Tuple[Violation, ...]
    files_checked: int
    suppressed: int
    rules: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def clean(self) -> bool:
        return not self.violations


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list.

    Hidden directories and ``__pycache__`` are skipped.  A named file is
    taken as-is (whatever its suffix); a missing path raises ``FileNotFoundError``.
    """
    collected = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = candidate.relative_to(path).parts
                if any(part.startswith(".") or part == "__pycache__" for part in parts):
                    continue
                collected.add(candidate.resolve())
        elif path.is_file():
            collected.add(path.resolve())
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(collected, key=lambda item: item.as_posix())


def _relative_path(path: Path, root: Path) -> str:
    try:
        return PurePosixPath(path.relative_to(root)).as_posix()
    except ValueError:
        return path.as_posix()


def _package_path(relpath: str) -> str:
    """The path from the ``repro`` anchor, for rule scoping.

    ``src/repro/sim/engine.py`` -> ``repro/sim/engine.py``; paths outside
    the package (``tests/test_x.py``) pass through unchanged, so package
    scopes simply never match them.
    """
    parts = PurePosixPath(relpath).parts
    if "repro" in parts:
        return "/".join(parts[parts.index("repro"):])
    return relpath


def _import_aliases(tree: ast.Module) -> Tuple[Dict[str, str], Dict[str, str]]:
    module_aliases: Dict[str, str] = {}
    member_aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                # `import a.b` binds `a`; `import a.b as c` binds `c` -> a.b.
                module_aliases[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                member_aliases[local] = f"{node.module}.{alias.name}"
    return module_aliases, member_aliases


def _lint_file(
    path: Path, root: Path, rules: Sequence[LintRule]
) -> Tuple[List[Violation], int]:
    """All unsuppressed violations for one file, plus the suppressed count."""
    relpath = _relative_path(path, root)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return (
            [
                Violation(
                    path=relpath,
                    line=exc.lineno or 1,
                    column=(exc.offset or 0) or 1,
                    rule=PARSE_ERROR_RULE,
                    message=f"file does not parse: {exc.msg}",
                )
            ],
            0,
        )

    module_aliases, member_aliases = _import_aliases(tree)
    ctx = ModuleContext(
        path=path,
        relpath=relpath,
        package_path=_package_path(relpath),
        tree=tree,
        module_aliases=module_aliases,
        member_aliases=member_aliases,
    )

    suppressions, bad_lines = parse_suppressions(source, known_rules=all_rule_names())
    violations: List[Violation] = []
    suppressed = 0
    for rule in rules:
        for violation in rule.violations(ctx):
            if rule.name in suppressions.get(violation.line, frozenset()):
                suppressed += 1
            else:
                violations.append(violation)
    for line, names in bad_lines:
        violations.append(
            Violation(
                path=relpath,
                line=line,
                column=1,
                rule=UNKNOWN_SUPPRESSION_RULE,
                message=(
                    f"suppression names unknown rule(s) {', '.join(sorted(names))}; "
                    f"known rules: {', '.join(all_rule_names())}"
                ),
            )
        )
    return violations, suppressed


def lint_paths(
    paths: Iterable[Path],
    rules: Optional[Sequence[str]] = None,
    root: Optional[Path] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` and return the sorted report.

    ``root`` anchors the repo-relative paths used for display and rule
    scoping; it defaults to the current working directory, which is the repo
    root for both CI invocations (``repro-mmptcp lint src tests``).
    """
    root = Path(root) if root is not None else Path.cwd()
    selected = registered_rules(rules)
    files = iter_python_files([Path(p) for p in paths])
    violations: List[Violation] = []
    suppressed = 0
    for path in files:
        found, skipped = _lint_file(path, root, selected)
        violations.extend(found)
        suppressed += skipped
    return LintReport(
        violations=tuple(sorted(violations)),
        files_checked=len(files),
        suppressed=suppressed,
        rules=tuple(rule.name for rule in selected),
    )
