"""Rule: no mutating a container inside a loop that iterates it.

Mutating a dict or set while iterating it raises ``RuntimeError`` at best —
and at worst silently skips or repeats elements when the container resizes,
which in ``repro/sim`` and ``repro/net`` means event handlers fire for a
stale membership snapshot and traces drift between runs.  The safe idioms
are all cheap: iterate a snapshot (``list(obj)``, ``sorted(obj)``,
``tuple(obj)``), collect victims and mutate after the loop, or restructure
as a ``while`` over an explicit worklist.

The check is a deliberate static approximation: it matches the *textual*
dotted path of the iterated expression (``self._active``,
``self._active.items()``) against mutator calls and subscript writes on the
same path inside the loop body.  Aliasing (``items = self._active`` then
mutating ``self._active``) is out of reach, as is mutation behind a helper
call — runtime ``RuntimeError`` still covers those.  In-place value updates
(``counts[key] += 1``) are allowed: they cannot resize the container.
"""

import ast
from typing import Iterator, Optional

from repro.analysis.lint.core import LintRule, ModuleContext, Violation, register

#: dict/set methods that add or remove elements (resize the container).
MUTATOR_METHODS = frozenset(
    {"add", "clear", "discard", "pop", "popitem", "remove", "setdefault", "update"}
)

#: Wrapping the iterable in one of these takes a snapshot, so mutating the
#: original container inside the loop is safe.
_SNAPSHOT_WRAPPERS = frozenset({"list", "sorted", "tuple"})

#: Zero-argument view methods that iterate the receiver itself.
_VIEW_METHODS = frozenset({"items", "keys", "values"})


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as a string for Name/Attribute chains, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _iterated_container(iter_node: ast.AST) -> Optional[str]:
    """The dotted path of the live container a loop iterates, if any.

    ``for x in obj`` and ``for x in obj.items()/keys()/values()`` both
    iterate ``obj`` directly; ``for x in list(obj)`` iterates a snapshot and
    returns None, as does anything too dynamic to name statically.
    """
    if isinstance(iter_node, ast.Call):
        func = iter_node.func
        if isinstance(func, ast.Name) and func.id in _SNAPSHOT_WRAPPERS:
            return None
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _VIEW_METHODS
            and not iter_node.args
            and not iter_node.keywords
        ):
            return _dotted(func.value)
        return None
    return _dotted(iter_node)


def _mutation_label(node: ast.AST, container: str) -> Optional[str]:
    """How ``node`` mutates ``container``, or None when it does not."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in MUTATOR_METHODS and _dotted(node.func.value) == container:
            return f"{container}.{node.func.attr}(...)"
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Subscript) and _dotted(target.value) == container:
                return f"assignment to {container}[...]"
    if isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Subscript) and _dotted(target.value) == container:
                return f"del {container}[...]"
    return None


@register
class NoMutationDuringIteration(LintRule):
    name = "no-mutation-during-iteration"
    description = (
        "mutating a dict/set while looping over it (or its .items()/.keys()/"
        ".values() view) in repro/sim and repro/net skips or repeats elements; "
        "iterate a list(...)/sorted(...) snapshot or mutate after the loop"
    )

    _SCOPES = ("repro/sim", "repro/net")

    def violations(self, ctx: ModuleContext) -> Iterator[Violation]:
        if not any(ctx.in_package(scope) for scope in self._SCOPES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            container = _iterated_container(node.iter)
            if container is None:
                continue
            # Only the loop body runs mid-iteration; orelse runs after the
            # iterator is exhausted, where mutation is safe again.
            for statement in node.body:
                for inner in ast.walk(statement):
                    label = _mutation_label(inner, container)
                    if label is not None:
                        yield self.violation(
                            ctx,
                            inner,
                            f"{label} resizes the container this loop iterates; "
                            "iterate a list(...)/sorted(...) snapshot or collect "
                            "changes and apply them after the loop",
                        )
