"""Lint report rendering: human one-liners and deterministic JSON.

The JSON form goes through :func:`repro.metrics.export.dumps_deterministic`
— the same policy every other artifact in the repository uses — so two lint
runs over the same tree produce byte-identical reports that CI can diff or
archive.
"""

from typing import Dict, List

from repro.analysis.lint.core import LintReport
from repro.metrics.export import dumps_deterministic

#: Exit codes: clean tree / at least one violation / usage or I/O error.
EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2

#: Schema version of the JSON report payload.
REPORT_SCHEMA = 1


def render_human(report: LintReport) -> str:
    """One line per violation plus a trailing summary line."""
    lines = [violation.render() for violation in report.violations]
    summary = (
        f"{len(report.violations)} violation(s), {report.suppressed} suppressed, "
        f"{report.files_checked} file(s) checked"
    )
    if report.clean:
        summary = (
            f"clean: 0 violations, {report.suppressed} suppressed, "
            f"{report.files_checked} file(s) checked"
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The deterministic JSON report (sorted keys, trailing newline)."""
    violations: List[Dict[str, object]] = [
        {
            "column": violation.column,
            "file": violation.path,
            "line": violation.line,
            "message": violation.message,
            "rule": violation.rule,
        }
        for violation in report.violations
    ]
    payload = {
        "clean": report.clean,
        "files_checked": report.files_checked,
        "rules": list(report.rules),
        "schema": REPORT_SCHEMA,
        "suppressed": report.suppressed,
        "violations": violations,
    }
    return dumps_deterministic(payload)


def exit_code(report: LintReport) -> int:
    """The process exit code a lint run maps to."""
    return EXIT_CLEAN if report.clean else EXIT_VIOLATIONS
