"""Static analysis: an AST-based linter for the repository's invariants.

The ROADMAP's standing contracts — byte-identical determinism across
``--workers``, the :func:`repro.metrics.export.dumps_deterministic` JSON
policy, linear packet-pool ownership, store keys that never hash execution
details, and the timer-wheel sequence discipline — are enforced at runtime
by golden traces and property tests.  This package enforces them *statically*
so a violation is caught at review time on every path, not just the
exercised ones.

Run it as ``repro-mmptcp lint [paths...]`` or
``python -m repro.analysis.lint [paths...]``.  Findings can be silenced per
line with a justified ``# repro: allow[rule-name]`` comment; naming an
unknown rule is itself an error, so suppressions cannot rot silently.
"""

# Importing the rule modules registers every rule with the core registry.
from repro.analysis.lint import (
    rules_determinism,
    rules_json,
    rules_mutation,
    rules_pool,
    rules_schema,
    rules_store,
    rules_timers,
)
from repro.analysis.lint.core import (
    LintReport,
    LintRule,
    ModuleContext,
    Violation,
    all_rule_names,
    iter_python_files,
    lint_paths,
    registered_rules,
)
from repro.analysis.lint.report import (
    EXIT_CLEAN,
    EXIT_USAGE,
    EXIT_VIOLATIONS,
    render_human,
    render_json,
)

__all__ = [
    "EXIT_CLEAN",
    "EXIT_USAGE",
    "EXIT_VIOLATIONS",
    "LintReport",
    "LintRule",
    "ModuleContext",
    "Violation",
    "all_rule_names",
    "iter_python_files",
    "lint_paths",
    "registered_rules",
    "render_human",
    "render_json",
]
