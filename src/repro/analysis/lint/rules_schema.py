"""Rule: the serialised field surface may only change with a schema bump.

Store keys and artifact hashes cover the *serialised form* of a run: the
``ExperimentConfig`` field set (``config_to_dict`` walks
``dataclasses.fields``, so every added field changes every key), the fault
event / flow record / snapshot field sets, the dict keys
``store/serialize.py`` writes, and the envelope keys ``run_key`` hashes.
Changing any of them while leaving ``STORE_SCHEMA_VERSION`` alone silently
invalidates every existing store: old artifacts either stop matching what a
re-run would produce or — worse — keep masquerading as valid cache hits for
configs that now mean something else.

This rule makes that contract reviewable: it fingerprints the whole
serialised surface (statically, from the ASTs on disk) and pins the
fingerprint to the schema version in :data:`_PINNED_FINGERPRINTS`.  Editing
the surface without bumping the version — or bumping the version without
re-pinning — is flagged on the ``STORE_SCHEMA_VERSION`` line itself.  The
intended workflow on a deliberate change:

1. bump ``STORE_SCHEMA_VERSION`` in ``repro/store/canonical.py`` (and say
   why in its version-history comment);
2. run the linter; the violation message reports the new fingerprint;
3. pin it here under the new version.
"""

import ast
import hashlib
import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.lint.core import LintRule, ModuleContext, Violation, register

#: schema version -> fingerprint of the serialised field surface.  Every
#: entry is a deliberate decision: pin a new pair only after confirming the
#: surface change warrants (and received) a version bump.
_PINNED_FINGERPRINTS = {
    # v4: the fidelity axis (ExperimentConfig.fidelity) joined the config
    # field set, changing every serialised config and therefore every key.
    4: "2b473dfdecf6155f82ab0c2520215e401795b35c8513ba11722b3079846c7850",
}

#: The dataclasses whose field sets make up the serialised surface, as
#: (path relative to canonical.py's parent, class name, label) triples.
_SURFACE_CLASSES: Tuple[Tuple[str, str, str], ...] = (
    ("../experiments/config.py", "ExperimentConfig", "config"),
    ("../net/faults.py", "FaultEvent", "fault_event"),
    ("../metrics/records.py", "FlowRecord", "flow_record"),
    ("../net/monitor.py", "NetworkSnapshot", "network_snapshot"),
    ("../net/monitor.py", "LayerLossStats", "layer_loss"),
)


def _parse(path: Path) -> Optional[ast.Module]:
    try:
        return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except (OSError, SyntaxError):
        return None


def _dataclass_field_names(tree: ast.Module, class_name: str) -> Optional[List[str]]:
    """The annotated field names of ``class_name``, sorted; None if absent."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return sorted(
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
            )
    return None


def _string_dict_keys(tree: ast.Module) -> List[str]:
    """Every string key of every dict literal in ``tree``, sorted and unique."""
    keys = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
    return sorted(keys)


def _declared_schema_version(tree: ast.Module) -> Optional[Tuple[ast.AST, int]]:
    """The ``STORE_SCHEMA_VERSION = <int>`` assignment node and its value."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "STORE_SCHEMA_VERSION"
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, int)
                ):
                    return node, node.value.value
    return None


def surface_fingerprint(canonical_path: Path, canonical_tree: ast.Module) -> Tuple[Optional[str], List[str]]:
    """The serialised-surface fingerprint, plus any problems encountered.

    Returns ``(fingerprint, problems)``; the fingerprint is None when a
    surface file is missing or unparsable (each such file is named in
    ``problems``, so the check degrades to an explicit finding instead of
    silently passing).
    """
    base = canonical_path.parent
    surface: Dict[str, object] = {
        # run_key's envelope and workload_recipe's keys live in canonical.py
        # itself, which the driver already parsed.
        "canonical_keys": _string_dict_keys(canonical_tree),
    }
    problems: List[str] = []

    serialize_path = base / "serialize.py"
    serialize_tree = _parse(serialize_path)
    if serialize_tree is None:
        problems.append(str(serialize_path))
    else:
        surface["serialize_keys"] = _string_dict_keys(serialize_tree)

    for relative, class_name, label in _SURFACE_CLASSES:
        path = (base / relative).resolve()
        tree = _parse(path)
        names = _dataclass_field_names(tree, class_name) if tree is not None else None
        if names is None:
            problems.append(f"{path} ({class_name})")
        else:
            surface[label] = names

    if problems:
        return None, problems
    encoded = json.dumps(  # repro: allow[no-raw-json] -- hashed, never stored
        surface, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest(), []


@register
class SchemaVersionBump(LintRule):
    name = "schema-version-bump"
    description = (
        "the serialised field surface (config/fault/record/snapshot fields, "
        "serialize.py keys, run_key envelope) may only change together with "
        "a STORE_SCHEMA_VERSION bump pinned in rules_schema"
    )

    _SCOPE = "repro/store/canonical.py"

    def violations(self, ctx: ModuleContext) -> Iterator[Violation]:
        if ctx.package_path != self._SCOPE:
            return
        declared = _declared_schema_version(ctx.tree)
        if declared is None:
            # No literal version declared: a partial module (test fixture) is
            # out of scope, and deleting the constant from the real module
            # breaks imports long before lint runs.
            return
        anchor, version = declared
        fingerprint, problems = surface_fingerprint(ctx.path, ctx.tree)
        if fingerprint is None:
            for problem in problems:
                yield self.violation(
                    ctx,
                    anchor,
                    f"cannot fingerprint the serialised surface: {problem} is "
                    "missing or unparsable",
                )
            return
        pinned = _PINNED_FINGERPRINTS.get(version)
        if pinned is None:
            yield self.violation(
                ctx,
                anchor,
                f"STORE_SCHEMA_VERSION {version} has no pinned surface "
                f"fingerprint; after confirming the bump is deliberate, pin "
                f"{{{version}: \"{fingerprint}\"}} in "
                "repro/analysis/lint/rules_schema.py",
            )
        elif pinned != fingerprint:
            yield self.violation(
                ctx,
                anchor,
                f"the serialised field surface changed (fingerprint "
                f"{fingerprint}, pinned {pinned} for version {version}) without "
                "a STORE_SCHEMA_VERSION bump; old store artifacts would go "
                "stale silently — bump the version in canonical.py and pin the "
                "new fingerprint in rules_schema.py",
            )
