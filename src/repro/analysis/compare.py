"""Comparing experiment results.

The paper's evaluation is a set of *pairwise comparisons* on identical
workloads (MPTCP vs MMPTCP, switching policy A vs B, ...).  This module
turns two or more :class:`~repro.metrics.collector.ExperimentMetrics` (or
their flat summary dictionaries) into explicit per-metric comparisons, and
provides a small regression checker so a stored baseline summary can guard
against silent behaviour changes in the simulator or the protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.metrics.collector import ExperimentMetrics

Summary = Mapping[str, float]
MetricsOrSummary = Union[ExperimentMetrics, Summary]

#: Metrics where a smaller value is the better outcome.
LOWER_IS_BETTER = frozenset(
    {
        "short_fct_mean_ms",
        "short_fct_std_ms",
        "short_fct_p99_ms",
        "rto_incidence",
        "tail_over_200ms",
        "core_loss_rate",
        "aggregation_loss_rate",
        "edge_loss_rate",
    }
)

#: Metrics where a larger value is the better outcome.
HIGHER_IS_BETTER = frozenset(
    {
        "short_completion_rate",
        "long_flow_throughput_mbps",
        "core_utilisation",
    }
)


def _as_summary(value: MetricsOrSummary) -> Dict[str, float]:
    if isinstance(value, ExperimentMetrics):
        return value.summary_dict()
    return dict(value)


@dataclass(frozen=True)
class MetricComparison:
    """One metric measured under two configurations."""

    metric: str
    baseline: float
    candidate: float

    @property
    def absolute_delta(self) -> float:
        """Candidate minus baseline."""
        return self.candidate - self.baseline

    @property
    def relative_delta(self) -> float:
        """Relative change versus the baseline (0.0 when the baseline is zero and unchanged)."""
        if self.baseline == 0:
            return 0.0 if self.candidate == 0 else float("inf")
        return (self.candidate - self.baseline) / abs(self.baseline)

    @property
    def direction(self) -> str:
        """``better`` / ``worse`` / ``equal`` / ``neutral`` for the candidate."""
        if self.candidate == self.baseline:
            return "equal"
        candidate_smaller = self.candidate < self.baseline
        if self.metric in LOWER_IS_BETTER:
            return "better" if candidate_smaller else "worse"
        if self.metric in HIGHER_IS_BETTER:
            return "worse" if candidate_smaller else "better"
        return "neutral"


def compare_summaries(
    baseline: MetricsOrSummary,
    candidate: MetricsOrSummary,
    metrics: Optional[Sequence[str]] = None,
) -> List[MetricComparison]:
    """Per-metric comparison of two runs.

    Args:
        baseline / candidate: metrics objects or flat summary dictionaries.
        metrics: restrict the comparison to these keys (default: every key
            present in both summaries, in the baseline's order).
    """
    base = _as_summary(baseline)
    cand = _as_summary(candidate)
    keys = list(metrics) if metrics is not None else [key for key in base if key in cand]
    comparisons = []
    for key in keys:
        if key not in base or key not in cand:
            raise KeyError(f"metric {key!r} missing from one of the summaries")
        comparisons.append(MetricComparison(metric=key, baseline=base[key], candidate=cand[key]))
    return comparisons


def compare_protocols(
    results: Mapping[str, MetricsOrSummary],
    metric: str,
    lower_is_better: Optional[bool] = None,
) -> List[tuple]:
    """Rank protocols by one metric.

    Returns ``(protocol, value)`` pairs sorted best-first.  The ranking
    direction is taken from the metric conventions above unless
    ``lower_is_better`` is given explicitly.
    """
    if lower_is_better is None:
        if metric in LOWER_IS_BETTER:
            lower_is_better = True
        elif metric in HIGHER_IS_BETTER:
            lower_is_better = False
        else:
            raise ValueError(
                f"no ranking convention known for {metric!r}; pass lower_is_better explicitly"
            )
    pairs = []
    for protocol, value in results.items():
        summary = _as_summary(value)
        if metric not in summary:
            raise KeyError(f"metric {metric!r} missing from {protocol!r}")
        pairs.append((protocol, summary[metric]))
    return sorted(pairs, key=lambda item: item[1], reverse=not lower_is_better)


def regression_check(
    baseline: MetricsOrSummary,
    candidate: MetricsOrSummary,
    tolerances: Mapping[str, float],
) -> List[str]:
    """Check a new run against a stored baseline.

    ``tolerances`` maps metric name to the maximum allowed relative
    degradation (e.g. ``{"short_fct_mean_ms": 0.2}`` allows the mean FCT to
    grow by at most 20 %).  Only degradations count: improvements never
    trigger a violation.  Returns a human-readable message per violated
    metric (empty list = no regressions).
    """
    violations: List[str] = []
    for comparison in compare_summaries(baseline, candidate, metrics=list(tolerances)):
        allowed = tolerances[comparison.metric]
        if allowed < 0:
            raise ValueError("tolerances must be non-negative")
        if comparison.direction != "worse":
            continue
        magnitude = abs(comparison.relative_delta)
        if magnitude > allowed:
            violations.append(
                f"{comparison.metric}: {comparison.baseline:.4g} -> {comparison.candidate:.4g} "
                f"({100 * magnitude:.1f}% worse, tolerance {100 * allowed:.1f}%)"
            )
    return violations
