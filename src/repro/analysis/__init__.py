"""Post-processing of experiment results: comparisons and report generation."""

from repro.analysis.compare import (
    MetricComparison,
    compare_protocols,
    compare_summaries,
    regression_check,
)
from repro.analysis.report import (
    experiment_section,
    markdown_table,
    report_document,
    summary_comparison_markdown,
)

__all__ = [
    "MetricComparison",
    "compare_protocols",
    "compare_summaries",
    "regression_check",
    "experiment_section",
    "markdown_table",
    "report_document",
    "summary_comparison_markdown",
]
