"""Congestion-control policies: NewReno, DCTCP, and MPTCP's LIA."""

from repro.transport.cc.base import (
    LOSS_FAST_RETRANSMIT,
    LOSS_TIMEOUT,
    CongestionController,
    NewRenoController,
)
from repro.transport.cc.dctcp_alpha import DctcpController
from repro.transport.cc.lia import LiaController

__all__ = [
    "LOSS_FAST_RETRANSMIT",
    "LOSS_TIMEOUT",
    "CongestionController",
    "NewRenoController",
    "DctcpController",
    "LiaController",
]
