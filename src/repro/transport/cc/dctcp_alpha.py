"""DCTCP congestion control (Alizadeh et al., SIGCOMM 2010).

DCTCP is one of the single-path, latency-oriented protocols the paper's
introduction discusses (and rejects as a universal answer because it needs
switch ECN support and cannot exploit multiple paths).  It is included as a
baseline: switches mark ECN-capable packets once their queue exceeds a
threshold ``K``, receivers echo the marks, and the sender keeps an EWMA
``alpha`` of the fraction of marked bytes per window, cutting its window by
``alpha / 2`` once per RTT instead of halving on loss.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.transport.cc.base import LOSS_TIMEOUT, NewRenoController

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.transport.tcp import TcpSender


class DctcpController(NewRenoController):
    """ECN-proportional congestion control."""

    name = "dctcp"

    def __init__(self, gain: float = 1.0 / 16.0) -> None:
        if not 0 < gain <= 1:
            raise ValueError("DCTCP gain must be in (0, 1]")
        self.gain = gain
        self.alpha = 0.0
        self._window_end = 0
        self._acked_bytes = 0
        self._marked_bytes = 0

    def on_established(self, sender: "TcpSender") -> None:
        self._window_end = sender.snd_nxt

    def on_ecn_feedback(self, sender: "TcpSender", newly_acked_bytes: int, marked: bool) -> None:
        self._acked_bytes += newly_acked_bytes
        if marked:
            self._marked_bytes += newly_acked_bytes

        # One observation window ends when the data outstanding at its start
        # has been fully acknowledged (approximately one RTT).
        if sender.snd_una < self._window_end:
            return
        if self._acked_bytes > 0:
            fraction = self._marked_bytes / self._acked_bytes
            self.alpha = (1.0 - self.gain) * self.alpha + self.gain * fraction
            if self._marked_bytes > 0:
                sender.cwnd = max(sender.mss, sender.cwnd * (1.0 - self.alpha / 2.0))
                sender.ssthresh = max(sender.cwnd, 2.0 * sender.mss)
        self._window_end = sender.snd_nxt
        self._acked_bytes = 0
        self._marked_bytes = 0

    def ssthresh_after_loss(self, sender: "TcpSender", kind: str) -> float:
        # Packet loss still triggers the standard reaction; DCTCP only changes
        # the response to ECN marks.
        if kind == LOSS_TIMEOUT:
            return max(sender.flight_size() / 2.0, 2.0 * sender.mss)
        return super().ssthresh_after_loss(sender, kind)
