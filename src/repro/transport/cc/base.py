"""Congestion-controller plug-in interface and the NewReno baseline.

A :class:`CongestionController` owns the *policy* decisions — how much to
grow the window per ACK and where to set ``ssthresh`` on a loss — while the
sender owns the *mechanics* (fast-recovery window inflation, what to
retransmit, timers).  This split lets MPTCP's coupled increase (LIA) and
DCTCP's ECN-proportional decrease reuse all of the sender machinery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.transport.tcp import TcpSender

#: Loss-event kinds passed to :meth:`CongestionController.ssthresh_after_loss`.
LOSS_FAST_RETRANSMIT = "fast_retransmit"
LOSS_TIMEOUT = "timeout"


class CongestionController:
    """Base class; concrete controllers override the growth/decrease hooks."""

    name = "base"

    def on_established(self, sender: "TcpSender") -> None:
        """Hook invoked when the connection (or subflow) completes its handshake."""

    def on_ack(self, sender: "TcpSender", newly_acked_bytes: int) -> None:
        """Grow the congestion window in response to ``newly_acked_bytes``."""
        raise NotImplementedError

    def ssthresh_after_loss(self, sender: "TcpSender", kind: str) -> float:
        """Return the new slow-start threshold after a loss event of ``kind``."""
        raise NotImplementedError

    def on_ecn_feedback(self, sender: "TcpSender", newly_acked_bytes: int, marked: bool) -> None:
        """React to ECN echo information carried by an ACK (default: ignore)."""


class NewRenoController(CongestionController):
    """Standard TCP NewReno growth and multiplicative decrease."""

    name = "newreno"

    def on_ack(self, sender: "TcpSender", newly_acked_bytes: int) -> None:
        if sender.cwnd < sender.ssthresh:
            # Slow start: one MSS per acknowledged segment (byte-counting,
            # capped at one MSS per ACK to avoid bursts from stretch ACKs).
            sender.cwnd += min(newly_acked_bytes, sender.mss)
        else:
            # Congestion avoidance: one MSS per window per RTT.
            sender.cwnd += sender.mss * sender.mss / max(sender.cwnd, 1.0)

    def ssthresh_after_loss(self, sender: "TcpSender", kind: str) -> float:
        return max(sender.flight_size() / 2.0, 2.0 * sender.mss)
