"""MPTCP Linked Increases Algorithm (LIA, RFC 6356).

Each MPTCP subflow keeps its own congestion window and reacts to its own
losses, but window *growth* is coupled across subflows so that a multi-path
connection is no more aggressive than a single TCP flow on its best path.
The per-ACK increase on subflow *i* is::

    min( alpha * acked * mss / cwnd_total ,  acked * mss / cwnd_i )

with::

    alpha = cwnd_total * max_i(cwnd_i / rtt_i^2) / ( sum_i(cwnd_i / rtt_i) )^2

Slow start remains uncoupled, as in the RFC.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.transport.cc.base import NewRenoController

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.transport.mptcp import MptcpConnection
    from repro.transport.tcp import TcpSender


class LiaController(NewRenoController):
    """Coupled congestion avoidance for one MPTCP subflow."""

    name = "lia"

    def __init__(self, connection: "MptcpConnection") -> None:
        self.connection = connection

    def _coupled_alpha(self) -> float:
        subflows = [
            subflow
            for subflow in self.connection.active_subflows()
            if subflow.cwnd > 0
        ]
        if not subflows:
            return 1.0
        total_cwnd = sum(subflow.cwnd for subflow in subflows)
        best = max(
            subflow.cwnd / (subflow.rto_estimator.smoothed_rtt**2) for subflow in subflows
        )
        denominator = sum(
            subflow.cwnd / subflow.rto_estimator.smoothed_rtt for subflow in subflows
        )
        if denominator <= 0:
            return 1.0
        return total_cwnd * best / (denominator**2)

    def on_ack(self, sender: "TcpSender", newly_acked_bytes: int) -> None:
        if sender.cwnd < sender.ssthresh:
            sender.cwnd += min(newly_acked_bytes, sender.mss)
            return
        total_cwnd = sum(
            subflow.cwnd for subflow in self.connection.active_subflows()
        ) or sender.cwnd
        alpha = self._coupled_alpha()
        acked = min(newly_acked_bytes, sender.mss)
        coupled_increase = alpha * acked * sender.mss / total_cwnd
        uncoupled_increase = acked * sender.mss / max(sender.cwnd, 1.0)
        sender.cwnd += min(coupled_increase, uncoupled_increase)
