"""Single-path TCP receiver.

The receiver answers the sender's SYN, acknowledges every data packet
cumulatively (generating the duplicate ACKs that drive fast retransmit), and
reports flow completion once the expected number of bytes has arrived
in order.  A DCTCP-capable variant simply echoes ECN marks back to the
sender (per-packet echo, the simplified feedback loop commonly used in
simulation studies).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.host import Host
from repro.net.packet import FLAG_ACK, FLAG_SYN, Packet, acquire_packet, make_ack
from repro.sim.engine import Simulator
from repro.sim.tracing import NULL_SINK, TraceSink
from repro.transport.base import Endpoint
from repro.transport.sequence import ReceiveBuffer

ReceiverCallback = Callable[["TcpReceiver"], None]


class TcpReceiver(Endpoint):
    """Receiving endpoint of a single-path TCP (or DCTCP) flow."""

    def __init__(
        self,
        simulator: Simulator,
        host: Host,
        local_port: Optional[int] = None,
        flow_id: int = 0,
        expected_bytes: Optional[int] = None,
        on_complete: Optional[ReceiverCallback] = None,
        echo_ecn: bool = False,
        trace: TraceSink = NULL_SINK,
    ) -> None:
        super().__init__(simulator, host, local_port, trace)
        self.flow_id = flow_id
        self.expected_bytes = expected_bytes
        self.on_complete = on_complete
        self.echo_ecn = echo_ecn
        self.buffer = ReceiveBuffer()
        self.peer_address: Optional[int] = None
        self.peer_port: Optional[int] = None
        self.established = False
        self.complete = False
        self.completion_time: Optional[float] = None
        self.first_data_time: Optional[float] = None
        self.acks_sent = 0
        self.data_packets_received = 0
        #: ACKs/SYN-ACKs our own NIC refused to send (down or congested
        #: uplink) — mirrors :attr:`SenderStats.send_fault_drops`.
        self.send_fault_drops = 0

    # ------------------------------------------------------------------

    def on_packet(self, packet: Packet) -> None:
        """Handle SYNs and data segments from the sender."""
        if packet.is_syn and not packet.is_ack:
            self._handle_syn(packet)
            return
        if packet.carries_data:
            self._handle_data(packet)

    # ------------------------------------------------------------------

    def _handle_syn(self, packet: Packet) -> None:
        # Learn (or confirm) the sender's canonical port; duplicate SYNs simply
        # elicit another SYN-ACK.
        self.peer_address = packet.src
        self.peer_port = packet.src_port
        self.established = True
        syn_ack = acquire_packet(
            flow_id=self.flow_id,
            src=self.host.address,
            dst=packet.src,
            src_port=self.local_port,
            dst_port=packet.src_port,
            flags=FLAG_SYN | FLAG_ACK,
            subflow_id=packet.subflow_id,
            sent_time=self.simulator.now,
        )
        if not self.transmit(syn_ack):
            self.send_fault_drops += 1

    def _handle_data(self, packet: Packet) -> None:
        if self.peer_port is None:
            # Data before any SYN: adopt the packet's source as the canonical
            # peer so the flow still makes progress (mirrors an accepting
            # socket with the handshake folded in).
            self.peer_address = packet.src
            self.peer_port = packet.src_port
        if self.first_data_time is None:
            self.first_data_time = self.simulator.now
        self.data_packets_received += 1
        self.buffer.add(packet.seq, packet.payload_size)
        self._send_ack(packet)
        self._check_completion()

    def _send_ack(self, packet: Packet) -> None:
        echo = self.echo_ecn and packet.ecn_ce
        ack = make_ack(
            packet,
            ack=self.buffer.rcv_nxt,
            dack=self.buffer.rcv_nxt,
            src_port=self.local_port,
            dst_port=self.peer_port,
            ecn_echo=echo,
            sent_time=self.simulator.now,
        )
        self.acks_sent += 1
        if not self.transmit(ack):
            self.send_fault_drops += 1

    def _check_completion(self) -> None:
        if self.complete or self.expected_bytes is None:
            return
        if self.buffer.rcv_nxt >= self.expected_bytes:
            self.complete = True
            self.completion_time = self.simulator.now
            if self.trace.enabled:
                self.trace.emit(
                    self.simulator.now, "flow_received", flow_id=self.flow_id, host=self.host.name
                )
            if self.on_complete is not None:
                self.on_complete(self)

    # ------------------------------------------------------------------

    @property
    def bytes_received_in_order(self) -> int:
        """Bytes delivered to the application so far."""
        return self.buffer.rcv_nxt
