"""MPTCP data schedulers.

The MPTCP connection keeps a single connection-level byte stream and hands
chunks of it to subflows.  Allocation is *demand driven*: a subflow asks for
data whenever its congestion window has room.  When several subflows could
send simultaneously (e.g. right after the handshake completes, or after an
application write), the scheduler decides the order in which they are
nudged, which determines who gets the scarce early bytes of a short flow.

Two classic policies are provided: round-robin and lowest-smoothed-RTT-first
(the default of the Linux MPTCP implementation).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.transport.mptcp import MptcpSubflow


class SubflowScheduler:
    """Base class: chooses the order in which subflows are offered send opportunities."""

    name = "base"

    def order(self, subflows: Sequence["MptcpSubflow"]) -> List["MptcpSubflow"]:
        """Return the subflows in the order they should be asked to send."""
        raise NotImplementedError


class RoundRobinScheduler(SubflowScheduler):
    """Rotate through subflows so allocation is spread evenly."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next_index = 0

    def order(self, subflows: Sequence["MptcpSubflow"]) -> List["MptcpSubflow"]:
        if not subflows:
            return []
        start = self._next_index % len(subflows)
        self._next_index = (self._next_index + 1) % len(subflows)
        rotated = list(subflows[start:]) + list(subflows[:start])
        return rotated


class LowestRttScheduler(SubflowScheduler):
    """Prefer the subflow with the smallest smoothed RTT (Linux default)."""

    name = "lowest_rtt"

    def order(self, subflows: Sequence["MptcpSubflow"]) -> List["MptcpSubflow"]:
        return sorted(subflows, key=lambda subflow: subflow.rto_estimator.smoothed_rtt)
