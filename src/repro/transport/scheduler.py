"""MPTCP data schedulers.

The MPTCP connection keeps a single connection-level byte stream and hands
chunks of it to subflows.  Allocation is *demand driven*: a subflow asks for
data whenever its congestion window has room.  The scheduler decides whether
that demand is served immediately (FCFS-style policies) or withheld so the
chunk can go to a preferred subflow instead (policy schedulers such as
round-robin and lowest-RTT).

The distinction matters because allocation here is irrevocable: once a DSN
range is mapped onto a subflow there is no reinjection, so a chunk spilled
onto a slow path stays there.  Policy schedulers are therefore *strict*:
only the head of :meth:`SubflowScheduler.order` may map the next chunk, and
every other subflow's demand is refused — even while the head's window is
full.  The connection's pump loop (``MptcpConnection._pump_scheduler``)
serves the head whenever a window-opening event fires anywhere, which keeps
the policy live without ever letting a chunk leak to a less preferred path.

Schedulers are registered by name in :data:`SCHEDULERS` and built with
:func:`make_scheduler`; the names are what ``ExperimentConfig.scheduler``
and the CLI accept.  ``fcfs`` reproduces the historical first-come
first-served allocation byte-for-byte and is the default.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.transport.mptcp import MptcpSubflow


class SubflowScheduler:
    """Base class: decides which subflow receives the next chunk of the stream."""

    name = "base"

    #: Demand-driven schedulers serve whichever subflow asks first (the
    #: classic FCFS behaviour); the connection never runs its pump loop for
    #: them.  Policy schedulers (``demand_driven = False``) instead grant a
    #: chunk only to the head of :meth:`order`; everyone else waits.
    demand_driven = False

    #: Duplicating schedulers (``redundant``) map every unacknowledged chunk
    #: onto *every* subflow; the connection switches to per-subflow cursors
    #: over the stream instead of a single shared allocation frontier.
    duplicates = False

    def order(self, subflows: Sequence["MptcpSubflow"]) -> List["MptcpSubflow"]:
        """Return the subflows in preference order (most preferred first)."""
        raise NotImplementedError

    def chunk_assigned(
        self, subflow: "MptcpSubflow", subflows: Sequence["MptcpSubflow"]
    ) -> None:
        """Hook: ``subflow`` consumed one chunk (rotation bookkeeping)."""


def _by_subflow_id(subflows: Sequence["MptcpSubflow"]) -> List["MptcpSubflow"]:
    return sorted(subflows, key=lambda subflow: subflow.subflow_id)


class FcfsScheduler(SubflowScheduler):
    """First-come first-served: every requesting subflow is granted data.

    This is the historical allocation order of the library (and therefore
    the default): subflows pull chunks in the order their window-opening
    events happen to fire, with no connection-level preference.
    """

    name = "fcfs"
    demand_driven = True

    def order(self, subflows: Sequence["MptcpSubflow"]) -> List["MptcpSubflow"]:
        return _by_subflow_id(subflows)


class RoundRobinScheduler(SubflowScheduler):
    """Rotate through subflows so allocation is spread evenly.

    The rotation point advances only when a subflow actually consumes a
    chunk — not once per ``order()`` call — so repeated consultations
    cannot skew the rotation.  Under strict dispatch the stream waits for
    the subflow whose turn it is, which reproduces round robin's classic
    head-of-line blocking on heterogeneous paths.
    """

    name = "round_robin"

    def __init__(self) -> None:
        #: subflow_id of the last subflow that consumed a chunk, or None
        #: before any allocation.
        self._last_consumer: int | None = None

    def order(self, subflows: Sequence["MptcpSubflow"]) -> List["MptcpSubflow"]:
        if not subflows:
            return []
        ordered = _by_subflow_id(subflows)
        if self._last_consumer is None:
            return ordered
        for index, subflow in enumerate(ordered):
            if subflow.subflow_id > self._last_consumer:
                return ordered[index:] + ordered[:index]
        # Every id is <= the last consumer's: wrap back to the lowest id.
        return ordered

    def chunk_assigned(
        self, subflow: "MptcpSubflow", subflows: Sequence["MptcpSubflow"]
    ) -> None:
        self._last_consumer = subflow.subflow_id


class LowestRttScheduler(SubflowScheduler):
    """Prefer the subflow with the smallest smoothed RTT.

    The handshake round-trip seeds every subflow's estimate, so the genuinely
    shortest path wins from the first chunk; as its queue builds its smoothed
    RTT inflates and the preference shifts, which is what lets longer paths
    take over under load.  Ties break deterministically on ``subflow_id`` so
    traces stay stable.
    """

    name = "lowest_rtt"

    def order(self, subflows: Sequence["MptcpSubflow"]) -> List["MptcpSubflow"]:
        return sorted(
            subflows,
            key=lambda subflow: (subflow.rto_estimator.smoothed_rtt, subflow.subflow_id),
        )


class RedundantScheduler(SubflowScheduler):
    """Duplicate every unacknowledged chunk across all subflows.

    Each subflow walks its own cursor over the stream, skipping data that is
    already data-level acknowledged, so a chunk lost on one path is usually
    already in flight on another — trading goodput for loss resilience
    (the SRMCA-style resilient multipath variant).
    """

    name = "redundant"
    demand_driven = True
    duplicates = True

    def order(self, subflows: Sequence["MptcpSubflow"]) -> List["MptcpSubflow"]:
        return _by_subflow_id(subflows)


#: Registry of scheduler names accepted by ``ExperimentConfig.scheduler``.
SCHEDULERS: Dict[str, Type[SubflowScheduler]] = {
    FcfsScheduler.name: FcfsScheduler,
    RoundRobinScheduler.name: RoundRobinScheduler,
    LowestRttScheduler.name: LowestRttScheduler,
    RedundantScheduler.name: RedundantScheduler,
}

#: Convenience aliases (Linux mptcp naming) resolved by :func:`make_scheduler`.
SCHEDULER_ALIASES: Dict[str, str] = {
    "default": FcfsScheduler.name,
    "roundrobin": RoundRobinScheduler.name,
}


def scheduler_names() -> tuple:
    """The canonical scheduler names, sorted (for CLI choices and docs)."""
    return tuple(sorted(SCHEDULERS))


def make_scheduler(name: str) -> SubflowScheduler:
    """Build a fresh scheduler instance by (possibly aliased) name.

    Schedulers are stateful (round-robin rotation), so every connection must
    receive its own instance.
    """
    canonical = SCHEDULER_ALIASES.get(name, name)
    try:
        return SCHEDULERS[canonical]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; expected one of {scheduler_names()}"
        ) from None
