"""MPTCP path managers: policies that decide which subflows a connection opens.

Linux MPTCP separates *what data goes where* (the scheduler) from *which
subflows exist at all* (the path manager).  This module provides the same
split for the simulator:

* ``ndiffports`` — the historical behaviour: N subflows between the same
  address pair, distinguished only by source port, so hash-based ECMP
  spreads them over the fabric's equal-cost paths.
* ``fullmesh`` — one subflow per *local interface*, each pinned to that
  interface as its egress, meshing the host's local addresses against the
  peer (dual-homed topologies get one subflow per uplink; a single-homed
  host degenerates to one subflow).

Path managers are registered by name in :data:`PATH_MANAGERS` and built with
:func:`make_path_manager`; the names are what ``ExperimentConfig.path_manager``
and the CLI accept.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.transport.mptcp import MptcpConnection, MptcpSubflow


class PathManager:
    """Base class: owns subflow creation for an MPTCP connection."""

    name = "base"

    def create_subflows(
        self, connection: "MptcpConnection", count: int, first_subflow_id: int
    ) -> List["MptcpSubflow"]:
        """Build (but do not start) the subflows for one creation request.

        Called once at connection construction and, for MMPTCP, again at the
        phase switch.  ``count`` is the connection's configured subflow
        count; a path manager may reinterpret it (``fullmesh`` derives the
        count from the host's interfaces instead).
        """
        raise NotImplementedError


class NdiffportsPathManager(PathManager):
    """``count`` subflows over distinct source ports (the historical default)."""

    name = "ndiffports"

    def create_subflows(
        self, connection: "MptcpConnection", count: int, first_subflow_id: int
    ) -> List["MptcpSubflow"]:
        return [
            connection._make_subflow(first_subflow_id + offset) for offset in range(count)
        ]


class FullMeshPathManager(PathManager):
    """One subflow per local interface, pinned to that interface as egress.

    The configured subflow count is ignored: the mesh of local addresses
    against the (single) peer address determines the subflow population,
    exactly as Linux's fullmesh path manager derives it from the routing
    table.  On a dual-homed FatTree every host contributes two pinned
    subflows; on single-homed fabrics the connection degenerates to one.
    """

    name = "fullmesh"

    def create_subflows(
        self, connection: "MptcpConnection", count: int, first_subflow_id: int
    ) -> List["MptcpSubflow"]:
        interfaces = connection.host.interfaces
        if not interfaces:
            raise RuntimeError(
                f"host {connection.host.name} has no interfaces to mesh over"
            )
        # Mesh over the *live* local interfaces: after a host migration the
        # old attachment's interface stays in the table (indices are pinned)
        # but is permanently down — a subflow pinned to it would black-hole.
        # When every interface is down (mid-downtime) fall back to the full
        # set so creation never produces zero subflows.
        indices = [index for index, iface in enumerate(interfaces) if iface.up]
        if not indices:
            indices = list(range(len(interfaces)))
        subflows = []
        for offset, index in enumerate(indices):
            subflow = connection._make_subflow(first_subflow_id + offset)
            subflow.egress_interface = index
            subflows.append(subflow)
        return subflows


#: Registry of path-manager names accepted by ``ExperimentConfig.path_manager``.
PATH_MANAGERS: Dict[str, Type[PathManager]] = {
    NdiffportsPathManager.name: NdiffportsPathManager,
    FullMeshPathManager.name: FullMeshPathManager,
}


def path_manager_names() -> tuple:
    """The canonical path-manager names, sorted (for CLI choices and docs)."""
    return tuple(sorted(PATH_MANAGERS))


def make_path_manager(name: str) -> PathManager:
    """Build a fresh path manager instance by name."""
    try:
        return PATH_MANAGERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown path manager {name!r}; expected one of {path_manager_names()}"
        ) from None
