"""D2TCP endpoints (Vamanan et al., SIGCOMM 2012).

D2TCP is the second deadline-oriented, single-path baseline the paper's
introduction discusses (alongside DCTCP and D3) and rejects as a universal
answer: it needs switch ECN support, per-flow deadline knowledge at the
application layer, and it cannot exploit the multiple paths a data-centre
fabric offers.  It is included here so the benchmark harness can show where
deadline-aware single-path transports sit relative to MMPTCP on the same
workload.

The protocol is DCTCP plus *gamma correction*: each sender keeps DCTCP's
EWMA ``alpha`` of the fraction of ECN-marked bytes, but scales its window
reduction by the flow's deadline imminence::

    p = alpha ** d          # d < 1 for far deadlines, d > 1 for near ones
    cwnd = cwnd * (1 - p / 2)

where ``d = Tc / D`` — the time the flow still *needs* divided by the time
it still *has*.  Far-deadline flows back off more than DCTCP would, near-
deadline flows back off less, and flows without a deadline behave exactly
like DCTCP (``d = 1``).

Packet-pool discipline is inherited from :class:`TcpSender`: the gamma
correction only reads congestion state from ACK fields while they are live
inside ``on_packet``, never retaining the packet itself.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Optional

from repro.net.host import Host
from repro.sim.engine import Simulator
from repro.sim.tracing import NULL_SINK, TraceSink
from repro.transport.base import TcpConfig
from repro.transport.cc.dctcp_alpha import DctcpController
from repro.transport.dctcp import DctcpReceiver
from repro.transport.tcp import TcpSender

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    pass

#: Gamma-correction exponent clamp recommended by the D2TCP paper.
MIN_DEADLINE_FACTOR = 0.5
MAX_DEADLINE_FACTOR = 2.0


class D2tcpController(DctcpController):
    """DCTCP's alpha estimator with deadline-driven gamma correction."""

    name = "d2tcp"

    def __init__(self, gain: float = 1.0 / 16.0) -> None:
        super().__init__(gain=gain)
        self.last_deadline_factor = 1.0

    # ------------------------------------------------------------------

    def _deadline_factor(self, sender: "TcpSender") -> float:
        """The exponent ``d = Tc / D`` clamped to the paper's [0.5, 2.0] range.

        ``Tc`` is estimated as the number of round trips still required at
        the current window times the smoothed RTT; ``D`` is the time left
        until the flow's absolute deadline.  Senders without a deadline (or
        without an RTT estimate yet) fall back to ``d = 1`` — plain DCTCP.
        """
        deadline = getattr(sender, "deadline_time", None)
        if deadline is None:
            return 1.0
        srtt = sender.rto_estimator.smoothed_rtt
        if srtt <= 0 or not (srtt < float("inf")):
            return 1.0
        remaining_bytes = max(0, sender.total_bytes - sender.snd_una)
        if remaining_bytes == 0:
            return 1.0
        window = max(sender.cwnd, float(sender.mss))
        needed_s = (remaining_bytes / window) * srtt
        available_s = deadline - sender.simulator.now
        if available_s <= 0:
            # Deadline already missed: be as aggressive as the clamp allows.
            return MAX_DEADLINE_FACTOR
        factor = needed_s / available_s
        return min(MAX_DEADLINE_FACTOR, max(MIN_DEADLINE_FACTOR, factor))

    # ------------------------------------------------------------------

    def on_ecn_feedback(self, sender: "TcpSender", newly_acked_bytes: int, marked: bool) -> None:
        """Update alpha exactly like DCTCP but apply the gamma-corrected cut."""
        self._acked_bytes += newly_acked_bytes
        if marked:
            self._marked_bytes += newly_acked_bytes
        if sender.snd_una < self._window_end:
            return
        if self._acked_bytes > 0:
            fraction = self._marked_bytes / self._acked_bytes
            self.alpha = (1.0 - self.gain) * self.alpha + self.gain * fraction
            if self._marked_bytes > 0:
                d = self._deadline_factor(sender)
                self.last_deadline_factor = d
                penalty = self.alpha**d
                sender.cwnd = max(sender.mss, sender.cwnd * (1.0 - penalty / 2.0))
                sender.ssthresh = max(sender.cwnd, 2.0 * sender.mss)
        self._window_end = sender.snd_nxt
        self._acked_bytes = 0
        self._marked_bytes = 0


class D2tcpSender(TcpSender):
    """A deadline-aware DCTCP sender.

    Args:
        deadline_s: deadline *relative to the flow's start time* in seconds
            (the convention used by the D2TCP evaluation); ``None`` makes the
            sender behave exactly like DCTCP.
    """

    def __init__(
        self,
        simulator: Simulator,
        host: Host,
        destination: int,
        destination_port: int,
        total_bytes: int,
        flow_id: int = 0,
        config: TcpConfig = TcpConfig(),
        deadline_s: Optional[float] = None,
        dctcp_gain: float = 1.0 / 16.0,
        local_port: Optional[int] = None,
        on_complete: Optional[Callable[["TcpSender"], None]] = None,
        trace: TraceSink = NULL_SINK,
    ) -> None:
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive when given")
        ecn_config = config if config.ecn_enabled else replace(config, ecn_enabled=True)
        self.deadline_s = deadline_s
        #: Absolute simulated time of the deadline; set when the flow starts.
        self.deadline_time: Optional[float] = None
        super().__init__(
            simulator,
            host,
            destination,
            destination_port,
            total_bytes,
            flow_id=flow_id,
            config=ecn_config,
            congestion_control=D2tcpController(gain=dctcp_gain),
            local_port=local_port,
            on_complete=on_complete,
            trace=trace,
        )

    def start(self) -> None:
        """Start the flow and pin its absolute deadline to the clock."""
        if not self.started and self.deadline_s is not None:
            self.deadline_time = self.simulator.now + self.deadline_s
        super().start()

    # ------------------------------------------------------------------

    @property
    def deadline_factor(self) -> float:
        """The gamma-correction exponent applied at the last window adjustment."""
        controller = self.cc
        assert isinstance(controller, D2tcpController)
        return controller.last_deadline_factor

    @property
    def alpha(self) -> float:
        """Current congestion estimate (identical semantics to DCTCP's alpha)."""
        controller = self.cc
        assert isinstance(controller, D2tcpController)
        return controller.alpha

    def deadline_missed(self) -> bool:
        """True if the flow finished after its deadline (or has not finished yet)."""
        if self.deadline_time is None:
            return False
        if self.stats.completion_time is None:
            return self.simulator.now > self.deadline_time
        return self.stats.completion_time > self.deadline_time


#: D2TCP reuses DCTCP's receiver: echo every Congestion-Experienced mark.
D2tcpReceiver = DctcpReceiver
