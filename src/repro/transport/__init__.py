"""Transport protocols: TCP NewReno, DCTCP and MPTCP (plus shared machinery)."""

from repro.transport.base import Endpoint, SenderStats, TcpConfig
from repro.transport.cc import (
    CongestionController,
    DctcpController,
    LiaController,
    NewRenoController,
)
from repro.transport.d2tcp import D2tcpController, D2tcpReceiver, D2tcpSender
from repro.transport.dctcp import DctcpReceiver, DctcpSender
from repro.transport.mptcp import MptcpConnection, MptcpReceiver, MptcpSubflow
from repro.transport.receiver import TcpReceiver
from repro.transport.rto import RtoEstimator
from repro.transport.scheduler import (
    LowestRttScheduler,
    RoundRobinScheduler,
    SubflowScheduler,
)
from repro.transport.sequence import ReceiveBuffer
from repro.transport.tcp import TcpSender

__all__ = [
    "Endpoint",
    "SenderStats",
    "TcpConfig",
    "D2tcpController",
    "D2tcpReceiver",
    "D2tcpSender",
    "DctcpReceiver",
    "DctcpSender",
    "MptcpConnection",
    "MptcpReceiver",
    "MptcpSubflow",
    "TcpReceiver",
    "RtoEstimator",
    "LowestRttScheduler",
    "RoundRobinScheduler",
    "SubflowScheduler",
    "ReceiveBuffer",
    "TcpSender",
    "CongestionController",
    "DctcpController",
    "LiaController",
    "NewRenoController",
]
