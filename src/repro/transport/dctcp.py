"""DCTCP endpoints.

DCTCP = TCP NewReno machinery + ECN-capable packets + the
:class:`~repro.transport.cc.dctcp_alpha.DctcpController` window policy +
a receiver that echoes Congestion-Experienced marks.  It needs ECN marking
enabled in the switches (use :class:`repro.net.queues.EcnQueue`), which is
one of the deployment requirements the paper holds against it.

Packet-pool discipline is inherited from :class:`TcpSender` /
:class:`TcpReceiver`: data packets and ACK echoes are pool-acquired, and the
ECN bits a queue sets on a recycled packet are always freshly cleared state
(``Packet.__init__`` rewrites every field on reacquisition).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

from repro.net.host import Host
from repro.sim.engine import Simulator
from repro.sim.tracing import NULL_SINK, TraceSink
from repro.transport.base import TcpConfig
from repro.transport.cc.dctcp_alpha import DctcpController
from repro.transport.receiver import TcpReceiver
from repro.transport.tcp import TcpSender


class DctcpSender(TcpSender):
    """A TCP sender with ECN-capable packets and DCTCP congestion control."""

    def __init__(
        self,
        simulator: Simulator,
        host: Host,
        destination: int,
        destination_port: int,
        total_bytes: int,
        flow_id: int = 0,
        config: TcpConfig = TcpConfig(),
        dctcp_gain: float = 1.0 / 16.0,
        local_port: Optional[int] = None,
        on_complete: Optional[Callable[["TcpSender"], None]] = None,
        trace: TraceSink = NULL_SINK,
    ) -> None:
        ecn_config = config if config.ecn_enabled else replace(config, ecn_enabled=True)
        super().__init__(
            simulator,
            host,
            destination,
            destination_port,
            total_bytes,
            flow_id=flow_id,
            config=ecn_config,
            congestion_control=DctcpController(gain=dctcp_gain),
            local_port=local_port,
            on_complete=on_complete,
            trace=trace,
        )

    @property
    def alpha(self) -> float:
        """Current DCTCP congestion estimate (fraction of marked bytes, smoothed)."""
        controller = self.cc
        assert isinstance(controller, DctcpController)
        return controller.alpha


class DctcpReceiver(TcpReceiver):
    """A TCP receiver that always echoes ECN marks back to the sender."""

    def __init__(
        self,
        simulator: Simulator,
        host: Host,
        local_port: Optional[int] = None,
        flow_id: int = 0,
        expected_bytes: Optional[int] = None,
        on_complete: Optional[Callable[[TcpReceiver], None]] = None,
        trace: TraceSink = NULL_SINK,
    ) -> None:
        super().__init__(
            simulator,
            host,
            local_port=local_port,
            flow_id=flow_id,
            expected_bytes=expected_bytes,
            on_complete=on_complete,
            echo_ecn=True,
            trace=trace,
        )
