"""Single-path TCP NewReno sender.

This is the workhorse every other transport in the library builds on:

* DCTCP swaps in a different congestion controller and enables ECN;
* each MPTCP subflow is a :class:`TcpSender` subclass that pulls its data
  from the connection-level scheduler and stamps data-sequence numbers;
* the MMPTCP packet-scatter flow additionally randomises the source port of
  every data packet and widens the duplicate-ACK threshold.

The implementation follows RFC 5681/6582 (slow start, congestion avoidance,
fast retransmit, NewReno fast recovery with partial-ACK handling) and RFC
6298 (RTO management with Karn's rule and exponential backoff).  There is no
SACK — matching the custom ns-3 MPTCP model the paper used, where a lost
packet that cannot gather three duplicate ACKs must wait for the
retransmission timer, which is exactly the failure mode MMPTCP targets.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, runtime_checkable

from repro.net.host import Host
from repro.net.packet import FLAG_DATA, FLAG_SYN, Packet, acquire_packet
from repro.sim.engine import Simulator
from repro.sim.tracing import NULL_SINK, TraceSink
from repro.transport.base import Endpoint, SenderStats, TcpConfig
from repro.transport.cc.base import (
    LOSS_FAST_RETRANSMIT,
    LOSS_TIMEOUT,
    CongestionController,
    NewRenoController,
)
from repro.transport.rto import RtoEstimator

SenderCallback = Callable[["TcpSender"], None]
CongestionEventCallback = Callable[["TcpSender", str], None]


@runtime_checkable
class ReorderingPolicy(Protocol):
    """Duck type for the MMPTCP reordering-tolerance policies.

    Implementations live in :mod:`repro.core.reordering`; the sender only
    needs a current duplicate-ACK threshold and a notification hook for
    spurious retransmissions.
    """

    def current_threshold(self, sender: "TcpSender") -> int:
        """Return the duplicate-ACK count that should trigger fast retransmit."""
        ...

    def on_spurious_retransmit(self, sender: "TcpSender") -> None:
        """Called when a fast retransmission is judged to have been unnecessary."""
        ...


class TcpSender(Endpoint):
    """Sending endpoint of a single-path TCP flow."""

    def __init__(
        self,
        simulator: Simulator,
        host: Host,
        destination: int,
        destination_port: int,
        total_bytes: int,
        flow_id: int = 0,
        config: TcpConfig = TcpConfig(),
        congestion_control: Optional[CongestionController] = None,
        local_port: Optional[int] = None,
        subflow_id: int = 0,
        reordering_policy: Optional[ReorderingPolicy] = None,
        on_complete: Optional[SenderCallback] = None,
        on_congestion_event: Optional[CongestionEventCallback] = None,
        trace: TraceSink = NULL_SINK,
    ) -> None:
        super().__init__(simulator, host, local_port, trace)
        if total_bytes < 0:
            raise ValueError("total_bytes cannot be negative")
        self.destination = destination
        self.destination_port = destination_port
        self.total_bytes = total_bytes
        self.flow_id = flow_id
        self.config = config
        self.mss = config.mss
        self.subflow_id = subflow_id
        self.cc = congestion_control if congestion_control is not None else NewRenoController()
        self.reordering_policy = reordering_policy
        self.on_complete = on_complete
        self.on_congestion_event = on_congestion_event

        # Congestion state -------------------------------------------------
        self.cwnd: float = float(config.initial_cwnd_bytes)
        self.ssthresh: float = float(config.initial_ssthresh_bytes)
        self.in_fast_recovery = False
        self.recover_seq = 0
        self.dup_ack_count = 0

        # Sequence state ----------------------------------------------------
        self.snd_una = 0
        self.snd_nxt = 0
        #: Highest sequence number ever transmitted; anything re-sent below
        #: this is a retransmission (matters after a go-back-N timeout).
        self.snd_max = 0

        # Timers & RTT ------------------------------------------------------
        self.rto_estimator = RtoEstimator(
            min_rto=config.min_rto, max_rto=config.max_rto, initial_rto=config.initial_rto
        )
        # One reusable wheel-backed handle for the connection's whole life:
        # restarting the timer on every ACK/data event is the hottest
        # cancel/re-arm churn in the simulator and never touches the heap.
        self._rto_timer = simulator.timer(self._on_rto)
        self._timed_seq: Optional[int] = None
        self._timed_at = 0.0

        # Spurious-retransmission detection (for the reordering ablation).
        self._last_fast_retx_seq: Optional[int] = None
        self._last_fast_retx_time = 0.0

        # Lifecycle ----------------------------------------------------------
        self.established = False
        self.started = False
        self.complete = False
        self.stats = SenderStats()

    # ------------------------------------------------------------------
    # Public control
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin the connection: record the start time and send the SYN."""
        if self.started:
            return
        self.started = True
        self.stats.start_time = self.simulator.now
        self._send_syn()
        self._restart_rto_timer()

    def flight_size(self) -> float:
        """Bytes currently outstanding (sent but not cumulatively acknowledged)."""
        return float(self.snd_nxt - self.snd_una)

    def dupack_threshold(self) -> int:
        """Duplicate-ACK threshold, possibly adapted by a reordering policy."""
        if self.reordering_policy is not None:
            return max(1, self.reordering_policy.current_threshold(self))
        return self.config.dupack_threshold

    # ------------------------------------------------------------------
    # Packet arrival
    # ------------------------------------------------------------------

    def on_packet(self, packet: Packet) -> None:
        """Handle SYN-ACKs and ACKs from the receiver."""
        if packet.is_syn and packet.is_ack:
            self._handle_syn_ack(packet)
            return
        if packet.is_ack:
            self._handle_ack(packet)

    def _handle_syn_ack(self, packet: Packet) -> None:
        if self.established:
            return
        self.established = True
        self.stats.established_time = self.simulator.now
        # The handshake round-trip doubles as the first RTT sample.
        handshake_rtt = self.simulator.now - self.stats.start_time
        if handshake_rtt > 0:
            self.rto_estimator.add_sample(handshake_rtt)
        self.cc.on_established(self)
        self._restart_rto_timer()
        self.send_available()

    def _handle_ack(self, packet: Packet) -> None:
        if self.complete or not self.established:
            return
        self.stats.acks_received += 1
        self._process_dack(packet)

        ack = packet.ack
        if ack > self.snd_una:
            self._handle_new_ack(packet, ack)
        elif ack == self.snd_una and self.flight_size() > 0:
            self._handle_duplicate_ack(packet)

    def _handle_new_ack(self, packet: Packet, ack: int) -> None:
        newly_acked = ack - self.snd_una
        self.snd_una = ack
        self.dup_ack_count = 0

        # RTT sampling with Karn's rule: only segments never retransmitted are timed.
        if self._timed_seq is not None and ack >= self._timed_seq:
            rtt = self.simulator.now - self._timed_at
            if rtt > 0:
                self.rto_estimator.add_sample(rtt)
            self._timed_seq = None

        # Spurious fast-retransmit detection: if the retransmitted segment is
        # acknowledged faster than any packet could have made a round trip,
        # the original was merely reordered, not lost.
        if (
            self._last_fast_retx_seq is not None
            and ack > self._last_fast_retx_seq
            and self.rto_estimator.min_rtt != float("inf")
            and self.simulator.now - self._last_fast_retx_time
            < 0.5 * self.rto_estimator.min_rtt
        ):
            self.stats.spurious_retransmits += 1
            if self.reordering_policy is not None:
                self.reordering_policy.on_spurious_retransmit(self)
            self._last_fast_retx_seq = None

        # ECN feedback (DCTCP) is evaluated on every ACK carrying new data.
        self.cc.on_ecn_feedback(self, newly_acked, packet.ecn_echo)
        if packet.ecn_echo:
            self.stats.ecn_echoes_received += 1

        if self.in_fast_recovery:
            if ack >= self.recover_seq:
                # Full recovery: deflate the window back to ssthresh.
                self.in_fast_recovery = False
                self.cwnd = self.ssthresh
            else:
                # NewReno partial ACK: retransmit the next missing segment and
                # deflate by the amount acknowledged.
                self._retransmit_segment(self.snd_una)
                self.cwnd = max(self.ssthresh, self.cwnd - newly_acked + self.mss)
        else:
            self.cc.on_ack(self, newly_acked)

        self._apply_cwnd_cap()

        probes = self.probes
        if probes.enabled:
            now = self.simulator.now
            track = f"flow{self.flow_id}.sf{self.subflow_id}"
            probes.sample(f"transport.cwnd/{track}", now, self.cwnd)
            probes.sample(f"transport.ssthresh/{track}", now, self.ssthresh)
            probes.sample(f"transport.srtt_s/{track}", now, self.rto_estimator.smoothed_rtt)

        if self.snd_una >= self.total_bytes and self._all_data_allocated():
            self._on_all_data_acked()
            return

        self._restart_rto_timer()
        self.send_available()

    def _handle_duplicate_ack(self, packet: Packet) -> None:
        self.stats.duplicate_acks += 1
        self.dup_ack_count += 1
        if self.in_fast_recovery:
            # Window inflation for every further duplicate ACK.
            self.cwnd += self.mss
            self._apply_cwnd_cap()
            self.send_available()
            return
        if self.dup_ack_count >= self.dupack_threshold():
            self._enter_fast_recovery()

    def _enter_fast_recovery(self) -> None:
        self.ssthresh = self.cc.ssthresh_after_loss(self, LOSS_FAST_RETRANSMIT)
        self.recover_seq = self.snd_nxt
        self.in_fast_recovery = True
        self.stats.fast_retransmits += 1
        if self.probes.enabled:
            self.probes.count("transport.fast_retransmit")
        self._last_fast_retx_seq = self.snd_una
        self._last_fast_retx_time = self.simulator.now
        self._retransmit_segment(self.snd_una)
        self.cwnd = self.ssthresh + 3 * self.mss
        self._apply_cwnd_cap()
        self._notify_congestion_event(LOSS_FAST_RETRANSMIT)
        if self.trace.enabled:
            self.trace.emit(
                self.simulator.now,
                "fast_retransmit",
                flow_id=self.flow_id,
                subflow_id=self.subflow_id,
                seq=self.snd_una,
            )
        self.send_available()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send_available(self) -> None:
        """Transmit as many new segments as the congestion window permits."""
        if not self.established or self.complete:
            return
        self._refill()
        while self.snd_nxt < self.total_bytes:
            window_limit = self.snd_una + self.cwnd
            if self.config.max_cwnd_bytes is not None:
                window_limit = min(window_limit, self.snd_una + self.config.max_cwnd_bytes)
            payload = self._payload_at(self.snd_nxt)
            if payload <= 0:
                break
            if self.snd_nxt + payload > window_limit:
                break
            already_sent_before = self.snd_nxt < self.snd_max
            self._send_data(self.snd_nxt, payload, is_retransmission=already_sent_before)
            self.snd_nxt += payload
            self.snd_max = max(self.snd_max, self.snd_nxt)
            self._refill()
        if self.flight_size() > 0 and not self._rto_timer.armed:
            self._restart_rto_timer()

    def _send_data(self, seq: int, payload: int, is_retransmission: bool) -> None:
        # Acquire from the packet pool: the network releases the packet once
        # it is consumed (delivered or dropped), so this sender never touches
        # it again after transmit().
        packet = acquire_packet(
            flow_id=self.flow_id,
            src=self.host.address,
            dst=self.destination,
            src_port=self._data_source_port(),
            dst_port=self.destination_port,
            seq=seq,
            flags=FLAG_DATA,
            payload_size=payload,
            subflow_id=self.subflow_id,
            dsn=self._dsn_at(seq),
            ecn_capable=self.config.ecn_enabled,
            sent_time=self.simulator.now,
            is_retransmission=is_retransmission,
        )
        self._decorate_data_packet(packet)
        self.stats.packets_sent += 1
        self.stats.data_packets_sent += 1
        self.stats.bytes_sent += packet.size
        if is_retransmission:
            self.stats.retransmitted_packets += 1
            self.stats.retransmitted_bytes += payload
            # Karn's rule: give up on timing anything currently in flight.
            self._timed_seq = None
        elif self._timed_seq is None:
            self._timed_seq = seq + payload
            self._timed_at = self.simulator.now
        if not self.transmit(packet):
            # The local NIC refused the packet (down or congested uplink):
            # account the loss instead of silently dropping the signal.
            self.stats.send_fault_drops += 1

    def _retransmit_segment(self, seq: int) -> None:
        payload = self._payload_at(seq)
        if payload <= 0:
            return
        self._send_data(seq, payload, is_retransmission=True)

    def _send_syn(self) -> None:
        packet = acquire_packet(
            flow_id=self.flow_id,
            src=self.host.address,
            dst=self.destination,
            src_port=self.local_port,
            dst_port=self.destination_port,
            flags=FLAG_SYN,
            subflow_id=self.subflow_id,
            sent_time=self.simulator.now,
        )
        self.stats.packets_sent += 1
        self.stats.bytes_sent += packet.size
        if not self.transmit(packet):
            self.stats.send_fault_drops += 1

    # ------------------------------------------------------------------
    # Retransmission timer
    # ------------------------------------------------------------------

    def _restart_rto_timer(self) -> None:
        if self.probes.enabled:
            self.probes.count("transport.rto_armed")
        self._rto_timer.arm(self.rto_estimator.rto)

    def _cancel_rto_timer(self) -> None:
        self._rto_timer.cancel()

    def _on_rto(self) -> None:
        if self.complete:
            return
        if not self.established:
            # The SYN (or the SYN-ACK) was lost: retry the handshake.
            self.rto_estimator.backoff()
            self._send_syn()
            self._restart_rto_timer()
            return
        if self.flight_size() <= 0:
            return

        self.stats.rto_events += 1
        probes = self.probes
        if probes.enabled:
            probes.count("transport.rto_fired")
            probes.event(
                "transport.rto",
                self.simulator.now,
                flow_id=self.flow_id,
                subflow_id=self.subflow_id,
                seq=self.snd_una,
                rto_s=self.rto_estimator.rto,
            )
        self.ssthresh = self.cc.ssthresh_after_loss(self, LOSS_TIMEOUT)
        self.cwnd = float(self.mss)
        self.in_fast_recovery = False
        self.dup_ack_count = 0
        self._timed_seq = None
        self._last_fast_retx_seq = None
        # Go-back-N from the first unacknowledged byte.
        self.snd_nxt = self.snd_una
        self.rto_estimator.backoff()
        self._notify_congestion_event(LOSS_TIMEOUT)
        if self.trace.enabled:
            self.trace.emit(
                self.simulator.now,
                "rto",
                flow_id=self.flow_id,
                subflow_id=self.subflow_id,
                seq=self.snd_una,
            )
        self._restart_rto_timer()
        self.send_available()

    # ------------------------------------------------------------------
    # Hooks overridden by subclasses (MPTCP subflow, packet scatter)
    # ------------------------------------------------------------------

    def _refill(self) -> None:
        """Pull more data from a connection-level scheduler (no-op for plain TCP)."""

    def _payload_at(self, seq: int) -> int:
        """Payload size of the segment starting at ``seq``."""
        return min(self.mss, self.total_bytes - seq)

    def _dsn_at(self, seq: int) -> int:
        """Connection-level data sequence number for ``seq`` (plain TCP: identity)."""
        return seq

    def _data_source_port(self) -> int:
        """Source port stamped on data packets (packet scatter randomises this)."""
        return self.local_port

    def _decorate_data_packet(self, packet: Packet) -> None:
        """Last chance for subclasses to adjust an outgoing data packet."""

    def _process_dack(self, packet: Packet) -> None:
        """Connection-level acknowledgement processing (MPTCP overrides this)."""

    def _all_data_allocated(self) -> bool:
        """True when ``total_bytes`` is final (always true for plain TCP)."""
        return True

    def _on_all_data_acked(self) -> None:
        """Every byte has been cumulatively acknowledged: finish the flow."""
        self.complete = True
        self.stats.completion_time = self.simulator.now
        self._cancel_rto_timer()
        if self.trace.enabled:
            self.trace.emit(self.simulator.now, "flow_acked", flow_id=self.flow_id)
        if self.on_complete is not None:
            self.on_complete(self)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _apply_cwnd_cap(self) -> None:
        if self.config.max_cwnd_bytes is not None:
            self.cwnd = min(self.cwnd, float(self.config.max_cwnd_bytes))
        self.cwnd = max(self.cwnd, float(self.mss))

    def _notify_congestion_event(self, kind: str) -> None:
        if self.on_congestion_event is not None:
            self.on_congestion_event(self, kind)
