"""Byte-sequence bookkeeping shared by receivers.

:class:`ReceiveBuffer` tracks the in-order frontier (``rcv_nxt``) of a byte
stream plus any out-of-order byte ranges already received, exactly what a
TCP receive buffer does minus the actual payload bytes (the simulator never
materialises data).  MPTCP receivers keep one buffer per subflow (subflow
sequence space) and one for the connection-level data sequence space.
"""

from __future__ import annotations

from typing import List, Tuple


class ReceiveBuffer:
    """Tracks which byte ranges of a stream have been received."""

    def __init__(self) -> None:
        self.rcv_nxt = 0
        #: sorted, disjoint, non-adjacent out-of-order ranges [start, end)
        self._segments: List[Tuple[int, int]] = []
        self.duplicate_bytes = 0
        self.out_of_order_arrivals = 0
        self.total_bytes_received = 0

    # ------------------------------------------------------------------

    def add(self, start: int, length: int) -> int:
        """Record the arrival of bytes ``[start, start+length)``.

        Returns the number of bytes by which the in-order frontier advanced
        (zero for out-of-order or duplicate data).
        """
        if length <= 0:
            return 0
        end = start + length
        self.total_bytes_received += length
        if end <= self.rcv_nxt:
            self.duplicate_bytes += length
            return 0

        previous_frontier = self.rcv_nxt
        if start > self.rcv_nxt:
            self.out_of_order_arrivals += 1
            self._insert_segment(start, end)
            return 0

        # Overlaps the frontier: advance it, then absorb any stored segments
        # that have become contiguous.
        if start < self.rcv_nxt:
            self.duplicate_bytes += self.rcv_nxt - start
        self.rcv_nxt = max(self.rcv_nxt, end)
        self._absorb_contiguous()
        return self.rcv_nxt - previous_frontier

    def _insert_segment(self, start: int, end: int) -> None:
        merged: List[Tuple[int, int]] = []
        placed = False
        for seg_start, seg_end in self._segments:
            if seg_end < start - 0 and not (seg_end >= start):
                merged.append((seg_start, seg_end))
            elif seg_start > end:
                if not placed:
                    merged.append((start, end))
                    placed = True
                merged.append((seg_start, seg_end))
            else:
                # Overlapping or adjacent: merge into the candidate range.
                overlap = min(seg_end, end) - max(seg_start, start)
                if overlap > 0:
                    self.duplicate_bytes += overlap
                start = min(start, seg_start)
                end = max(end, seg_end)
        if not placed:
            merged.append((start, end))
        merged.sort()
        self._segments = merged

    def _absorb_contiguous(self) -> None:
        while self._segments and self._segments[0][0] <= self.rcv_nxt:
            seg_start, seg_end = self._segments.pop(0)
            if seg_end > self.rcv_nxt:
                self.rcv_nxt = seg_end
            else:
                self.duplicate_bytes += seg_end - seg_start

    # ------------------------------------------------------------------

    @property
    def buffered_out_of_order_bytes(self) -> int:
        """Bytes received beyond the in-order frontier, awaiting the gap fill."""
        return sum(end - start for start, end in self._segments)

    @property
    def missing_ranges(self) -> List[Tuple[int, int]]:
        """Gaps between the frontier and buffered out-of-order data."""
        gaps: List[Tuple[int, int]] = []
        cursor = self.rcv_nxt
        for start, end in self._segments:
            if start > cursor:
                gaps.append((cursor, start))
            cursor = max(cursor, end)
        return gaps

    def has_received(self, offset: int) -> bool:
        """True if the byte at ``offset`` has been received (in or out of order)."""
        if offset < self.rcv_nxt:
            return True
        return any(start <= offset < end for start, end in self._segments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReceiveBuffer(rcv_nxt={self.rcv_nxt}, ooo={self._segments})"
