"""Multipath TCP (MPTCP) with coupled congestion control.

An :class:`MptcpConnection` spreads one application byte stream (addressed by
*data sequence numbers*, DSNs) over several :class:`MptcpSubflow` objects.
Each subflow is a full TCP NewReno sender with its own source port — and
therefore, under hash-based ECMP, its own path through the fabric — its own
congestion window, its own RTT estimate and its own loss recovery.  Window
growth is coupled across subflows by the Linked Increases Algorithm
(RFC 6356) so the aggregate is fair to single-path TCP.

The behaviour the paper studies emerges naturally from this structure: a
70 KB flow split over 8 subflows gives each subflow only a handful of
packets, so a single loss frequently cannot gather three duplicate ACKs and
the whole connection stalls for a 200 ms retransmission timeout
(Figure 1(a)/(b) of the paper).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.net.host import Host
from repro.net.packet import FLAG_ACK, FLAG_SYN, Packet, acquire_packet, make_ack
from repro.obs.telemetry import NULL_PROBES, TelemetryProbes
from repro.sim.engine import Simulator
from repro.sim.tracing import NULL_SINK, TraceSink
from repro.transport.base import Endpoint, SenderStats, TcpConfig
from repro.transport.cc.base import LOSS_TIMEOUT
from repro.transport.cc.lia import LiaController
from repro.transport.path_manager import NdiffportsPathManager, PathManager
from repro.transport.scheduler import FcfsScheduler, SubflowScheduler
from repro.transport.sequence import ReceiveBuffer
from repro.transport.tcp import TcpSender

ConnectionCallback = Callable[["MptcpConnection"], None]


class MptcpSubflow(TcpSender):
    """One TCP subflow of an MPTCP (or MMPTCP) connection.

    The subflow does not own application data; it pulls chunks from the
    connection on demand (whenever its congestion window has room) and keeps
    the subflow-sequence-number → data-sequence-number mapping needed to
    stamp outgoing packets.
    """

    def __init__(
        self,
        connection: "MptcpConnection",
        subflow_id: int,
        local_port: Optional[int] = None,
        congestion_control=None,
        reordering_policy=None,
    ) -> None:
        self.connection = connection
        #: subflow-sequence offset -> (dsn, payload size)
        self._segments: Dict[int, Tuple[int, int]] = {}
        super().__init__(
            connection.simulator,
            connection.host,
            connection.destination,
            connection.destination_port,
            total_bytes=0,
            flow_id=connection.flow_id,
            config=connection.config,
            congestion_control=(
                congestion_control
                if congestion_control is not None
                else LiaController(connection)
            ),
            local_port=local_port,
            subflow_id=subflow_id,
            reordering_policy=reordering_policy,
            on_congestion_event=connection._subflow_congestion_event,
            trace=connection.trace,
        )

    # -- data acquisition ---------------------------------------------------

    def _refill(self) -> None:
        """Pull data from the connection while the window has room for more."""
        self.connection._refill_subflow(self)

    def send_available(self) -> None:
        """Send what this subflow may, then let the scheduler place the rest.

        Every window-opening event (handshake completion, new ACK, dup-ACK
        inflation, recovery, RTO) funnels through here, so running the
        connection's pump afterwards guarantees a policy scheduler sees
        every send opportunity — the chunk this subflow was refused may now
        belong on a preferred sibling.
        """
        super().send_available()
        self.connection._pump_scheduler()

    def _payload_at(self, seq: int) -> int:
        segment = self._segments.get(seq)
        return segment[1] if segment is not None else 0

    def _dsn_at(self, seq: int) -> int:
        segment = self._segments.get(seq)
        return segment[0] if segment is not None else seq

    def _all_data_allocated(self) -> bool:
        return self.connection._subflow_done_allocating(self)

    def _process_dack(self, packet: Packet) -> None:
        self.connection.on_dack(packet.dack)

    def _on_all_data_acked(self) -> None:
        # This subflow delivered everything it was assigned; the *connection*
        # completes only when the data-level acknowledgement covers the whole
        # stream (handled by MptcpConnection.on_dack).
        self._cancel_rto_timer()

    # -- peer mobility ------------------------------------------------------

    def _on_rto(self) -> None:
        if not self.complete and not self.established:
            # The handshake keeps timing out: the peer may have moved, so
            # consult the resolver before retrying the SYN into a black hole.
            # This deliberately bypasses the congestion-event path — an
            # unestablished subflow has no congestion state to report and
            # MMPTCP's switching policies must not observe handshake retries.
            self.connection._subflow_handshake_timeout(self)
            if self.complete:
                # Readdressing killed this subflow; a replacement is already
                # connecting to the peer's new address.
                return
        super()._on_rto()

    # -- establishment ------------------------------------------------------

    def _handle_syn_ack(self, packet: Packet) -> None:
        was_established = self.established
        super()._handle_syn_ack(packet)
        if not was_established and self.established:
            self.connection._subflow_established(self)

    @property
    def allocated_bytes(self) -> int:
        """Bytes of the connection stream currently mapped onto this subflow."""
        return self.total_bytes


class MptcpConnection:
    """Sender side of an MPTCP connection."""

    #: Telemetry probe sink; the disabled-singleton class attribute mirrors
    #: :attr:`repro.transport.base.Endpoint.probes`.  Attach a recorder with
    #: :meth:`set_probes` so existing subflows pick it up too.
    probes: TelemetryProbes = NULL_PROBES

    def __init__(
        self,
        simulator: Simulator,
        host: Host,
        destination: int,
        destination_port: int,
        total_bytes: int,
        num_subflows: int = 8,
        flow_id: int = 0,
        config: TcpConfig = TcpConfig(),
        scheduler: Optional[SubflowScheduler] = None,
        path_manager: Optional[PathManager] = None,
        address_resolver: Optional[Callable[[int], int]] = None,
        on_complete: Optional[ConnectionCallback] = None,
        trace: TraceSink = NULL_SINK,
        create_subflows: bool = True,
    ) -> None:
        if total_bytes < 0:
            raise ValueError("total_bytes cannot be negative")
        if num_subflows < 1:
            raise ValueError("an MPTCP connection needs at least one subflow")
        self.simulator = simulator
        self.host = host
        self.destination = destination
        self.destination_port = destination_port
        self.total_bytes = total_bytes
        self.num_subflows = num_subflows
        self.flow_id = flow_id
        self.config = config
        self.scheduler = scheduler if scheduler is not None else FcfsScheduler()
        self.path_manager = (
            path_manager if path_manager is not None else NdiffportsPathManager()
        )
        #: Control-plane lookup from a (possibly stale) peer address to the
        #: peer's current address — ``Topology.current_address_of`` in
        #: practice.  Without one the connection cannot follow a migrated
        #: peer and behaves exactly as before.
        self.address_resolver = address_resolver
        self.on_complete = on_complete
        self.trace = trace

        self.subflows: List[MptcpSubflow] = []
        self._next_dsn = 0
        self.data_acked = 0
        self.started = False
        self.complete = False
        self.start_time: Optional[float] = None
        self.completion_time: Optional[float] = None
        self.congestion_events: List[Tuple[float, int, str]] = []
        #: Re-entrancy guard for the scheduler pump (send_available recurses
        #: through it).
        self._pumping = False
        #: Per-subflow stream cursors for duplicating schedulers (redundant).
        self._redundant_cursors: Dict[int, int] = {}
        #: (dsn, size) chunks stranded on subflows killed by a peer
        #: readdressing, waiting to be mapped onto the replacement subflows.
        self._reinjection_queue: Deque[Tuple[int, int]] = deque()

        if create_subflows:
            self._create_subflows(num_subflows, first_subflow_id=0)

    # ------------------------------------------------------------------
    # Subflow management
    # ------------------------------------------------------------------

    def set_probes(self, probes: TelemetryProbes) -> None:
        """Attach a telemetry sink to the connection and every subflow.

        Subflows created later (e.g. replacements after a peer
        readdressing) inherit it through :meth:`_create_subflows`.
        """
        self.probes = probes
        for subflow in self.subflows:
            subflow.probes = probes

    def _create_subflows(self, count: int, first_subflow_id: int) -> List[MptcpSubflow]:
        created = self.path_manager.create_subflows(self, count, first_subflow_id)
        if self.probes.enabled:
            for subflow in created:
                subflow.probes = self.probes
        self.subflows.extend(created)
        return created

    def _make_subflow(self, subflow_id: int) -> MptcpSubflow:
        """Factory hook; MMPTCP overrides it to build its packet-scatter subflow."""
        return MptcpSubflow(self, subflow_id)

    def active_subflows(self) -> List[MptcpSubflow]:
        """Live handshaken subflows (used by LIA coupling).

        Subflows killed by a peer readdressing stay ``established`` but are
        marked ``complete``; they must not count towards the coupled window.
        """
        return [
            subflow
            for subflow in self.subflows
            if subflow.established and not subflow.complete
        ]

    def _subflow_established(self, subflow: MptcpSubflow) -> None:
        """Hook invoked when a subflow finishes its handshake."""

    def _subflow_congestion_event(self, subflow: TcpSender, kind: str) -> None:
        self.congestion_events.append((self.simulator.now, subflow.subflow_id, kind))
        if kind == LOSS_TIMEOUT:
            # A retransmission timeout is the signal a real endpoint gets
            # when its peer silently moved: consult the resolver.
            self._check_peer_address()

    def _subflow_handshake_timeout(self, subflow: MptcpSubflow) -> None:
        """An unestablished subflow's SYN timed out; the peer may have moved."""
        self._check_peer_address()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Open every subflow (each performs its own handshake) and begin sending."""
        if self.started:
            return
        if self.address_resolver is not None:
            # The peer may have migrated between flow creation and start:
            # resolve once so the very first SYNs aim at the current address.
            current = self.address_resolver(self.destination)
            if current != self.destination:
                self.destination = current
                for subflow in self.subflows:
                    if not subflow.started:
                        subflow.destination = current
        self.started = True
        self.start_time = self.simulator.now
        for subflow in self.subflows:
            subflow.start()

    # ------------------------------------------------------------------
    # Peer mobility
    # ------------------------------------------------------------------

    def _check_peer_address(self) -> None:
        """Resolve the peer's current address; re-home the connection if it moved."""
        if self.address_resolver is None or self.complete:
            return
        current = self.address_resolver(self.destination)
        if current != self.destination:
            self._on_peer_readdressed(current)

    def _on_peer_readdressed(self, new_address: int) -> None:
        """The peer now lives at ``new_address``: re-establish connectivity.

        Every live subflow is bound (via its handshake) to the old address,
        so all of them are killed; the stream chunks they still held
        unacknowledged are queued for reinjection, and a fresh set of
        subflows is opened towards the new address.  Duplicating schedulers
        need no reinjection — their per-subflow cursors restart from the
        data-level acknowledgement point on the replacement subflows.
        """
        old_address = self.destination
        self.destination = new_address
        if not self.scheduler.duplicates:
            pending: Dict[int, int] = {}
            for subflow in self.subflows:
                for dsn, size in subflow._segments.values():
                    if dsn + size > self.data_acked:
                        pending[dsn] = max(pending.get(dsn, 0), size)
            self._reinjection_queue = deque(sorted(pending.items()))
        for subflow in self.subflows:
            if not subflow.complete:
                subflow.complete = True
                subflow._cancel_rto_timer()
        if self.trace.enabled:
            self.trace.emit(
                self.simulator.now,
                "peer_readdressed",
                flow_id=self.flow_id,
                old=old_address,
                new=new_address,
            )
        if not self.complete:
            next_id = max(subflow.subflow_id for subflow in self.subflows) + 1
            created = self._create_subflows(self.num_subflows, first_subflow_id=next_id)
            if self.started:
                for subflow in created:
                    subflow.start()

    # ------------------------------------------------------------------
    # Data allocation (demand driven)
    # ------------------------------------------------------------------

    @property
    def all_data_allocated(self) -> bool:
        """True once every byte of the stream has been mapped onto some subflow."""
        return self._next_dsn >= self.total_bytes

    @property
    def unallocated_bytes(self) -> int:
        """Bytes not yet assigned to any subflow."""
        return max(0, self.total_bytes - self._next_dsn)

    def allocate_chunk(self, subflow: MptcpSubflow) -> Optional[Tuple[int, int]]:
        """Assign the next chunk (at most one MSS) of the stream to ``subflow``."""
        if self.scheduler.duplicates:
            return self._allocate_duplicate_chunk(subflow)
        # Chunks stranded by a peer readdressing go out first — they are
        # earlier in the stream than the frontier, and the receiver's
        # cumulative data-level ACK cannot advance past them.  They are not
        # new stream bytes, so the allocation hook is not invoked for them.
        while self._reinjection_queue:
            dsn, size = self._reinjection_queue.popleft()
            if dsn + size <= self.data_acked:
                continue  # delivered (and acked) before the subflows died
            if self.probes.enabled:
                self.probes.count("transport.reinjections")
            return dsn, size
        if self.all_data_allocated:
            return None
        size = min(self.config.mss, self.total_bytes - self._next_dsn)
        dsn = self._next_dsn
        self._next_dsn += size
        self._on_data_allocated(subflow, dsn, size)
        return dsn, size

    def _allocate_duplicate_chunk(self, subflow: MptcpSubflow) -> Optional[Tuple[int, int]]:
        """Advance ``subflow``'s private cursor over the not-yet-acked stream.

        Under a duplicating scheduler every subflow walks the whole stream
        itself; the cursor starts at (or jumps forward to) the data-level
        acknowledgement point so already-delivered bytes are never
        re-duplicated, which keeps the redundancy bounded to data actually
        at risk.
        """
        cursor = max(self._redundant_cursors.get(subflow.subflow_id, 0), self.data_acked)
        if cursor >= self.total_bytes:
            return None
        size = min(self.config.mss, self.total_bytes - cursor)
        self._redundant_cursors[subflow.subflow_id] = cursor + size
        # The shared frontier tracks the furthest cursor so that
        # ``all_data_allocated`` (phase switching, completion bookkeeping)
        # keeps meaning "every byte has been mapped at least once".
        self._next_dsn = max(self._next_dsn, cursor + size)
        self._on_data_allocated(subflow, cursor, size)
        return cursor, size

    def _on_data_allocated(self, subflow: MptcpSubflow, dsn: int, size: int) -> None:
        """Hook for subclasses (MMPTCP's data-volume switching observes this)."""

    # ------------------------------------------------------------------
    # Scheduler dispatch
    # ------------------------------------------------------------------

    def _has_data_for(self, subflow: MptcpSubflow) -> bool:
        """True while the connection still has stream bytes for ``subflow``.

        MMPTCP overrides this to exclude the scatter subflow after the phase
        switch; duplicating schedulers track per-subflow cursors instead of
        the shared frontier.
        """
        if self.scheduler.duplicates:
            cursor = max(
                self._redundant_cursors.get(subflow.subflow_id, 0), self.data_acked
            )
            return cursor < self.total_bytes
        return bool(self._reinjection_queue) or not self.all_data_allocated

    def _subflow_done_allocating(self, subflow: MptcpSubflow) -> bool:
        """True when ``subflow`` will never be assigned another chunk."""
        if self.scheduler.duplicates:
            return not self._has_data_for(subflow)
        return self.all_data_allocated and not self._reinjection_queue

    def _candidates(self) -> List[MptcpSubflow]:
        """Subflows the scheduler may currently choose between.

        List order is ascending ``subflow_id`` (creation order), which is
        the deterministic tie-break every scheduler inherits.
        """
        return [
            subflow
            for subflow in self.subflows
            if subflow.established and not subflow.complete and self._has_data_for(subflow)
        ]

    def _scheduler_grants(self, subflow: MptcpSubflow) -> bool:
        """May ``subflow`` take the next chunk right now?

        Demand-driven schedulers always grant.  Policy schedulers are
        *strict*: only their single most preferred candidate may map the
        next chunk, even while that candidate's window is full — allocation
        is irrevocable (no reinjection), so a chunk must never spill onto a
        less preferred path just because the preferred one cannot take it
        this instant.  (A "grant whenever every better candidate is full"
        rule degenerates to FCFS under ACK clocking: at the moment any
        subflow demands, its better-placed siblings are almost always
        window-full, so every demand would be granted and the scheduler
        would never influence placement.)  Liveness is the pump's job: the
        preferred candidate is full only while it has data in flight, so a
        future ACK or RTO always re-opens it.
        """
        if self.scheduler.demand_driven:
            return True
        order = self.scheduler.order(self._candidates())
        return bool(order) and order[0] is subflow

    def _refill_subflow(self, subflow: MptcpSubflow) -> None:
        """Serve ``subflow``'s demand for chunks, subject to the scheduler."""
        probes = self.probes
        while (
            subflow.established
            and subflow.snd_una + subflow.cwnd > subflow.total_bytes
            and self._has_data_for(subflow)
        ):
            if not self._scheduler_grants(subflow):
                if probes.enabled:
                    probes.count("scheduler.refusals")
                break
            chunk = self.allocate_chunk(subflow)
            if chunk is None:
                break
            dsn, size = chunk
            subflow._segments[subflow.total_bytes] = (dsn, size)
            subflow.total_bytes += size
            if probes.enabled:
                probes.count("scheduler.grants")
                probes.count(f"scheduler.grants/flow{self.flow_id}.sf{subflow.subflow_id}")
            self.scheduler.chunk_assigned(subflow, self.subflows)

    def _pump_scheduler(self) -> None:
        """Offer withheld chunks to the scheduler's preferred subflow.

        After any subflow's send opportunity, the scheduler's head may be a
        *different* subflow that has no event of its own pending (no data
        in flight because it was refused earlier).  Pumping the head here
        is what makes the strict policy live.  Each iteration re-consults
        ``order()`` — consuming a chunk can rotate a round-robin pointer or
        (eventually) shift an RTT estimate — and stops as soon as the head
        has no window room or fails to map a chunk, so the loop terminates
        (allocation is finite and monotone); demand-driven schedulers never
        pump.
        """
        if self.scheduler.demand_driven or self._pumping or self.complete:
            return
        self._pumping = True
        try:
            while True:
                order = self.scheduler.order(self._candidates())
                if not order:
                    break
                head = order[0]
                if not (head.snd_una + head.cwnd > head.total_bytes):
                    break
                before = head.total_bytes
                head.send_available()
                if head.total_bytes == before:
                    break
        finally:
            self._pumping = False

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def on_dack(self, dack: int) -> None:
        """Fold a data-level acknowledgement into the connection state."""
        if dack > self.data_acked:
            self.data_acked = dack
        if not self.complete and self.data_acked >= self.total_bytes > 0:
            self.complete = True
            self.completion_time = self.simulator.now
            for subflow in self.subflows:
                subflow.complete = True
                subflow._cancel_rto_timer()
            if self.trace.enabled:
                self.trace.emit(self.simulator.now, "connection_complete", flow_id=self.flow_id)
            if self.on_complete is not None:
                self.on_complete(self)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def aggregate_stats(self) -> SenderStats:
        """Sum the per-subflow counters into one connection-level record."""
        total = SenderStats()
        total.start_time = self.start_time if self.start_time is not None else 0.0
        total.completion_time = self.completion_time
        # The connection is established as soon as its first subflow is —
        # that earliest handshake is when data can start flowing.
        established = [
            subflow.stats.established_time
            for subflow in self.subflows
            if subflow.stats.established_time is not None
        ]
        total.established_time = min(established) if established else None
        for subflow in self.subflows:
            stats = subflow.stats
            total.packets_sent += stats.packets_sent
            total.bytes_sent += stats.bytes_sent
            total.data_packets_sent += stats.data_packets_sent
            total.retransmitted_packets += stats.retransmitted_packets
            total.retransmitted_bytes += stats.retransmitted_bytes
            total.fast_retransmits += stats.fast_retransmits
            total.rto_events += stats.rto_events
            total.spurious_retransmits += stats.spurious_retransmits
            total.acks_received += stats.acks_received
            total.duplicate_acks += stats.duplicate_acks
            total.ecn_echoes_received += stats.ecn_echoes_received
            total.send_fault_drops += stats.send_fault_drops
        return total

    def close(self) -> None:
        """Release every subflow's port binding."""
        for subflow in self.subflows:
            subflow.close()


class MptcpReceiver(Endpoint):
    """Receiver side of an MPTCP (or MMPTCP) connection.

    Keeps one reassembly buffer per subflow (subflow sequence space) plus the
    connection-level buffer over data sequence numbers; every ACK carries both
    the subflow-level cumulative ACK and the data-level cumulative ACK.
    """

    def __init__(
        self,
        simulator: Simulator,
        host: Host,
        local_port: Optional[int] = None,
        flow_id: int = 0,
        expected_bytes: Optional[int] = None,
        on_complete: Optional[Callable[["MptcpReceiver"], None]] = None,
        echo_ecn: bool = False,
        trace: TraceSink = NULL_SINK,
    ) -> None:
        super().__init__(simulator, host, local_port, trace)
        self.flow_id = flow_id
        self.expected_bytes = expected_bytes
        self.on_complete = on_complete
        self.echo_ecn = echo_ecn
        self.data_buffer = ReceiveBuffer()
        self.subflow_buffers: Dict[int, ReceiveBuffer] = {}
        self.subflow_peer_ports: Dict[int, int] = {}
        self.peer_address: Optional[int] = None
        self.complete = False
        self.completion_time: Optional[float] = None
        self.first_data_time: Optional[float] = None
        self.acks_sent = 0
        self.data_packets_received = 0
        #: ACKs/SYN-ACKs our own NIC refused to send (down or congested
        #: uplink) — mirrors :attr:`~repro.transport.base.SenderStats.send_fault_drops`.
        self.send_fault_drops = 0

    # ------------------------------------------------------------------

    def _buffer_for(self, subflow_id: int) -> ReceiveBuffer:
        if subflow_id not in self.subflow_buffers:
            self.subflow_buffers[subflow_id] = ReceiveBuffer()
        return self.subflow_buffers[subflow_id]

    def on_packet(self, packet: Packet) -> None:
        """Handle per-subflow SYNs and data segments."""
        if packet.is_syn and not packet.is_ack:
            self._handle_syn(packet)
            return
        if packet.carries_data:
            self._handle_data(packet)

    def _handle_syn(self, packet: Packet) -> None:
        self.peer_address = packet.src
        self.subflow_peer_ports[packet.subflow_id] = packet.src_port
        syn_ack = acquire_packet(
            flow_id=self.flow_id,
            src=self.host.address,
            dst=packet.src,
            src_port=self.local_port,
            dst_port=packet.src_port,
            flags=FLAG_SYN | FLAG_ACK,
            subflow_id=packet.subflow_id,
            sent_time=self.simulator.now,
        )
        if not self.transmit(syn_ack):
            self.send_fault_drops += 1

    def _handle_data(self, packet: Packet) -> None:
        if self.first_data_time is None:
            self.first_data_time = self.simulator.now
        self.data_packets_received += 1
        subflow_buffer = self._buffer_for(packet.subflow_id)
        subflow_buffer.add(packet.seq, packet.payload_size)
        self.data_buffer.add(packet.dsn, packet.payload_size)
        self._send_ack(packet, subflow_buffer)
        self._check_completion()

    def _send_ack(self, packet: Packet, subflow_buffer: ReceiveBuffer) -> None:
        # Acknowledgements go back to the subflow's *canonical* port (learned
        # from its SYN), not to the possibly randomised source port of the data
        # packet — this is what makes per-packet source-port scatter workable.
        canonical_port = self.subflow_peer_ports.get(packet.subflow_id, packet.src_port)
        echo = self.echo_ecn and packet.ecn_ce
        ack = make_ack(
            packet,
            ack=subflow_buffer.rcv_nxt,
            dack=self.data_buffer.rcv_nxt,
            src_port=self.local_port,
            dst_port=canonical_port,
            ecn_echo=echo,
            sent_time=self.simulator.now,
        )
        self.acks_sent += 1
        if not self.transmit(ack):
            self.send_fault_drops += 1

    def _check_completion(self) -> None:
        if self.complete or self.expected_bytes is None:
            return
        if self.data_buffer.rcv_nxt >= self.expected_bytes:
            self.complete = True
            self.completion_time = self.simulator.now
            if self.trace.enabled:
                self.trace.emit(
                    self.simulator.now, "flow_received", flow_id=self.flow_id, host=self.host.name
                )
            if self.on_complete is not None:
                self.on_complete(self)

    # ------------------------------------------------------------------

    @property
    def bytes_received_in_order(self) -> int:
        """Connection-level bytes delivered in order so far."""
        return self.data_buffer.rcv_nxt

    @property
    def reordering_events(self) -> int:
        """Out-of-order arrivals observed across all subflow buffers."""
        return sum(buffer.out_of_order_arrivals for buffer in self.subflow_buffers.values())
