"""RTT estimation and retransmission-timeout management (RFC 6298).

The retransmission timeout is the villain of the paper: with the
conventional 200 ms minimum RTO, a single lost packet that cannot be
recovered by fast retransmit stalls a 70 KB flow for three orders of
magnitude longer than its uncongested completion time.  The estimator
implements the standard Jacobson/Karels smoothing with Karn's rule applied
by the caller (retransmitted segments are never timed).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RtoEstimator:
    """Smoothed RTT / RTO estimator.

    Attributes:
        min_rto: lower clamp applied to every computed RTO (the paper's
            experiments keep the conventional 200 ms, which is what makes a
            timeout so costly for a short flow).
        max_rto: upper clamp applied after exponential backoff.
        initial_rto: RTO used before the first RTT measurement exists.
        alpha / beta: standard EWMA gains (1/8 and 1/4).
        k: variance multiplier (4).
    """

    min_rto: float = 0.200
    max_rto: float = 60.0
    initial_rto: float = 1.0
    alpha: float = 1.0 / 8.0
    beta: float = 1.0 / 4.0
    k: float = 4.0
    srtt: float = field(default=0.0, init=False)
    rttvar: float = field(default=0.0, init=False)
    backoff_factor: float = field(default=1.0, init=False)
    samples: int = field(default=0, init=False)
    min_rtt: float = field(default=float("inf"), init=False)

    def __post_init__(self) -> None:
        if self.min_rto <= 0:
            raise ValueError("min_rto must be positive")
        if self.max_rto < self.min_rto:
            raise ValueError("max_rto must be >= min_rto")

    # ------------------------------------------------------------------

    def add_sample(self, rtt: float) -> None:
        """Fold a new RTT measurement into the smoothed estimate.

        Also resets the exponential backoff, per RFC 6298 §5.7: a valid
        measurement proves the path is alive again.
        """
        if rtt <= 0:
            raise ValueError(f"RTT samples must be positive, got {rtt!r}")
        self.min_rtt = min(self.min_rtt, rtt)
        if self.samples == 0:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = (1.0 - self.beta) * self.rttvar + self.beta * abs(self.srtt - rtt)
            self.srtt = (1.0 - self.alpha) * self.srtt + self.alpha * rtt
        self.samples += 1
        self.backoff_factor = 1.0

    def backoff(self) -> None:
        """Double the timeout after a retransmission timeout fires."""
        self.backoff_factor = min(self.backoff_factor * 2.0, 64.0)

    @property
    def rto(self) -> float:
        """Current retransmission timeout, clamped to ``[min_rto, max_rto]``."""
        if self.samples == 0:
            base = self.initial_rto
        else:
            base = self.srtt + self.k * self.rttvar
        value = base * self.backoff_factor
        return min(self.max_rto, max(self.min_rto, value))

    @property
    def smoothed_rtt(self) -> float:
        """Smoothed RTT, or the initial RTO when no sample exists yet."""
        return self.srtt if self.samples else self.initial_rto
