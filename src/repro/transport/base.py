"""Shared transport definitions: configuration, statistics and endpoint base.

Every sender in the library (TCP, DCTCP, MPTCP sub-flows, the MMPTCP
packet-scatter flow) derives from :class:`Endpoint` and is parameterised by a
:class:`TcpConfig`.  Per-flow statistics accumulate in :class:`SenderStats`,
which the metrics layer later converts into flow records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.host import Host
from repro.net.packet import Packet
from repro.obs.telemetry import NULL_PROBES, TelemetryProbes
from repro.sim.engine import Simulator
from repro.sim.tracing import NULL_SINK, TraceSink
from repro.sim.units import milliseconds


@dataclass(frozen=True)
class TcpConfig:
    """Tunable transport parameters.

    Attributes:
        mss: maximum segment (payload) size in bytes.
        initial_cwnd_segments: initial congestion window, in segments.
        initial_ssthresh_bytes: initial slow-start threshold (effectively
            unbounded by default).
        dupack_threshold: duplicate ACKs that trigger fast retransmit; the
            MMPTCP packet-scatter phase raises this dynamically through a
            reordering policy instead of using the static value.
        min_rto / max_rto / initial_rto: RTO clamps (seconds).  ``min_rto``
            defaults to the conventional 200 ms, which is precisely why RTOs
            devastate 70 KB flows.  ``initial_rto`` (used before any RTT
            sample exists, i.e. for lost SYNs) also defaults to 200 ms — the
            data-centre-tuned value; RFC 6298's 1 s would add a second,
            unrelated penalty on handshake losses.
        ecn_enabled: whether data packets advertise ECN capability (DCTCP).
        max_cwnd_bytes: optional cap modelling a bounded receive window.
    """

    mss: int = 1400
    initial_cwnd_segments: int = 4
    initial_ssthresh_bytes: int = 10_000_000
    dupack_threshold: int = 3
    min_rto: float = milliseconds(200)
    max_rto: float = 60.0
    initial_rto: float = milliseconds(200)
    ecn_enabled: bool = False
    max_cwnd_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise ValueError("mss must be positive")
        if self.initial_cwnd_segments < 1:
            raise ValueError("initial_cwnd_segments must be at least 1")
        if self.dupack_threshold < 1:
            raise ValueError("dupack_threshold must be at least 1")
        if self.min_rto <= 0 or self.max_rto < self.min_rto:
            raise ValueError("require 0 < min_rto <= max_rto")

    @property
    def initial_cwnd_bytes(self) -> int:
        """Initial congestion window expressed in bytes."""
        return self.initial_cwnd_segments * self.mss


@dataclass
class SenderStats:
    """Counters accumulated by a sender over the lifetime of one flow."""

    packets_sent: int = 0
    bytes_sent: int = 0
    data_packets_sent: int = 0
    retransmitted_packets: int = 0
    retransmitted_bytes: int = 0
    fast_retransmits: int = 0
    rto_events: int = 0
    spurious_retransmits: int = 0
    #: Packets the local host's NIC refused at send time (down interface or
    #: full uplink queue).  These were counted in ``packets_sent`` but never
    #: reached the wire — the same class of loss as interface-level fault
    #: drops, surfaced here so transports that ignore ``Host.send``'s bool
    #: return no longer lose the event entirely.
    send_fault_drops: int = 0
    acks_received: int = 0
    duplicate_acks: int = 0
    ecn_echoes_received: int = 0
    start_time: float = 0.0
    established_time: Optional[float] = None
    completion_time: Optional[float] = None

    @property
    def experienced_rto(self) -> bool:
        """True if at least one retransmission timeout fired for this flow."""
        return self.rto_events > 0


CompletionCallback = Callable[["Endpoint"], None]


class Endpoint:
    """Base class for anything bound to a host port that sends/receives packets."""

    #: Interface index this endpoint's packets leave through, or ``None`` for
    #: the host's normal uplink selection (flow-hash ECMP when multi-homed).
    #: Set by path managers that pin subflows to interfaces (``fullmesh``);
    #: a class attribute so the unpinned common case costs one dict miss,
    #: not per-instance storage.  The index must be in range for the host's
    #: interface table — ``Host.send_via`` raises ``ValueError`` on a stale
    #: or misconfigured pin instead of silently aliasing onto another uplink.
    egress_interface: Optional[int] = None

    #: Telemetry probe sink (see :mod:`repro.obs.telemetry`).  The disabled
    #: singleton as a class attribute follows the same zero-cost convention
    #: as ``egress_interface``: unprobed endpoints pay one attribute read
    #: and a falsy ``enabled`` check at each instrumentation point, and no
    #: per-instance storage.  The experiment runner assigns a
    #: ``TelemetryRecorder`` per flow when probes are requested.
    probes: TelemetryProbes = NULL_PROBES

    def __init__(
        self,
        simulator: Simulator,
        host: Host,
        local_port: Optional[int] = None,
        trace: TraceSink = NULL_SINK,
    ) -> None:
        self.simulator = simulator
        self.host = host
        self.trace = trace
        self.local_port = local_port if local_port is not None else host.allocate_port()
        host.bind(self.local_port, self)

    # ------------------------------------------------------------------

    def on_packet(self, packet: Packet) -> None:
        """Handle a packet demultiplexed to this endpoint (subclasses override)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release the bound port."""
        self.host.unbind(self.local_port)

    def transmit(self, packet: Packet) -> bool:
        """Hand a fully formed packet to the owning host for transmission.

        Ownership transfers with the call: whether the host accepts the
        packet or drops it (down NIC, full uplink queue), the network layer
        releases it to the packet pool — the endpoint must not read or reuse
        the packet afterwards.  A ``False`` return means the packet was
        locally dropped; callers should fold that into their loss accounting
        (see :attr:`SenderStats.send_fault_drops`).
        """
        if self.egress_interface is None:
            return self.host.send(packet)
        return self.host.send_via(packet, self.egress_interface)

    @property
    def address(self) -> int:
        """Address of the host this endpoint lives on."""
        return self.host.address
