"""MMPTCP reproduction library.

A packet-level discrete-event simulator of data-centre networks together
with TCP NewReno, DCTCP, MPTCP (LIA) and **MMPTCP** — the hybrid transport
of Kheirkhah, Wakeman & Parisis, *Short vs. Long Flows: A Battle That Both
Can Win* (SIGCOMM 2015) — plus the workloads, metrics and experiment
harnesses needed to regenerate every figure and statistic in that paper.

Typical use::

    from repro.experiments import reproduction_scale, run_experiment

    config = reproduction_scale(protocol="mmptcp", num_subflows=8)
    result = run_experiment(config)
    print(result.metrics.summary_dict())
"""

from repro import (
    analysis,
    core,
    experiments,
    metrics,
    net,
    sim,
    topology,
    traffic,
    transport,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "core",
    "experiments",
    "metrics",
    "net",
    "sim",
    "topology",
    "traffic",
    "transport",
    "__version__",
]
