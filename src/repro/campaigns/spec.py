"""Declarative campaign specifications.

A :class:`CampaignSpec` is pure data describing a full evaluation grid:

* ``scenarios`` — registered :class:`~repro.scenarios.spec.ScenarioSpec`
  names (topology variant + fault schedule + workload shape),
* ``protocols`` — the transports each scenario is crossed with,
* ``sweeps`` — ordered config-field value lists whose cross-product adds
  parameter-sweep axes (e.g. ``num_subflows`` × ``queue_capacity_packets``),
* ``replications`` — seeded repetitions per cell, with independent seeds
  derived via :func:`repro.experiments.parallel.seeded_replications`.

Specs serialise to/from plain JSON dictionaries (``to_dict``/``from_dict``/
``from_file``), so a campaign can live in version control next to the
report it produces.  Cell enumeration order — scenario, then protocol, then
sweep point, then replication — is part of the spec's contract; it fixes
cell indices, report row order and therefore report bytes.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Union

from repro.experiments.config import SCALES, ExperimentConfig, scaled_config
from repro.scenarios.spec import tiny_config
from repro.traffic.flowspec import ALL_PROTOCOLS

#: Scales a campaign may name: the scenario-matrix "tiny" plus the CLI trio.
CAMPAIGN_SCALES = ("tiny",) + SCALES

#: Keys accepted in a campaign spec document.
_SPEC_FIELDS = (
    "name",
    "scenarios",
    "protocols",
    "replications",
    "scale",
    "seed",
    "sweeps",
    "config_overrides",
)


def _pairs(
    mapping: Union[Mapping[str, Any], Sequence[Tuple[str, Any]]],
) -> Tuple[Tuple[str, Any], ...]:
    """Normalise a dict (or pair sequence) to an order-preserving pair tuple."""
    if isinstance(mapping, Mapping):
        return tuple((str(key), value) for key, value in mapping.items())
    return tuple((str(key), value) for key, value in mapping)


@dataclass(frozen=True)
class CampaignSpec:
    """One declared campaign: the grid, the scale, and the root seed.

    Attributes:
        name: label used in reports and artifact metadata.
        scenarios: registered scenario names, in report order.
        protocols: transport protocols, in report order.
        replications: seeded repetitions per (scenario, protocol, sweep
            point) cell.  Replication ``i`` is always seeded by the
            hash-derived spawn key ``(campaign seed, "replication", i)`` —
            for ``n == 1`` too — so raising the count later leaves existing
            cells' seeds and cache keys unchanged: an extended campaign
            re-simulates only the new replications.
        scale: one of :data:`CAMPAIGN_SCALES` (base fabric/workload size).
        seed: the campaign's root seed.
        sweeps: ordered ``(config_field, (value, ...))`` axes; the cell grid
            crosses every combination in declaration order.
        config_overrides: ordered ``(config_field, value)`` pairs applied to
            the base config before scenarios/sweeps (shrink a fabric, pin a
            queue kind, ...).
    """

    name: str
    scenarios: Tuple[str, ...]
    protocols: Tuple[str, ...]
    replications: int = 1
    scale: str = "tiny"
    seed: int = 20150817
    sweeps: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    config_overrides: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign name cannot be empty")
        if not self.scenarios:
            raise ValueError("campaign needs at least one scenario")
        if not self.protocols:
            raise ValueError("campaign needs at least one protocol")
        for protocol in self.protocols:
            if protocol not in ALL_PROTOCOLS:
                raise ValueError(
                    f"unknown protocol {protocol!r}; expected one of {ALL_PROTOCOLS}"
                )
        if self.replications < 1:
            raise ValueError("replications must be at least 1")
        if self.scale not in CAMPAIGN_SCALES:
            raise ValueError(f"unknown scale {self.scale!r}; expected one of {CAMPAIGN_SCALES}")
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "protocols", tuple(self.protocols))
        object.__setattr__(self, "sweeps", tuple(
            (str(name), tuple(values)) for name, values in self.sweeps
        ))
        object.__setattr__(self, "config_overrides", _pairs(self.config_overrides))
        for name, values in self.sweeps:
            if not values:
                raise ValueError(f"sweep axis {name!r} has no values")
        reserved = {"protocol", "fault_schedule", "seed"}
        for name, _ in tuple(self.sweeps) + self.config_overrides:
            if name in reserved:
                raise ValueError(
                    f"config field {name!r} is campaign-managed and cannot be "
                    "swept or overridden (protocols/scenarios/replications own it)"
                )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def sweep_points(self) -> List[Dict[str, Any]]:
        """Every sweep-axis combination, in declaration order.

        With no sweep axes this is a single empty point, so the cell grid
        is always ``scenarios × protocols × sweep_points × replications``.
        """
        if not self.sweeps:
            return [{}]
        names = [name for name, _ in self.sweeps]
        value_lists = [values for _, values in self.sweeps]
        return [dict(zip(names, combo)) for combo in itertools.product(*value_lists)]

    def cell_count(self) -> int:
        """Total number of cells the campaign declares."""
        return (
            len(self.scenarios)
            * len(self.protocols)
            * len(self.sweep_points())
            * self.replications
        )

    # ------------------------------------------------------------------
    # (De)serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready document; ``from_dict`` round-trips it exactly."""
        return {
            "name": self.name,
            "scenarios": list(self.scenarios),
            "protocols": list(self.protocols),
            "replications": self.replications,
            "scale": self.scale,
            "seed": self.seed,
            "sweeps": {name: list(values) for name, values in self.sweeps},
            "config_overrides": dict(self.config_overrides),
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "CampaignSpec":
        """Build a spec from a JSON document, rejecting unknown keys."""
        unknown = sorted(set(document) - set(_SPEC_FIELDS))
        if unknown:
            raise ValueError(f"unknown campaign spec keys: {unknown}")
        missing = [key for key in ("name", "scenarios", "protocols") if key not in document]
        if missing:
            raise ValueError(f"campaign spec is missing required keys: {missing}")
        sweeps = document.get("sweeps", {})
        if isinstance(sweeps, Mapping):
            sweeps = tuple((name, tuple(values)) for name, values in sweeps.items())
        return cls(
            name=document["name"],
            scenarios=tuple(document["scenarios"]),
            protocols=tuple(document["protocols"]),
            replications=int(document.get("replications", 1)),
            scale=document.get("scale", "tiny"),
            seed=int(document.get("seed", 20150817)),
            sweeps=sweeps,
            config_overrides=_pairs(document.get("config_overrides", {})),
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "CampaignSpec":
        """Load a spec from a JSON file."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def campaign_base_config(spec: CampaignSpec) -> ExperimentConfig:
    """The base :class:`ExperimentConfig` a campaign's cells derive from."""
    if spec.scale == "tiny":
        config = tiny_config(seed=spec.seed)
    else:
        config = scaled_config(spec.scale, spec.seed)
    overrides = dict(spec.config_overrides)
    return config.with_updates(**overrides) if overrides else config
