"""Cache-aware campaign execution, status, reporting and GC.

Execution model
---------------

:func:`campaign_run_specs` enumerates the campaign's cells as ordinary
:class:`~repro.experiments.parallel.RunSpec`s in the spec's declared order
(scenario → protocol → sweep point → replication); each cell's cache key is
derived with :func:`repro.store.run_key_for_spec` from the cell's *full
input* — config + workload recipe — never from its position or the worker
count.

:func:`run_campaign` then dispatches **only the cache misses** through the
shared :class:`~repro.experiments.parallel.SweepRunner` (hits skip worker
fan-out entirely; a fully cached campaign never creates a process pool) and
persists every freshly simulated cell atomically *the moment it completes*,
via the runner's completion-order ``on_result`` hook.  A campaign killed
mid-matrix therefore keeps all finished cells; re-running it resumes from
the store, and the merged outcome is byte-identical to an uninterrupted run
for any ``workers`` value.

Reporting reads artifacts only (:func:`campaign_report` performs zero
simulation), so analysis changes regenerate reports without re-running
anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.analysis.report import campaign_report_markdown, replication_summary_rows
from repro.campaigns.spec import CampaignSpec, campaign_base_config
from repro.experiments.parallel import (
    RunSpec,
    SweepRunner,
    resolve_workers,
    seeded_replications,
)
from repro.experiments.runner import ExperimentResult
from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import result_metrics_row
from repro.scenarios.spec import build_scenario_workload
from repro.store.canonical import run_key_for_spec
from repro.store.runstore import RunStore
from repro.store.serialize import result_from_dict


@dataclass(frozen=True)
class CellStatus:
    """Where one declared cell stands relative to the store."""

    index: int
    scenario: str
    protocol: str
    params: Dict[str, Any]
    replication: int
    key: str
    stored: bool


@dataclass
class CampaignCell:
    """One executed (or cache-loaded) campaign cell."""

    index: int
    scenario: str
    protocol: str
    params: Dict[str, Any]
    replication: int
    key: str
    result: ExperimentResult
    cached: bool


@dataclass
class CampaignOutcome:
    """Everything :func:`run_campaign` produces, cells in declared order."""

    spec: CampaignSpec
    cells: List[CampaignCell]

    @property
    def cache_hits(self) -> int:
        return sum(1 for cell in self.cells if cell.cached)

    @property
    def simulated(self) -> int:
        return sum(1 for cell in self.cells if not cell.cached)


class CampaignIncompleteError(Exception):
    """A report was requested but some declared cells are not in the store."""

    def __init__(self, missing: Sequence[CellStatus]) -> None:
        self.missing = list(missing)
        names = ", ".join(
            f"{status.scenario}/{status.protocol}"
            + (f"/{params_label(status.params)}" if status.params else "")
            + (f"#r{status.replication}" if status.replication else "")
            for status in self.missing[:8]
        )
        suffix = ", ..." if len(self.missing) > 8 else ""
        super().__init__(
            f"{len(self.missing)} campaign cell(s) missing from the store "
            f"({names}{suffix}); run the campaign first"
        )


def params_label(params: Dict[str, Any]) -> str:
    """Deterministic compact rendering of a sweep point (declared order).

    The one formatting used everywhere a sweep point is shown — report
    rows, status tables, incomplete-campaign errors — so the renderings
    can never drift apart.
    """
    return " ".join(f"{name}={value}" for name, value in params.items())


# ---------------------------------------------------------------------------
# Cell enumeration
# ---------------------------------------------------------------------------


def campaign_run_specs(spec: CampaignSpec) -> List[RunSpec]:
    """One :class:`RunSpec` per declared cell, indexed in declared order.

    Order — scenario, then protocol, then sweep point, then replication — is
    part of the campaign contract: it fixes cell indices and report row
    order.  Replication seeds always come from hash-derived spawn keys —
    replication ``i`` is seeded by ``spawn_seeds(campaign_seed, n,
    "replication")[i]`` for *any* ``n``, including 1 — so raising
    ``replications`` later leaves every existing cell's seed (and therefore
    its cache key) unchanged: extending a finished campaign simulates only
    the new replications.
    """
    base = campaign_base_config(spec)
    sweep_points = spec.sweep_points()
    sweep_fields = {name for name, _ in spec.sweeps}
    specs: List[RunSpec] = []
    for scenario_name in spec.scenarios:
        scenario = get_scenario(scenario_name)
        clobbered = sweep_fields & set(scenario.config_overrides)
        if clobbered:
            # The scenario's overrides are applied after sweep values, so a
            # shared field would collapse every sweep point into one config
            # (and one cache key) while the report still showed N rows.
            raise ValueError(
                f"sweep axis/axes {sorted(clobbered)} are overridden by scenario "
                f"{scenario_name!r}; its config_overrides would clobber every "
                "sweep value"
            )
        for protocol in spec.protocols:
            for params in sweep_points:
                cell_config = scenario.apply_to(
                    base.with_updates(protocol=protocol, **params)
                )
                configs = seeded_replications(cell_config, spec.replications)
                for replication, config in enumerate(configs):
                    specs.append(
                        RunSpec(
                            index=len(specs),
                            config=config,
                            workload_factory=build_scenario_workload,
                            workload_args=(
                                scenario.workload,
                                scenario.fan_in,
                                scenario.response_bytes,
                                scenario.receiver,
                            ),
                            tag={
                                "scenario": scenario_name,
                                "protocol": protocol,
                                "params": dict(params),
                                "replication": replication,
                            },
                        )
                    )
    return specs


def campaign_keys(specs: Sequence[RunSpec]) -> List[str]:
    """The cache key of every cell, aligned with ``specs``."""
    return [run_key_for_spec(spec) for spec in specs]


def _cell_meta(spec: CampaignSpec, run_spec: RunSpec) -> Dict[str, Any]:
    """The provenance labels one campaign attaches to a cell it uses."""
    return {
        "campaign": spec.name,
        "scenario": run_spec.tag["scenario"],
        "protocol": run_spec.tag["protocol"],
        "params": run_spec.tag["params"],
        "replication": run_spec.tag["replication"],
    }


def _cell_from(spec: RunSpec, key: str, result: ExperimentResult, cached: bool) -> CampaignCell:
    return CampaignCell(
        index=spec.index,
        scenario=spec.tag["scenario"],
        protocol=spec.tag["protocol"],
        params=spec.tag["params"],
        replication=spec.tag["replication"],
        key=key,
        result=result,
        cached=cached,
    )


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def _cell_coordinates(run_spec: RunSpec, key: str) -> Dict[str, Any]:
    """The stable identity fields every progress event carries for a cell."""
    return {
        "index": run_spec.index,
        "key": key,
        "scenario": run_spec.tag["scenario"],
        "protocol": run_spec.tag["protocol"],
        "params": dict(run_spec.tag["params"]),
        "replication": run_spec.tag["replication"],
    }


def run_campaign(
    spec: CampaignSpec,
    store: RunStore,
    workers: Optional[int] = 1,
    progress: Optional[Callable[[RunSpec], None]] = None,
    events: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> CampaignOutcome:
    """Execute ``spec`` against ``store`` and return all cells in order.

    Cached cells are loaded (and verified) from the store without touching
    the sweep runner; missing cells are simulated — in parallel when
    ``workers`` allows — and each one is persisted atomically as soon as it
    completes, so an interrupted campaign resumes from every cell that
    finished before the interruption.

    ``events`` (optional) receives one structured dict per campaign
    progress event: ``campaign_start``, ``cell_hit`` (declared order),
    ``cell_start`` (dispatch order), ``cell_finish`` (completion order —
    under a process pool this order is timing-dependent), and
    ``campaign_finish``.  Progress events are operator telemetry: the
    per-cell wall-clock travels under a ``diagnostics`` key, and the stream
    is never part of a byte-compare surface.
    """
    worker_count = resolve_workers(workers)  # fail fast on nonsense values
    run_specs = campaign_run_specs(spec)
    keys = campaign_keys(run_specs)
    cells: List[Optional[CampaignCell]] = [None] * len(run_specs)
    if events is not None:
        events(
            {
                "event": "campaign_start",
                "campaign": spec.name,
                "cells": len(run_specs),
                "workers": worker_count,
            }
        )

    misses: List[RunSpec] = []
    hit_entries: Dict[str, Dict[str, Any]] = {}
    for run_spec, key in zip(run_specs, keys):
        if not store.has(key):
            misses.append(run_spec)
            continue
        artifact = store.get_artifact(key)  # one verified read per hit
        cells[run_spec.index] = _cell_from(
            run_spec, key, result_from_dict(artifact["payload"]), cached=True
        )
        if events is not None:
            events({"event": "cell_hit", **_cell_coordinates(run_spec, key)})
        # Claim the cell for this campaign: gc is scoped by the most recent
        # user's label, so a campaign that *hits* a shared cell protects it
        # exactly like the one that simulated it.  The claim is durable —
        # set_meta rewrites the artifact when the label changes (and writes
        # nothing when it already matches), so a rebuilt index keeps it.
        meta = _cell_meta(spec, run_spec)
        if artifact["meta"] != meta:
            hit_entries[key] = store.set_meta(key, meta, artifact=artifact)
    if hit_entries:
        store.index_add(hit_entries)

    if misses:
        key_by_index = {run_spec.index: keys[run_spec.index] for run_spec in misses}
        index_entries: Dict[str, Dict[str, Any]] = {}

        def dispatch(run_spec: RunSpec) -> None:
            if events is not None:
                events(
                    {
                        "event": "cell_start",
                        **_cell_coordinates(run_spec, key_by_index[run_spec.index]),
                    }
                )
            if progress is not None:
                progress(run_spec)

        def persist(run_spec: RunSpec, result: ExperimentResult) -> None:
            key = key_by_index[run_spec.index]
            # Index updates are batched into one write after the sweep: the
            # artifact write is what makes a cell resumable (has/get never
            # read the index), and a per-cell index rewrite would be O(n²).
            _, index_entries[key] = store.put_entry(
                key, result, meta=_cell_meta(spec, run_spec)
            )
            if events is not None:
                events(
                    {
                        "event": "cell_finish",
                        **_cell_coordinates(run_spec, key),
                        "events_processed": result.events_processed,
                        # Wall-clock is diagnostics-only, like everywhere else.
                        "diagnostics": {"wallclock_s": result.wallclock_s},
                    }
                )

        try:
            results = SweepRunner(workers).run(misses, progress=dispatch, on_result=persist)
        finally:
            # Even an interrupted sweep indexes the cells it did persist.
            if index_entries:
                store.index_add(index_entries)
        for run_spec, result in zip(misses, results):
            cells[run_spec.index] = _cell_from(
                run_spec, key_by_index[run_spec.index], result, cached=False
            )

    outcome = CampaignOutcome(spec=spec, cells=[cell for cell in cells if cell is not None])
    if events is not None:
        events(
            {
                "event": "campaign_finish",
                "campaign": spec.name,
                "cells": len(outcome.cells),
                "cache_hits": outcome.cache_hits,
                "simulated": outcome.simulated,
            }
        )
    return outcome


# ---------------------------------------------------------------------------
# Status / loading
# ---------------------------------------------------------------------------


def _statuses_for(run_specs: Sequence[RunSpec], store: RunStore) -> List[CellStatus]:
    return [
        CellStatus(
            index=run_spec.index,
            scenario=run_spec.tag["scenario"],
            protocol=run_spec.tag["protocol"],
            params=run_spec.tag["params"],
            replication=run_spec.tag["replication"],
            key=key,
            stored=store.has(key),
        )
        for run_spec, key in zip(run_specs, campaign_keys(run_specs))
    ]


def campaign_status(spec: CampaignSpec, store: RunStore) -> List[CellStatus]:
    """Which declared cells are persisted, without running anything."""
    return _statuses_for(campaign_run_specs(spec), store)


def status_summary_rows(statuses: Sequence[CellStatus]) -> List[Dict[str, object]]:
    """Per-(scenario, protocol) completion counts in first-seen (declared) order.

    The ``campaign status --summary`` table: one row per coordinate with
    declared/stored/missing cell counts.  Derived purely from the statuses,
    so it is byte-stable for a given spec and store state.
    """
    rows: Dict[Any, Dict[str, object]] = {}
    for status in statuses:
        key = (status.scenario, status.protocol)
        row = rows.get(key)
        if row is None:
            row = rows[key] = {
                "scenario": status.scenario,
                "protocol": status.protocol,
                "cells": 0,
                "stored": 0,
                "missing": 0,
            }
        row["cells"] += 1
        row["stored" if status.stored else "missing"] += 1
    return list(rows.values())


def load_campaign_cells(spec: CampaignSpec, store: RunStore) -> List[CampaignCell]:
    """All cells loaded from artifacts only (zero simulation).

    Raises :class:`CampaignIncompleteError` when any declared cell is
    missing, listing the absent coordinates.
    """
    run_specs = campaign_run_specs(spec)  # enumerate (and key) the grid once
    statuses = _statuses_for(run_specs, store)
    missing = [status for status in statuses if not status.stored]
    if missing:
        raise CampaignIncompleteError(missing)
    return [
        _cell_from(run_spec, status.key, store.get(status.key), cached=True)
        for run_spec, status in zip(run_specs, statuses)
    ]


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


def campaign_rows(cells: Sequence[CampaignCell]) -> List[Dict[str, object]]:
    """Flat per-cell rows in cell order.

    Key order — ``scenario``, ``protocol``, ``params``, ``replication``,
    ``faults``, then :data:`repro.scenarios.runner.CELL_METRIC_FIELDS` — is
    insertion-stable and part of the public contract (CSV headers and report
    tables derive from it).
    """
    rows: List[Dict[str, object]] = []
    for cell in cells:
        row: Dict[str, object] = {
            "scenario": cell.scenario,
            "protocol": cell.protocol,
            "params": params_label(cell.params),
            "replication": cell.replication,
            "faults": len(cell.result.config.fault_schedule),
        }
        row.update(result_metrics_row(cell.result))
        rows.append(row)
    return rows


def campaign_summary_rows(cells: Sequence[CampaignCell]) -> List[Dict[str, object]]:
    """Across-replication mean ± 95% CI rows, one per cell coordinate.

    A thin composition of :func:`campaign_rows` with
    :func:`repro.analysis.report.replication_summary_rows`; see the latter
    for the grouping and the pinned key order.
    """
    return replication_summary_rows(campaign_rows(cells))


def campaign_report(
    spec: CampaignSpec,
    store: RunStore,
    baseline_protocol: str = "tcp",
) -> str:
    """The campaign's markdown report, generated from artifacts only.

    Byte-stable by construction: every number comes from stored payloads,
    rows follow declared cell order, and nothing volatile (wall-clock,
    hit/miss counts, timestamps) appears in the document — so regenerating
    the report after a fully cached re-run reproduces it byte for byte.
    """
    cells = load_campaign_cells(spec, store)
    return campaign_report_markdown(spec, campaign_rows(cells), baseline_protocol)


def outcome_report(outcome: CampaignOutcome, baseline_protocol: str = "tcp") -> str:
    """The report of a just-executed campaign, from its in-memory cells.

    Byte-identical to :func:`campaign_report` over the same store (rows
    contain only simulated quantities, which round-trip losslessly), but
    without re-enumerating the grid or re-reading and re-verifying the
    artifacts that were produced moments ago.
    """
    return campaign_report_markdown(
        outcome.spec, campaign_rows(outcome.cells), baseline_protocol
    )


# ---------------------------------------------------------------------------
# Garbage collection
# ---------------------------------------------------------------------------


def campaign_gc(spec: CampaignSpec, store: RunStore, dry_run: bool = False) -> List[str]:
    """Drop this campaign's stored artifacts that the spec no longer declares.

    Scoped by provenance: only artifacts whose ``meta["campaign"]`` equals
    ``spec.name`` *and* whose key is not among the campaign's current cell
    keys are removed — so editing the spec (fewer scenarios, a changed
    sweep) reclaims the dropped cells' space, while artifacts belonging to
    other campaigns sharing the store are never touched.  The label records
    the cell's *most recent user*: every :func:`run_campaign` durably claims
    the cells it used — cache hits included, via an atomic artifact-meta
    rewrite that survives index rebuilds — so a shared cell is only
    collectable by the last campaign that ran with it, and only once that
    campaign stops declaring it.  For store-wide collection against an
    explicit keep-set, use :meth:`repro.store.RunStore.gc` directly.
    Returns the removed (or, with ``dry_run``, removable) keys, sorted.
    """
    keep = set(campaign_keys(campaign_run_specs(spec)))
    metas = store.metas()
    removed = sorted(
        key
        for key, meta in metas.items()
        if key not in keep and meta.get("campaign") == spec.name
    )
    if not dry_run:
        store.remove_many(removed)  # one index rewrite for the whole batch
    return removed
