"""Resumable experiment campaigns on top of the content-addressed run store.

A *campaign* is a declared grid — scenarios × transports × parameter sweeps
× seeded replications — executed through the shared
:class:`repro.experiments.parallel.SweepRunner` with **cache-aware
dispatch**: cells whose cache key is already in the :class:`repro.store.RunStore`
are loaded instead of simulated, and every freshly simulated cell is
persisted atomically the moment it completes.  Killing a campaign therefore
loses only the cells that were mid-flight; re-running it resumes from the
persisted ones, and re-running an unchanged campaign performs zero
simulation work.  Reports are generated purely from stored artifacts, so an
analysis tweak never forces a re-simulation.
"""

from repro.campaigns.runner import (
    CampaignCell,
    CampaignIncompleteError,
    CampaignOutcome,
    CellStatus,
    campaign_gc,
    campaign_keys,
    campaign_report,
    campaign_rows,
    campaign_run_specs,
    campaign_status,
    campaign_summary_rows,
    load_campaign_cells,
    outcome_report,
    params_label,
    run_campaign,
    status_summary_rows,
)
from repro.campaigns.spec import CAMPAIGN_SCALES, CampaignSpec, campaign_base_config

__all__ = [
    "CAMPAIGN_SCALES",
    "CampaignCell",
    "CampaignIncompleteError",
    "CampaignOutcome",
    "CampaignSpec",
    "CellStatus",
    "campaign_base_config",
    "campaign_gc",
    "campaign_keys",
    "campaign_report",
    "campaign_rows",
    "campaign_run_specs",
    "campaign_status",
    "campaign_summary_rows",
    "load_campaign_cells",
    "outcome_report",
    "params_label",
    "run_campaign",
    "status_summary_rows",
]
