"""Persistent, content-addressed experiment result store.

This package is the layer between *execution* and *analysis*: a completed
run's metrics are serialised to a deterministic JSON artifact keyed by a
cache key derived from the run's full input (configuration + workload
recipe + store schema version), so that

* re-running an unchanged experiment is a cache hit that skips simulation
  entirely,
* an interrupted sweep resumes from the cells already persisted, and
* reports regenerate from stored artifacts with zero simulation work.

Three modules cooperate:

* :mod:`repro.store.canonical` — canonicalisation: stable JSON encoding and
  the :func:`run_key` cache-key derivation.
* :mod:`repro.store.serialize` — lossless ``ExperimentResult`` ⇄ JSON
  payload conversion.
* :mod:`repro.store.runstore` — the on-disk :class:`RunStore` with atomic
  ``put``/``get``/``has``/``gc`` and integrity hashes.
"""

from repro.store.canonical import (
    STORE_SCHEMA_VERSION,
    canonical_dumps,
    run_key,
    run_key_for_spec,
    sha256_hex,
    to_jsonable,
    workload_recipe,
)
from repro.store.runstore import RunStore, StoreError, StoreIntegrityError
from repro.store.serialize import (
    config_from_dict,
    config_to_dict,
    result_from_dict,
    result_to_dict,
)

__all__ = [
    "STORE_SCHEMA_VERSION",
    "RunStore",
    "StoreError",
    "StoreIntegrityError",
    "canonical_dumps",
    "config_from_dict",
    "config_to_dict",
    "result_from_dict",
    "result_to_dict",
    "run_key",
    "run_key_for_spec",
    "sha256_hex",
    "to_jsonable",
    "workload_recipe",
]
