"""Canonical JSON encoding and cache-key derivation.

The store's whole contract rests on two properties:

1. **Byte stability** — the same logical payload always serialises to the
   same bytes, on every platform and in every process.  That is what makes
   artifacts diffable, integrity-hashable and byte-comparable across runs.
2. **Key stability** — the same run *input* always derives the same cache
   key, and any semantically meaningful change to the input derives a
   different key.

Both are achieved with plain deterministic JSON:

* keys sorted (``sort_keys=True``), separators fixed, ``allow_nan=False``
  (NaN/Infinity are not JSON and their textual form is not portable);
* floats rendered by CPython's shortest round-trip ``repr`` — a pure
  function of the IEEE-754 value, identical on every supported platform;
* for *keys* only, numbers are additionally normalised to a single normal
  form (``2.0`` → ``2``, ``True`` → ``1``) so that configs that compare
  equal under Python's cross-type numeric equality hash to the same key.

Nothing here depends on process identity, dict iteration order, hash
randomisation (:func:`run_key` uses SHA-256, never :func:`hash`), wall
clock, or the number of workers a sweep ran on.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping, Optional, Sequence

#: Bump when the artifact payload layout or the key derivation changes in a
#: way that invalidates previously stored results.  The version participates
#: in every cache key, so a bump makes every old entry a clean miss instead
#: of a wrong hit.
#: v2: ExperimentConfig grew ``scheduler`` / ``path_manager`` fields (and the
#: previously dead scheduler now influences results, so v1 artifacts no
#: longer describe what a re-run would produce).
#: v3: FaultEvent grew ``duration_s`` / ``new_address`` (mobility verbs), so
#: the serialised form of every fault schedule — and therefore the key of
#: any config that has one — changed.
#: v4: ExperimentConfig grew the ``fidelity`` axis (packet vs flow-level
#: engine), so every config's serialised field set — and therefore every
#: key — changed.
STORE_SCHEMA_VERSION = 4


def to_jsonable(value: Any, _path: str = "$") -> Any:
    """Strictly convert ``value`` to JSON-serialisable primitives.

    Tuples become lists, mappings must have string keys, and anything
    without an exact JSON representation (sets, objects, NaN/Infinity)
    raises ``TypeError`` naming the offending path — a store key must never
    silently depend on ``str()`` of an arbitrary object.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise TypeError(f"non-finite float at {_path} cannot be canonicalised")
        return value
    if isinstance(value, Mapping):
        result = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(f"non-string mapping key {key!r} at {_path}")
            result[key] = to_jsonable(item, f"{_path}.{key}")
        return result
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item, f"{_path}[{index}]") for index, item in enumerate(value)]
    raise TypeError(f"{type(value).__name__} at {_path} is not canonically JSON-serialisable")


def canonical_dumps(payload: Any) -> str:
    """The canonical compact JSON encoding of ``payload`` (no newline).

    This is the byte form that integrity hashes and cache keys are computed
    over: sorted keys, fixed separators, no NaN, shortest round-trip float
    repr.  Equal payloads always produce equal strings.
    """
    # repro: allow[no-raw-json] -- this IS the canonical dumper the policy
    # routes compact/store JSON through; every other call site must use it.
    return json.dumps(
        to_jsonable(payload), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def sha256_hex(text: str) -> str:
    """SHA-256 of ``text`` (UTF-8), as lowercase hex."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _normalise_numbers(value: Any) -> Any:
    """Collapse numerically equal values to one normal form, recursively.

    ``ExperimentConfig`` equality uses Python's ``==``, under which ``2.0``
    equals ``2`` and ``True`` equals ``1`` — so key derivation must not
    distinguish them either, or two equal configs could hash differently.
    Non-integral floats are untouched.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, dict):
        return {key: _normalise_numbers(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_normalise_numbers(item) for item in value]
    return value


def workload_recipe(
    factory: Optional[Any],
    args: Sequence[Any] = (),
    kwargs: Optional[Mapping[str, Any]] = None,
) -> Optional[dict]:
    """The canonical description of a :class:`RunSpec`'s workload recipe.

    A workload factory travels to worker processes by reference (module +
    qualname), so that same reference is what identifies it in the cache
    key; its arguments are canonicalised as data.  Returns ``None`` for the
    default workload (no factory, no arguments) so plain config-only runs
    key identically however they were constructed.
    """
    if factory is None and not args and not kwargs:
        return None
    name = (
        f"{factory.__module__}:{factory.__qualname__}" if factory is not None else None
    )
    return {
        "factory": name,
        "args": to_jsonable(list(args)),
        "kwargs": to_jsonable(dict(kwargs or {})),
    }


def run_key(config: Any, workload: Optional[Mapping[str, Any]] = None) -> str:
    """The content-addressed cache key of one simulation run.

    The key covers everything that determines the run's simulated output:
    the full :class:`~repro.experiments.config.ExperimentConfig` (including
    the fault schedule and seed), the workload recipe, and the store schema
    version.  It deliberately excludes execution details that do not change
    results — worker counts, process identity, wall-clock time — which is
    what makes a campaign resumable across machines and ``--workers``
    values.

    Equal configs yield equal keys; changing any single config field yields
    a different key (the envelope is a sorted-key JSON document, so every
    field participates in the digest).
    """
    from repro.store.serialize import config_to_dict

    envelope = {
        "schema": STORE_SCHEMA_VERSION,
        "config": _normalise_numbers(to_jsonable(config_to_dict(config))),
        "workload": _normalise_numbers(to_jsonable(workload)),
    }
    return sha256_hex(canonical_dumps(envelope))


def run_key_for_spec(spec: Any) -> str:
    """The cache key of one :class:`repro.experiments.parallel.RunSpec`.

    Uses the spec's config and workload recipe only; ``index`` and ``tag``
    are labels, not inputs, and must not perturb the key.
    """
    recipe = workload_recipe(
        spec.workload_factory, spec.workload_args, spec.workload_kwargs
    )
    return run_key(spec.config, recipe)
