"""The on-disk content-addressed run store.

Layout (all paths relative to the store root)::

    index.json                     # convenience index: key -> {sha256, meta}
    objects/<key[:2]>/<key>.json   # one artifact per completed run

The **objects directory is the source of truth**: ``has``/``get``/``keys``
work purely off artifact files, so a lost or stale ``index.json`` can always
be rebuilt with :meth:`RunStore.reindex`.  Artifacts are written atomically
(temp file + ``os.replace`` in the same directory), which is what makes a
killed campaign resumable — an artifact either exists completely or not at
all, never half-written.

Every artifact embeds its own key and a SHA-256 of the canonical encoding of
its payload; :meth:`RunStore.get` verifies both and raises
:class:`StoreIntegrityError` on any mismatch, so a corrupted or hand-edited
artifact can never silently masquerade as a cached result.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set, Tuple, Union

from repro.experiments.runner import ExperimentResult
from repro.metrics.export import dumps_deterministic
from repro.store.canonical import STORE_SCHEMA_VERSION, canonical_dumps, sha256_hex
from repro.store.serialize import result_from_dict, result_to_dict

PathLike = Union[str, Path]

_KEY_HEX_LENGTH = 64  # SHA-256


class StoreError(Exception):
    """Base class for run-store failures."""


class StoreIntegrityError(StoreError):
    """An artifact's content does not match its recorded key or hash."""


def _validate_key(key: str) -> str:
    if (
        not isinstance(key, str)
        or len(key) != _KEY_HEX_LENGTH
        or any(ch not in "0123456789abcdef" for ch in key)
    ):
        raise StoreError(f"malformed store key {key!r} (expected 64 lowercase hex chars)")
    return key


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (same-directory temp + replace)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(path.name + f".tmp.{os.getpid()}")
    temp.write_text(text)
    os.replace(temp, path)


class RunStore:
    """Content-addressed persistence for completed experiment runs."""

    INDEX_NAME = "index.json"
    OBJECTS_DIR = "objects"

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    @property
    def objects_root(self) -> Path:
        return self.root / self.OBJECTS_DIR

    @property
    def index_path(self) -> Path:
        return self.root / self.INDEX_NAME

    def object_path(self, key: str) -> Path:
        """Where the artifact for ``key`` lives (whether or not it exists)."""
        _validate_key(key)
        return self.objects_root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Core API
    # ------------------------------------------------------------------

    def has(self, key: str) -> bool:
        """True when a completed artifact for ``key`` is on disk."""
        return self.object_path(key).exists()

    def put(
        self,
        key: str,
        result: ExperimentResult,
        meta: Optional[Mapping[str, Any]] = None,
        update_index: bool = True,
    ) -> Path:
        """Persist ``result`` under ``key`` atomically; returns the artifact path.

        ``meta`` carries free-form provenance labels (campaign name, cell
        coordinates); it is stored alongside the payload but excluded from
        the integrity hash, so relabelling never invalidates a result.
        Re-putting an existing key overwrites it atomically (last write
        wins; payloads for the same key are byte-identical by construction).

        ``update_index=False`` skips the per-put index rewrite; bulk writers
        (the campaign runner) batch their entries into one
        :meth:`index_add` call instead, since ``has``/``get`` never consult
        the index — it is a rebuildable convenience cache.
        """
        path, entry = self.put_entry(key, result, meta)
        if update_index:
            self.index_add({key: entry})
        return path

    def put_entry(
        self,
        key: str,
        result: ExperimentResult,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> Tuple[Path, Dict[str, Any]]:
        """Like :meth:`put` with ``update_index=False``, but also returns the
        index entry (``{"sha256", "meta"}``) so batching callers never have
        to re-read the artifact to index it."""
        payload = result_to_dict(result)
        body = canonical_dumps(payload)
        artifact = {
            "key": _validate_key(key),
            "schema": STORE_SCHEMA_VERSION,
            "payload_sha256": sha256_hex(body),
            "meta": dict(meta or {}),
            "payload": payload,
        }
        path = self.object_path(key)
        _atomic_write_text(path, dumps_deterministic(artifact))
        return path, {"sha256": artifact["payload_sha256"], "meta": artifact["meta"]}

    def get(self, key: str) -> ExperimentResult:
        """Load and verify the artifact for ``key``.

        Raises ``KeyError`` when absent and :class:`StoreIntegrityError`
        when the artifact fails verification (embedded key mismatch, hash
        mismatch, unparseable JSON).
        """
        artifact = self.get_artifact(key)
        return result_from_dict(artifact["payload"])

    def get_artifact(self, key: str) -> Dict[str, Any]:
        """The raw verified artifact document (payload + meta + hashes)."""
        path = self.object_path(key)
        if not path.exists():
            raise KeyError(f"store has no entry for key {key}")
        try:
            artifact = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise StoreIntegrityError(f"unparseable artifact {path}: {exc}") from exc
        if artifact.get("key") != key:
            raise StoreIntegrityError(
                f"artifact {path} records key {artifact.get('key')!r}, expected {key}"
            )
        body = canonical_dumps(artifact.get("payload"))
        digest = sha256_hex(body)
        if digest != artifact.get("payload_sha256"):
            raise StoreIntegrityError(
                f"artifact {path} payload hash mismatch: "
                f"recorded {artifact.get('payload_sha256')}, recomputed {digest}"
            )
        return artifact

    def keys(self) -> List[str]:
        """All stored keys, sorted (scanned from the objects directory)."""
        if not self.objects_root.is_dir():
            return []
        found = []
        for shard in sorted(self.objects_root.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                found.append(path.stem)
        return found

    def set_meta(
        self,
        key: str,
        meta: Mapping[str, Any],
        artifact: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Durably replace an artifact's ``meta`` labels; returns its index entry.

        The payload and its integrity hash are untouched, and nothing is
        written at all when the labels already match — so a same-campaign
        cache hit costs zero writes, while a cross-campaign claim rewrites
        the artifact once (atomically) and then stays stable.  Pass the
        already-verified ``artifact`` document to skip a re-read.  The index
        is *not* updated here; callers batch entries via :meth:`index_add`.
        """
        if artifact is None:
            artifact = self.get_artifact(key)
        new_meta = dict(meta)
        if artifact["meta"] != new_meta:
            updated = dict(artifact)
            updated["meta"] = new_meta
            _atomic_write_text(self.object_path(key), dumps_deterministic(updated))
        return {"sha256": artifact["payload_sha256"], "meta": new_meta}

    def remove(self, key: str) -> bool:
        """Delete one artifact (and its index entry); True when it existed."""
        return self.remove_many([key]) == 1

    def remove_many(self, keys: Iterable[str]) -> int:
        """Delete several artifacts with a single index rewrite.

        Returns how many artifact files actually existed.  This is the bulk
        form campaign gc uses: per-key :meth:`remove` would re-read and
        rewrite the whole index once per key.
        """
        entries = self._load_index()
        index_changed = False
        removed = 0
        for key in keys:
            path = self.object_path(key)
            if path.exists():
                path.unlink()
                removed += 1
                if path.parent.is_dir() and not any(path.parent.iterdir()):
                    path.parent.rmdir()
            if entries.pop(key, None) is not None:
                index_changed = True
        if index_changed:
            self._write_index(entries)
        return removed

    def metas(self) -> Dict[str, Dict[str, Any]]:
        """The ``meta`` labels of every stored key.

        Served from the index where possible; keys the index does not cover
        (e.g. batched writes interrupted before :meth:`index_add`) fall back
        to reading their artifact, so the result always reflects the objects
        on disk.
        """
        indexed = self._load_index()
        metas: Dict[str, Dict[str, Any]] = {}
        for key in self.keys():
            entry = indexed.get(key)
            if entry is not None and isinstance(entry.get("meta"), dict):
                metas[key] = entry["meta"]
                continue
            try:
                metas[key] = self.get_artifact(key)["meta"]
            except StoreIntegrityError:
                metas[key] = {}
        return metas

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def lru_entries(self) -> List[Tuple[str, int, int]]:
        """``(key, size_bytes, mtime_ns)`` per artifact, eviction order first.

        Sorted by ``(mtime_ns, key)`` — last modification time with the key
        as the deterministic tie-break.  This single ordering is shared by
        the ``store verify --budget`` preview and :meth:`gc_budget`, so the
        preview always names exactly the artifacts a real sweep would evict.
        """
        entries: List[Tuple[str, int, int]] = []
        for key in self.keys():
            stat = self.object_path(key).stat()
            entries.append((key, stat.st_size, stat.st_mtime_ns))
        entries.sort(key=lambda entry: (entry[2], entry[0]))
        return entries

    def gc_budget(self, budget_bytes: int, dry_run: bool = False) -> List[str]:
        """Evict least-recently-modified artifacts until the store fits.

        Removes artifacts in :meth:`lru_entries` order until the remaining
        total size is within ``budget_bytes``; a store already under budget
        removes nothing.  Returns the evicted (or, with ``dry_run``,
        evictable) keys in eviction order.
        """
        if budget_bytes < 0:
            raise StoreError(f"budget must be non-negative, got {budget_bytes}")
        entries = self.lru_entries()
        excess = sum(size for _, size, _ in entries) - budget_bytes
        victims: List[str] = []
        freed = 0
        for key, size, _ in entries:
            if freed >= excess:
                break
            victims.append(key)
            freed += size
        if victims and not dry_run:
            self.remove_many(victims)
        return victims

    def gc(self, keep: Iterable[str], dry_run: bool = False) -> List[str]:
        """Remove every artifact whose key is not in ``keep``.

        Also sweeps leftover ``*.tmp.*`` files from interrupted writes and
        prunes empty shard directories.  Returns the removed (or, with
        ``dry_run``, removable) keys, sorted.
        """
        keep_set: Set[str] = {_validate_key(key) for key in keep}
        removed: List[str] = []
        if not self.objects_root.is_dir():
            return removed
        for shard in sorted(self.objects_root.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.iterdir()):
                if ".tmp." in path.name:
                    if not dry_run:
                        path.unlink()
                    continue
                key = path.stem
                if key not in keep_set:
                    removed.append(key)
                    if not dry_run:
                        path.unlink()
            if not dry_run and not any(shard.iterdir()):
                shard.rmdir()
        if not dry_run:
            self.reindex()
        return removed

    def reindex(self) -> Path:
        """Rebuild ``index.json`` from the artifacts on disk."""
        entries: Dict[str, Dict[str, Any]] = {}
        for key in self.keys():
            try:
                artifact = self.get_artifact(key)
            except StoreIntegrityError:
                continue  # an unreadable artifact is not indexable
            entries[key] = {"sha256": artifact["payload_sha256"], "meta": artifact["meta"]}
        self._write_index(entries)
        return self.index_path

    # ------------------------------------------------------------------
    # Index plumbing
    # ------------------------------------------------------------------

    def index_add(self, entries: Mapping[str, Dict[str, Any]]) -> None:
        """Merge ``entries`` into the index with one read-modify-write.

        The index is a convenience cache over the objects directory, not a
        coordination point: concurrent writers can lose each other's entries
        (last write wins), and :meth:`reindex` restores the full picture
        from disk whenever that matters.
        """
        merged = self._load_index()
        merged.update({key: dict(entry) for key, entry in entries.items()})
        self._write_index(merged)

    def _load_index(self) -> Dict[str, Dict[str, Any]]:
        if not self.index_path.exists():
            return {}
        try:
            document = json.loads(self.index_path.read_text())
        except json.JSONDecodeError:
            return {}  # stale/corrupt index is rebuilt lazily; objects are the truth
        entries = document.get("entries")
        return entries if isinstance(entries, dict) else {}

    def _write_index(self, entries: Dict[str, Dict[str, Any]]) -> None:
        document = {"schema": STORE_SCHEMA_VERSION, "entries": entries}
        _atomic_write_text(self.index_path, dumps_deterministic(document))
