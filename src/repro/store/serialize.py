"""Lossless ``ExperimentResult`` ⇄ JSON payload conversion.

Every dataclass that makes up a result — config, per-flow records, the
network snapshot — is converted field by field via :func:`dataclasses.fields`,
so a newly added field automatically appears in both directions (and, via
the config dict, in the cache key).  The only value that is *not* preserved
is :attr:`ExperimentResult.wallclock_s`: it is real elapsed time, the one
field the determinism contract of :mod:`repro.experiments.parallel` already
exempts, and storing it would make otherwise identical artifacts differ
byte-wise.  It is normalised to ``0.0`` on the way in.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Any, Dict

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult
from repro.metrics.collector import ExperimentMetrics
from repro.metrics.records import FlowRecord
from repro.net.faults import FaultEvent
from repro.net.monitor import LayerLossStats, NetworkSnapshot


def _dataclass_to_dict(value: Any) -> Dict[str, Any]:
    """A flat field dict in declared field order (no recursion)."""
    return {spec.name: getattr(value, spec.name) for spec in fields(value)}


# ---------------------------------------------------------------------------
# ExperimentConfig
# ---------------------------------------------------------------------------


def config_to_dict(config: ExperimentConfig) -> Dict[str, Any]:
    """The full config as JSON-ready primitives, fault schedule included."""
    payload = _dataclass_to_dict(config)
    payload["fault_schedule"] = [
        _dataclass_to_dict(event) for event in config.fault_schedule
    ]
    return payload


def config_from_dict(payload: Dict[str, Any]) -> ExperimentConfig:
    """Rebuild an :class:`ExperimentConfig` from :func:`config_to_dict` output."""
    data = dict(payload)
    data["fault_schedule"] = tuple(
        FaultEvent(**event) for event in data.get("fault_schedule", [])
    )
    return ExperimentConfig(**data)


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


def _snapshot_to_dict(snapshot: NetworkSnapshot) -> Dict[str, Any]:
    payload = _dataclass_to_dict(snapshot)
    payload["layer_loss"] = {
        layer: _dataclass_to_dict(stats) for layer, stats in snapshot.layer_loss.items()
    }
    return payload


def _snapshot_from_dict(payload: Dict[str, Any]) -> NetworkSnapshot:
    data = dict(payload)
    data["layer_loss"] = {
        layer: LayerLossStats(**stats) for layer, stats in data.get("layer_loss", {}).items()
    }
    return NetworkSnapshot(**data)


def metrics_to_dict(metrics: ExperimentMetrics) -> Dict[str, Any]:
    """Flow records + network snapshot as JSON-ready primitives."""
    return {
        "duration_s": metrics.duration_s,
        "flows": [_dataclass_to_dict(record) for record in metrics.flows],
        "network": None if metrics.network is None else _snapshot_to_dict(metrics.network),
    }


def metrics_from_dict(payload: Dict[str, Any]) -> ExperimentMetrics:
    """Rebuild :class:`ExperimentMetrics` from :func:`metrics_to_dict` output."""
    network = payload.get("network")
    return ExperimentMetrics(
        flows=[FlowRecord(**record) for record in payload.get("flows", [])],
        network=None if network is None else _snapshot_from_dict(network),
        duration_s=payload["duration_s"],
    )


# ---------------------------------------------------------------------------
# ExperimentResult
# ---------------------------------------------------------------------------


def result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """The storable payload of one result (wall-clock normalised to 0.0)."""
    return {
        "config": config_to_dict(result.config),
        "metrics": metrics_to_dict(result.metrics),
        "events_processed": result.events_processed,
        "wallclock_s": 0.0,
        "workload_size": result.workload_size,
    }


def result_from_dict(payload: Dict[str, Any]) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`result_to_dict` output."""
    return ExperimentResult(
        config=config_from_dict(payload["config"]),
        metrics=metrics_from_dict(payload["metrics"]),
        events_processed=payload["events_processed"],
        wallclock_s=payload.get("wallclock_s", 0.0),
        workload_size=payload["workload_size"],
    )


def normalised_result(result: ExperimentResult) -> ExperimentResult:
    """``result`` with its wall-clock zeroed, as :meth:`RunStore.get` returns it.

    Useful in tests and comparisons: ``store.get(store.put(key, r))`` equals
    ``normalised_result(r)`` field for field.
    """
    return ExperimentResult(
        config=result.config,
        metrics=result.metrics,
        events_processed=result.events_processed,
        wallclock_s=0.0,
        workload_size=result.workload_size,
    )
