"""Workload builders.

The paper's evaluation workload (Figure 1 caption): a FatTree in which one
third of the servers run long background flows while the remaining two
thirds send 70 KB short flows whose arrivals follow a Poisson process, all
scheduled over a permutation traffic matrix.  :func:`build_short_long_workload`
reproduces that recipe for an arbitrary topology and protocol; the other
builders cover the roadmap scenarios (incast bursts, hotspots).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sim.units import kilobytes, megabytes
from repro.traffic.arrivals import poisson_arrivals, synchronized_arrivals
from repro.traffic.flowspec import PROTOCOL_TCP, FlowSpec
from repro.traffic.matrices import hotspot_pairs, permutation_pairs


@dataclass(frozen=True)
class ShortLongWorkloadParams:
    """Parameters of the paper's short-vs-long workload.

    Attributes:
        long_flow_fraction: fraction of servers acting as long-flow senders
            (the paper uses one third).
        short_flow_size_bytes: size of each latency-sensitive flow (70 KB).
        long_flow_size_bytes: size of each background flow; sized so the flow
            keeps transmitting for essentially the whole experiment.
        short_flow_rate_per_sender: Poisson arrival rate (flows/second) at
            each short-flow sender.
        duration_s: interval over which short flows keep arriving.
        max_short_flows: optional cap on the total number of short flows
            (keeps scaled-down runs bounded).
        protocol: transport protocol used by every flow.
        num_subflows: subflow count for MPTCP/MMPTCP flows.
    """

    long_flow_fraction: float = 1.0 / 3.0
    short_flow_size_bytes: int = kilobytes(70)
    long_flow_size_bytes: int = megabytes(50)
    short_flow_rate_per_sender: float = 10.0
    duration_s: float = 1.0
    max_short_flows: Optional[int] = None
    protocol: str = PROTOCOL_TCP
    num_subflows: int = 8

    def __post_init__(self) -> None:
        if not 0 <= self.long_flow_fraction < 1:
            raise ValueError("long_flow_fraction must be in [0, 1)")
        if self.short_flow_size_bytes <= 0 or self.long_flow_size_bytes <= 0:
            raise ValueError("flow sizes must be positive")
        if self.short_flow_rate_per_sender < 0:
            raise ValueError("short_flow_rate_per_sender cannot be negative")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")


@dataclass
class Workload:
    """A fully materialised set of flow specifications."""

    flows: List[FlowSpec] = field(default_factory=list)

    @property
    def short_flows(self) -> List[FlowSpec]:
        """The latency-sensitive flows."""
        return [flow for flow in self.flows if flow.is_short]

    @property
    def long_flows(self) -> List[FlowSpec]:
        """The background, bandwidth-hungry flows."""
        return [flow for flow in self.flows if flow.is_long]

    @property
    def total_bytes(self) -> int:
        """Sum of all flow sizes."""
        return sum(flow.size_bytes for flow in self.flows)

    def flows_by_source(self) -> Dict[str, List[FlowSpec]]:
        """Group the flow specs by sending host name."""
        grouped: Dict[str, List[FlowSpec]] = {}
        for flow in self.flows:
            grouped.setdefault(flow.source, []).append(flow)
        return grouped


def build_short_long_workload(
    host_names: Sequence[str],
    params: ShortLongWorkloadParams,
    rng: random.Random,
    first_flow_id: int = 1,
) -> Workload:
    """Create the paper's mixed workload over the given hosts.

    The permutation matrix is drawn first; the first ``long_flow_fraction``
    of senders (in shuffled order) become long-flow sources, the rest send a
    Poisson stream of short flows to their permutation partner.
    """
    if len(host_names) < 2:
        raise ValueError("need at least two hosts")
    pairs = permutation_pairs(host_names, rng)
    rng.shuffle(pairs)
    num_long_senders = int(round(len(pairs) * params.long_flow_fraction))
    flow_id = first_flow_id
    workload = Workload()

    # Long background flows start slightly staggered near time zero so their
    # slow starts do not form one synchronised burst.
    for source, destination in pairs[:num_long_senders]:
        start = rng.uniform(0.0, 0.05)
        workload.flows.append(
            FlowSpec(
                flow_id=flow_id,
                source=source,
                destination=destination,
                size_bytes=params.long_flow_size_bytes,
                start_time=start,
                protocol=params.protocol,
                is_long=True,
                num_subflows=params.num_subflows,
            )
        )
        flow_id += 1

    # Short flows: Poisson arrivals at each remaining sender.
    short_specs: List[FlowSpec] = []
    for source, destination in pairs[num_long_senders:]:
        for start in poisson_arrivals(
            params.short_flow_rate_per_sender, params.duration_s, rng
        ):
            short_specs.append(
                FlowSpec(
                    flow_id=0,  # assigned after the optional cap below
                    source=source,
                    destination=destination,
                    size_bytes=params.short_flow_size_bytes,
                    start_time=start,
                    protocol=params.protocol,
                    is_long=False,
                    num_subflows=params.num_subflows,
                )
            )

    short_specs.sort(key=lambda flow: flow.start_time)
    if params.max_short_flows is not None:
        short_specs = short_specs[: params.max_short_flows]
    for spec in short_specs:
        spec.flow_id = flow_id
        flow_id += 1
        workload.flows.append(spec)
    return workload


def build_incast_workload(
    sender_names: Sequence[str],
    receiver_name: str,
    response_size_bytes: int = kilobytes(70),
    start_time: float = 0.0,
    protocol: str = PROTOCOL_TCP,
    num_subflows: int = 8,
    first_flow_id: int = 1,
) -> Workload:
    """A synchronised fan-in: every sender fires one response at the same instant."""
    if not sender_names:
        raise ValueError("need at least one sender")
    workload = Workload()
    arrivals = synchronized_arrivals(len(sender_names), start_time)
    for index, (source, start) in enumerate(zip(sender_names, arrivals)):
        workload.flows.append(
            FlowSpec(
                flow_id=first_flow_id + index,
                source=source,
                destination=receiver_name,
                size_bytes=response_size_bytes,
                start_time=start,
                protocol=protocol,
                is_long=False,
                num_subflows=num_subflows,
            )
        )
    return workload


def build_hotspot_workload(
    host_names: Sequence[str],
    params: ShortLongWorkloadParams,
    rng: random.Random,
    hotspot_fraction: float = 0.1,
    load_fraction: float = 0.5,
    first_flow_id: int = 1,
) -> Workload:
    """Like the short/long workload but with destinations skewed towards hotspots."""
    pairs = hotspot_pairs(
        host_names, rng, hotspot_fraction=hotspot_fraction, load_fraction=load_fraction
    )
    rng.shuffle(pairs)
    num_long_senders = int(round(len(pairs) * params.long_flow_fraction))
    workload = Workload()
    flow_id = first_flow_id
    for index, (source, destination) in enumerate(pairs):
        is_long = index < num_long_senders
        if is_long:
            workload.flows.append(
                FlowSpec(
                    flow_id=flow_id,
                    source=source,
                    destination=destination,
                    size_bytes=params.long_flow_size_bytes,
                    start_time=rng.uniform(0.0, 0.05),
                    protocol=params.protocol,
                    is_long=True,
                    num_subflows=params.num_subflows,
                )
            )
            flow_id += 1
            continue
        for start in poisson_arrivals(
            params.short_flow_rate_per_sender, params.duration_s, rng
        ):
            workload.flows.append(
                FlowSpec(
                    flow_id=flow_id,
                    source=source,
                    destination=destination,
                    size_bytes=params.short_flow_size_bytes,
                    start_time=start,
                    protocol=params.protocol,
                    is_long=False,
                    num_subflows=params.num_subflows,
                )
            )
            flow_id += 1
    return workload
