"""Traffic matrices: who talks to whom.

The paper schedules all flows according to a *permutation* traffic matrix —
every server sends to exactly one other server and receives from exactly one
— which is the standard worst-ish-case matrix of the MPTCP data-centre
literature (it gives every flow a distinct path set and makes core collisions
visible).  Random, stride and hotspot matrices are also provided; the
hotspot matrix supports the "effect of hotspots" scenario listed in the
paper's roadmap.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple


def permutation_pairs(
    host_names: Sequence[str], rng: random.Random
) -> List[Tuple[str, str]]:
    """A random derangement: every host sends to one host other than itself."""
    if len(host_names) < 2:
        raise ValueError("a permutation matrix needs at least two hosts")
    senders = list(host_names)
    receivers = list(host_names)
    # Sattolo-style rejection sampling: shuffle until no host maps to itself.
    # For n >= 2 the expected number of attempts is about e (~2.7).
    while True:
        rng.shuffle(receivers)
        if all(sender != receiver for sender, receiver in zip(senders, receivers)):
            break
    return list(zip(senders, receivers))


def random_pairs(
    host_names: Sequence[str], count: int, rng: random.Random
) -> List[Tuple[str, str]]:
    """``count`` source/destination pairs chosen uniformly (no self-loops)."""
    if len(host_names) < 2:
        raise ValueError("need at least two hosts")
    pairs = []
    for _ in range(count):
        source = rng.choice(host_names)
        destination = rng.choice(host_names)
        while destination == source:
            destination = rng.choice(host_names)
        pairs.append((source, destination))
    return pairs


def stride_pairs(host_names: Sequence[str], stride: int = 1) -> List[Tuple[str, str]]:
    """Host ``i`` sends to host ``(i + stride) mod n`` — a deterministic permutation."""
    count = len(host_names)
    if count < 2:
        raise ValueError("need at least two hosts")
    if stride % count == 0:
        raise ValueError("stride must not be a multiple of the host count")
    return [(host_names[i], host_names[(i + stride) % count]) for i in range(count)]


def hotspot_pairs(
    host_names: Sequence[str],
    rng: random.Random,
    hotspot_fraction: float = 0.1,
    load_fraction: float = 0.5,
) -> List[Tuple[str, str]]:
    """A permutation matrix skewed so a subset of receivers attracts extra senders.

    ``hotspot_fraction`` of the hosts are designated hotspots;
    ``load_fraction`` of all senders are redirected to a hotspot (chosen
    uniformly among hotspots), the rest keep their permutation target.
    """
    if not 0 < hotspot_fraction <= 1:
        raise ValueError("hotspot_fraction must be in (0, 1]")
    if not 0 <= load_fraction <= 1:
        raise ValueError("load_fraction must be in [0, 1]")
    base = permutation_pairs(host_names, rng)
    hotspot_count = max(1, int(len(host_names) * hotspot_fraction))
    hotspots = rng.sample(list(host_names), hotspot_count)
    skewed: List[Tuple[str, str]] = []
    for source, destination in base:
        if rng.random() < load_fraction:
            candidate_hotspots = [h for h in hotspots if h != source]
            if candidate_hotspots:
                destination = rng.choice(candidate_hotspots)
        skewed.append((source, destination))
    return skewed


def pair_counts_by_destination(pairs: Sequence[Tuple[str, str]]) -> Dict[str, int]:
    """How many senders target each destination (useful to verify matrices)."""
    counts: Dict[str, int] = {}
    for _, destination in pairs:
        counts[destination] = counts.get(destination, 0) + 1
    return counts
