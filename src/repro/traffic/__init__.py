"""Workload generation: flow specs, traffic matrices, arrival processes."""

from repro.traffic.arrivals import poisson_arrivals, synchronized_arrivals, uniform_arrivals
from repro.traffic.deadlines import (
    DEADLINE_OPTION,
    DeadlineParams,
    deadline_miss_rate,
    deadline_of,
    ideal_transfer_time,
    slack_deadlines,
    uniform_deadlines,
)
from repro.traffic.flowspec import (
    ALL_PROTOCOLS,
    PROTOCOL_D2TCP,
    PROTOCOL_DCTCP,
    PROTOCOL_MMPTCP,
    PROTOCOL_MPTCP,
    PROTOCOL_PACKET_SCATTER,
    PROTOCOL_TCP,
    FlowSpec,
)
from repro.traffic.matrices import (
    hotspot_pairs,
    pair_counts_by_destination,
    permutation_pairs,
    random_pairs,
    stride_pairs,
)
from repro.traffic.workloads import (
    ShortLongWorkloadParams,
    Workload,
    build_hotspot_workload,
    build_incast_workload,
    build_short_long_workload,
)

__all__ = [
    "poisson_arrivals",
    "synchronized_arrivals",
    "DEADLINE_OPTION",
    "DeadlineParams",
    "deadline_miss_rate",
    "deadline_of",
    "ideal_transfer_time",
    "slack_deadlines",
    "uniform_deadlines",
    "PROTOCOL_D2TCP",
    "uniform_arrivals",
    "ALL_PROTOCOLS",
    "PROTOCOL_DCTCP",
    "PROTOCOL_MMPTCP",
    "PROTOCOL_MPTCP",
    "PROTOCOL_PACKET_SCATTER",
    "PROTOCOL_TCP",
    "FlowSpec",
    "hotspot_pairs",
    "pair_counts_by_destination",
    "permutation_pairs",
    "random_pairs",
    "stride_pairs",
    "ShortLongWorkloadParams",
    "Workload",
    "build_hotspot_workload",
    "build_incast_workload",
    "build_short_long_workload",
]
