"""Flow arrival processes.

Short flows in the paper's workload arrive according to a Poisson process;
this module generates those arrival times (plus a couple of deterministic
alternatives used by tests and micro-benchmarks).
"""

from __future__ import annotations

import random
from typing import List


def poisson_arrivals(
    rate_per_second: float,
    duration_s: float,
    rng: random.Random,
    start_time: float = 0.0,
) -> List[float]:
    """Arrival times of a Poisson process of ``rate_per_second`` over ``duration_s``.

    Returns absolute times in ``[start_time, start_time + duration_s)``.
    """
    if rate_per_second < 0:
        raise ValueError("rate_per_second cannot be negative")
    if duration_s < 0:
        raise ValueError("duration_s cannot be negative")
    arrivals: List[float] = []
    if rate_per_second == 0:
        return arrivals
    clock = start_time
    horizon = start_time + duration_s
    while True:
        clock += rng.expovariate(rate_per_second)
        if clock >= horizon:
            break
        arrivals.append(clock)
    return arrivals


def uniform_arrivals(count: int, duration_s: float, start_time: float = 0.0) -> List[float]:
    """``count`` arrivals evenly spaced over ``duration_s``."""
    if count < 0:
        raise ValueError("count cannot be negative")
    if duration_s < 0:
        raise ValueError("duration_s cannot be negative")
    if count == 0:
        return []
    spacing = duration_s / count
    return [start_time + index * spacing for index in range(count)]


def synchronized_arrivals(count: int, start_time: float = 0.0) -> List[float]:
    """``count`` simultaneous arrivals — the incast pattern."""
    if count < 0:
        raise ValueError("count cannot be negative")
    return [start_time] * count
