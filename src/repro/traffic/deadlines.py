"""Deadline assignment for latency-sensitive flows.

The paper's short flows "commonly come with strict deadlines regarding
their completion time"; deadline-aware baselines (D2TCP, D3) consume that
information directly, and the metrics layer reports deadline miss rates for
every protocol so the benchmark harness can show how many flows would have
violated their SLA under each transport.

Deadlines are expressed *relative to the flow's start time*.  Two assignment
schemes are provided:

* :func:`slack_deadlines` — deadline = ideal transfer time × slack factor,
  the scheme used by the D3/D2TCP evaluations (a flow gets proportionally
  more time the bigger it is);
* :func:`uniform_deadlines` — deadlines drawn uniformly from an interval,
  which models externally imposed SLAs that ignore flow size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.sim.units import transmission_delay
from repro.traffic.flowspec import FlowSpec

#: Key under which the assigned deadline is stored in ``FlowSpec.options``.
DEADLINE_OPTION = "deadline_s"


@dataclass(frozen=True)
class DeadlineParams:
    """Parameters of the slack-based deadline assignment.

    Attributes:
        slack_factor: multiple of the ideal (store-and-forward, empty-network)
            transfer time granted to each flow.  The D3 paper evaluates slacks
            between roughly 1.25 and 4; 2.0 is a common middle ground.
        link_rate_bps: access-link rate used to compute the ideal time.
        base_rtt_s: propagation round-trip added to the ideal time.
        minimum_s: lower clamp so tiny flows do not receive impossible
            sub-RTT deadlines.
        long_flows_have_deadlines: whether background flows also get deadlines
            (the paper's long flows are throughput-oriented, so default False).
    """

    slack_factor: float = 2.0
    link_rate_bps: float = 1e9
    base_rtt_s: float = 200e-6
    minimum_s: float = 2e-3
    long_flows_have_deadlines: bool = False

    def __post_init__(self) -> None:
        if self.slack_factor <= 0:
            raise ValueError("slack_factor must be positive")
        if self.link_rate_bps <= 0:
            raise ValueError("link_rate_bps must be positive")
        if self.base_rtt_s < 0 or self.minimum_s < 0:
            raise ValueError("base_rtt_s and minimum_s cannot be negative")


def ideal_transfer_time(size_bytes: int, link_rate_bps: float, base_rtt_s: float = 0.0) -> float:
    """Time to move ``size_bytes`` over an empty path of ``link_rate_bps``."""
    if size_bytes < 0:
        raise ValueError("size_bytes cannot be negative")
    return transmission_delay(size_bytes, link_rate_bps) + base_rtt_s


def slack_deadlines(flows: Iterable[FlowSpec], params: DeadlineParams) -> List[FlowSpec]:
    """Attach a slack-based deadline to each flow spec (in place) and return them.

    The deadline is stored under ``options["deadline_s"]`` so that protocols
    which ignore deadlines need no changes at all.
    """
    annotated: List[FlowSpec] = []
    for flow in flows:
        annotated.append(flow)
        if flow.is_long and not params.long_flows_have_deadlines:
            continue
        ideal = ideal_transfer_time(flow.size_bytes, params.link_rate_bps, params.base_rtt_s)
        flow.options[DEADLINE_OPTION] = max(params.minimum_s, ideal * params.slack_factor)
    return annotated


def uniform_deadlines(
    flows: Iterable[FlowSpec],
    rng: random.Random,
    low_s: float,
    high_s: float,
    include_long_flows: bool = False,
) -> List[FlowSpec]:
    """Attach deadlines drawn uniformly from ``[low_s, high_s]`` to each flow."""
    if low_s <= 0 or high_s < low_s:
        raise ValueError("require 0 < low_s <= high_s")
    annotated: List[FlowSpec] = []
    for flow in flows:
        annotated.append(flow)
        if flow.is_long and not include_long_flows:
            continue
        flow.options[DEADLINE_OPTION] = rng.uniform(low_s, high_s)
    return annotated


def deadline_of(flow: FlowSpec) -> Optional[float]:
    """The relative deadline assigned to ``flow``, or ``None``."""
    value = flow.options.get(DEADLINE_OPTION)
    return float(value) if value is not None else None


def deadline_miss_rate(
    specs: Sequence[FlowSpec],
    completion_times: Dict[int, Optional[float]],
) -> float:
    """Fraction of deadline-carrying flows that finished late (or not at all).

    Args:
        specs: the flow specifications (deadlines read from their options).
        completion_times: flow id → completion time in seconds relative to the
            flow's start (``None`` for flows that never completed).
    """
    with_deadline = [spec for spec in specs if deadline_of(spec) is not None]
    if not with_deadline:
        return 0.0
    missed = 0
    for spec in with_deadline:
        deadline = deadline_of(spec)
        fct = completion_times.get(spec.flow_id)
        if fct is None or (deadline is not None and fct > deadline):
            missed += 1
    return missed / len(with_deadline)
