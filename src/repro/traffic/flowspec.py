"""Flow specifications.

A :class:`FlowSpec` is a purely declarative description of one transfer —
who sends how many bytes to whom, starting when, over which transport.  The
experiment runner turns specs into concrete sender/receiver endpoints; the
metrics layer joins the spec back to the measured outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

#: Protocol identifiers accepted by the experiment runner.
PROTOCOL_TCP = "tcp"
PROTOCOL_DCTCP = "dctcp"
PROTOCOL_D2TCP = "d2tcp"
PROTOCOL_MPTCP = "mptcp"
PROTOCOL_MMPTCP = "mmptcp"
PROTOCOL_PACKET_SCATTER = "packet_scatter"

ALL_PROTOCOLS = (
    PROTOCOL_TCP,
    PROTOCOL_DCTCP,
    PROTOCOL_D2TCP,
    PROTOCOL_MPTCP,
    PROTOCOL_MMPTCP,
    PROTOCOL_PACKET_SCATTER,
)


@dataclass
class FlowSpec:
    """Description of one application-level transfer.

    Attributes:
        flow_id: unique identifier within the experiment.
        source / destination: host *names* in the topology.
        size_bytes: application bytes to transfer.
        start_time: simulated time at which the sender opens the connection.
        protocol: one of :data:`ALL_PROTOCOLS`.
        is_long: marks background (bandwidth-hungry) flows; short flows are
            the latency-sensitive ones whose completion times the paper plots.
        num_subflows: MPTCP/MMPTCP subflow count (ignored by single-path protocols).
        options: free-form per-flow overrides (e.g. switching policy).
    """

    flow_id: int
    source: str
    destination: str
    size_bytes: int
    start_time: float = 0.0
    protocol: str = PROTOCOL_TCP
    is_long: bool = False
    num_subflows: int = 1
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.start_time < 0:
            raise ValueError("start_time cannot be negative")
        if self.protocol not in ALL_PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.num_subflows < 1:
            raise ValueError("num_subflows must be at least 1")
        if self.source == self.destination:
            raise ValueError("a flow cannot have the same source and destination")

    @property
    def is_short(self) -> bool:
        """Convenience inverse of :attr:`is_long`."""
        return not self.is_long
