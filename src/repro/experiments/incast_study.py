"""Incast (fan-in burst) studies, including the multi-homing roadmap item.

The paper's introduction names TCP Incast as one of the reasons short flows
miss their deadlines, and its roadmap argues that (a) the packet-scatter
phase absorbs bursts by spreading them over many queues and (b) multi-homed
topologies add access-layer paths and therefore burst tolerance.  This
module sweeps the fan-in degree of a synchronised burst for any set of
(protocol, topology) combinations and reports the completion-time and RTO
statistics of the responses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import (
    TOPOLOGY_DUALHOMED,
    TOPOLOGY_FATTREE,
    ExperimentConfig,
)
from repro.experiments.parallel import RunSpec, SweepRunner
from repro.experiments.runner import ExperimentResult, build_topology
from repro.metrics.stats import DistributionSummary
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.sim.units import kilobytes
from repro.traffic.flowspec import PROTOCOL_MMPTCP, PROTOCOL_MPTCP, PROTOCOL_TCP
from repro.traffic.workloads import Workload, build_incast_workload

#: Fan-in degrees swept by default (the classic incast curves).
DEFAULT_FAN_INS = (8, 16, 32)


@dataclass
class IncastPoint:
    """One (protocol, topology, fan-in) point of the sweep."""

    protocol: str
    topology: str
    fan_in: int
    response_bytes: int
    fct_summary: DistributionSummary
    completion_rate: float
    rto_incidence: float
    total_rtos: int
    result: ExperimentResult

    @property
    def p99_fct_ms(self) -> float:
        """99th-percentile response completion time in milliseconds."""
        return self.fct_summary.p99


def build_incast_workload_for(
    config: ExperimentConfig,
    fan_in: int,
    response_bytes: int,
    protocol: str,
    start_time: float = 0.01,
    receiver: Optional[str] = None,
) -> Workload:
    """A synchronised ``fan_in``-to-1 burst over the fabric described by ``config``.

    The receiver and the senders are drawn from the fabric's hosts with the
    configuration seed, so every protocol (and every topology of the same
    size) sees the same logical burst.  Pass ``receiver`` to pin the burst
    target to a named host instead — fault-injection scenarios use this to
    aim link failures at the receiver's ingress.
    """
    if fan_in < 1:
        raise ValueError("fan_in must be at least 1")
    simulator = Simulator()
    streams = RandomStreams(config.seed)
    topology = build_topology(config, simulator)
    hosts = [host.name for host in topology.hosts]
    if fan_in >= len(hosts):
        raise ValueError(f"fan_in {fan_in} needs more hosts than the fabric has ({len(hosts)})")
    rng = streams.stream("incast")
    if receiver is None:
        receiver = rng.choice(hosts)
    elif receiver not in hosts:
        raise ValueError(f"receiver {receiver!r} is not a host of this fabric")
    senders = rng.sample([name for name in hosts if name != receiver], fan_in)
    return build_incast_workload(
        senders,
        receiver,
        response_size_bytes=response_bytes,
        start_time=start_time,
        protocol=protocol,
        num_subflows=config.num_subflows,
    )


def run_incast_sweep(
    base_config: ExperimentConfig,
    protocols: Sequence[str] = (PROTOCOL_TCP, PROTOCOL_MPTCP, PROTOCOL_MMPTCP),
    fan_ins: Sequence[int] = DEFAULT_FAN_INS,
    response_bytes: int = kilobytes(70),
    topologies: Sequence[str] = (TOPOLOGY_FATTREE,),
    workers: Optional[int] = 1,
) -> List[IncastPoint]:
    """Run the synchronised burst for every (topology, protocol, fan-in) combination.

    ``workers`` fans the combinations out over a process pool.  The incast
    workload is rebuilt inside each worker from ``(config, fan_in, ...)`` —
    a deterministic function of the seed — so the sweep's output is
    identical for any worker count and ordered exactly as the nested
    (topology, fan-in, protocol) loops visit it.
    """
    if not protocols or not fan_ins or not topologies:
        raise ValueError("need at least one protocol, one fan-in and one topology")
    axes: List[tuple] = []
    specs: List[RunSpec] = []
    for topology_kind in topologies:
        for fan_in in fan_ins:
            for protocol in protocols:
                config = base_config.with_updates(topology=topology_kind, protocol=protocol)
                specs.append(
                    RunSpec(
                        index=len(specs),
                        config=config,
                        workload_factory=build_incast_workload_for,
                        workload_args=(fan_in, response_bytes, protocol),
                    )
                )
                axes.append((topology_kind, fan_in, protocol))
    results = SweepRunner(workers).run(specs)

    points: List[IncastPoint] = []
    for (topology_kind, fan_in, protocol), result in zip(axes, results):
        metrics = result.metrics
        shorts = metrics.short_flows
        points.append(
            IncastPoint(
                protocol=protocol,
                topology=topology_kind,
                fan_in=fan_in,
                response_bytes=response_bytes,
                fct_summary=metrics.short_flow_fct_summary(),
                completion_rate=metrics.short_flow_completion_rate(),
                rto_incidence=metrics.rto_incidence(),
                total_rtos=sum(record.rto_events for record in shorts),
                result=result,
            )
        )
    return points


def incast_rows(points: Sequence[IncastPoint]) -> List[Dict[str, object]]:
    """Flat per-point rows for table rendering / CSV export."""
    rows: List[Dict[str, object]] = []
    for point in points:
        rows.append(
            {
                "topology": point.topology,
                "protocol": point.protocol,
                "fan_in": point.fan_in,
                "response_bytes": point.response_bytes,
                "mean_fct_ms": point.fct_summary.mean,
                "p99_fct_ms": point.p99_fct_ms,
                "max_fct_ms": point.fct_summary.maximum,
                "completion_rate": point.completion_rate,
                "rto_incidence": point.rto_incidence,
                "total_rtos": point.total_rtos,
            }
        )
    return rows


def compare_multihoming(
    base_config: ExperimentConfig,
    fan_in: int = 24,
    response_bytes: int = kilobytes(70),
    protocol: str = PROTOCOL_MMPTCP,
    workers: Optional[int] = 1,
) -> Dict[str, IncastPoint]:
    """The roadmap's multi-homing claim: single- vs dual-homed burst tolerance.

    Returns one :class:`IncastPoint` per topology kind for the same burst and
    the same transport (MMPTCP by default, since the extra access-layer paths
    only help a transport that actually sprays over them).
    """
    points = run_incast_sweep(
        base_config,
        protocols=(protocol,),
        fan_ins=(fan_in,),
        response_bytes=response_bytes,
        topologies=(TOPOLOGY_FATTREE, TOPOLOGY_DUALHOMED),
        workers=workers,
    )
    return {point.topology: point for point in points}
