"""Series builders for Figure 1 of the paper.

* **Figure 1(a)** — mean and standard deviation of short-flow completion time
  for MPTCP as the number of subflows grows from 1 to 9.
* **Figure 1(b)** — the per-flow scatter of short-flow completion times for
  MPTCP with 8 subflows.
* **Figure 1(c)** — the same scatter for MMPTCP (packet scatter + 8 subflows).

Each builder runs the paired workload (same seed, same arrivals, same
permutation matrix) under the relevant protocol and returns plain Python
data structures which the benchmark harnesses print and assert on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import RunSpec, SweepRunner
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.metrics.stats import DistributionSummary
from repro.traffic.flowspec import PROTOCOL_MMPTCP, PROTOCOL_MPTCP

#: The sub-flow counts of the paper's Figure 1(a) x-axis.
FIGURE1A_SUBFLOW_COUNTS = tuple(range(1, 10))


@dataclass
class Figure1aRow:
    """One x-axis point of Figure 1(a)."""

    num_subflows: int
    fct_summary: DistributionSummary
    rto_incidence: float
    completion_rate: float

    @property
    def mean_ms(self) -> float:
        """Mean short-flow completion time in milliseconds."""
        return self.fct_summary.mean

    @property
    def std_ms(self) -> float:
        """Standard deviation of short-flow completion time in milliseconds."""
        return self.fct_summary.std


def figure1a_series(
    base_config: ExperimentConfig,
    subflow_counts: Sequence[int] = FIGURE1A_SUBFLOW_COUNTS,
    workers: Optional[int] = 1,
) -> List[Figure1aRow]:
    """Mean/std of MPTCP short-flow FCT as a function of the subflow count.

    ``workers`` fans the per-count runs out over a process pool; the rows
    are identical for any worker count because each run is fully determined
    by its own config (all counts share the base seed, keeping the paper's
    paired-workload comparison).
    """
    specs = [
        RunSpec(index=index, config=base_config.with_protocol(PROTOCOL_MPTCP, num_subflows=count))
        for index, count in enumerate(subflow_counts)
    ]
    results = SweepRunner(workers).run(specs)
    rows: List[Figure1aRow] = []
    for count, result in zip(subflow_counts, results):
        metrics = result.metrics
        rows.append(
            Figure1aRow(
                num_subflows=count,
                fct_summary=metrics.short_flow_fct_summary(),
                rto_incidence=metrics.rto_incidence(),
                completion_rate=metrics.short_flow_completion_rate(),
            )
        )
    return rows


def figure1b_scatter(base_config: ExperimentConfig, num_subflows: int = 8) -> ExperimentResult:
    """The MPTCP(8) run whose per-flow completion times form Figure 1(b)."""
    config = base_config.with_protocol(PROTOCOL_MPTCP, num_subflows=num_subflows)
    return run_experiment(config)


def figure1c_scatter(base_config: ExperimentConfig, num_subflows: int = 8) -> ExperimentResult:
    """The MMPTCP(PS + 8 subflows) run whose completion times form Figure 1(c)."""
    config = base_config.with_protocol(PROTOCOL_MMPTCP, num_subflows=num_subflows)
    return run_experiment(config)


def scatter_points(result: ExperimentResult) -> List[Dict[str, float]]:
    """Flow-id vs completion-time points (seconds), as plotted by the paper."""
    return result.metrics.completion_scatter()
