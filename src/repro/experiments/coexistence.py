"""Co-existence / fairness experiments.

Section 3 of the paper states that "in-depth investigation of how MMPTCP
shares network resources with TCP and MPTCP is part of our current work"
and that early results suggest it can co-exist in harmony with them.  This
module provides that experiment: a single fabric carrying TCP, MPTCP and
MMPTCP traffic *simultaneously*, with per-protocol completion-time and
throughput statistics plus Jain's fairness index over the long flows.

The sender population is partitioned into one block per protocol; each block
runs the paper's short/long mix (permutation matrix inside the block,
one-third long senders, Poisson short-flow arrivals), so every protocol
faces the same offered load and they all compete for the same core links.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, build_topology, run_experiment
from repro.metrics.records import FlowRecord
from repro.metrics.stats import DistributionSummary, jains_fairness_index, summarize
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.flowspec import PROTOCOL_MMPTCP, PROTOCOL_MPTCP, PROTOCOL_TCP
from repro.traffic.workloads import ShortLongWorkloadParams, Workload, build_short_long_workload

#: The protocol mix the paper cares about: legacy TCP, MPTCP and MMPTCP.
DEFAULT_PROTOCOL_MIX = (PROTOCOL_TCP, PROTOCOL_MPTCP, PROTOCOL_MMPTCP)


@dataclass
class ProtocolShare:
    """Per-protocol statistics extracted from a mixed-protocol run."""

    protocol: str
    short_flow_count: int
    long_flow_count: int
    short_fct: DistributionSummary
    rto_incidence: float
    completion_rate: float
    mean_long_throughput_bps: float
    long_throughputs_bps: List[float] = field(default_factory=list)


@dataclass
class CoexistenceResult:
    """Outcome of one mixed-protocol experiment."""

    result: ExperimentResult
    shares: Dict[str, ProtocolShare]

    def fairness_index(self) -> float:
        """Jain's index over every long flow's throughput, regardless of protocol."""
        throughputs = [
            value for share in self.shares.values() for value in share.long_throughputs_bps
        ]
        return jains_fairness_index(throughputs)

    def throughput_ratio(self, protocol_a: str, protocol_b: str) -> float:
        """Mean long-flow throughput of ``protocol_a`` divided by ``protocol_b``'s."""
        a = self.shares[protocol_a].mean_long_throughput_bps
        b = self.shares[protocol_b].mean_long_throughput_bps
        if b <= 0:
            return float("inf") if a > 0 else 1.0
        return a / b

    def harmony(self, tolerance: float = 0.5) -> bool:
        """True when every pair of protocols gets long-flow throughput within ``tolerance``.

        ``tolerance`` is the maximum allowed relative difference between the
        best- and worst-treated protocol (0.5 = the worst gets at least half
        of the best), the loose notion of "co-existing in harmony" the
        paper's early results claim.
        """
        means = [
            share.mean_long_throughput_bps
            for share in self.shares.values()
            if share.long_flow_count > 0
        ]
        if len(means) < 2:
            return True
        best = max(means)
        worst = min(means)
        if best <= 0:
            return True
        return (best - worst) / best <= tolerance


def build_mixed_protocol_workload(
    host_names: Sequence[str],
    params: ShortLongWorkloadParams,
    rng: random.Random,
    protocols: Sequence[str] = DEFAULT_PROTOCOL_MIX,
) -> Workload:
    """Partition the hosts into one block per protocol and build each block's mix.

    Each block is an independent permutation matrix carrying the paper's
    short/long workload under its own transport protocol; the blocks share
    every aggregation and core link, which is where the fairness question
    lives.
    """
    if len(protocols) == 0:
        raise ValueError("need at least one protocol")
    if len(host_names) < 2 * len(protocols):
        raise ValueError("need at least two hosts per protocol block")
    shuffled = list(host_names)
    rng.shuffle(shuffled)
    block_size = len(shuffled) // len(protocols)
    workload = Workload()
    next_flow_id = 1
    for index, protocol in enumerate(protocols):
        start = index * block_size
        end = start + block_size if index < len(protocols) - 1 else len(shuffled)
        block_hosts = shuffled[start:end]
        block_params = ShortLongWorkloadParams(
            long_flow_fraction=params.long_flow_fraction,
            short_flow_size_bytes=params.short_flow_size_bytes,
            long_flow_size_bytes=params.long_flow_size_bytes,
            short_flow_rate_per_sender=params.short_flow_rate_per_sender,
            duration_s=params.duration_s,
            max_short_flows=params.max_short_flows,
            protocol=protocol,
            num_subflows=params.num_subflows,
        )
        block = build_short_long_workload(
            block_hosts, block_params, rng, first_flow_id=next_flow_id
        )
        workload.flows.extend(block.flows)
        next_flow_id += len(block.flows)
    workload.flows.sort(key=lambda flow: flow.start_time)
    return workload


def _share_for(protocol: str, records: Sequence[FlowRecord], horizon_s: float) -> ProtocolShare:
    shorts = [record for record in records if not record.is_long]
    longs = [record for record in records if record.is_long]
    completed = [record for record in shorts if record.completed]
    fct_ms = [
        record.completion_time_ms for record in completed if record.completion_time_ms is not None
    ]
    throughputs = [record.throughput_bps(horizon_s) for record in longs]
    return ProtocolShare(
        protocol=protocol,
        short_flow_count=len(shorts),
        long_flow_count=len(longs),
        short_fct=summarize(fct_ms),
        rto_incidence=(
            sum(1 for record in shorts if record.experienced_rto) / len(shorts) if shorts else 0.0
        ),
        completion_rate=len(completed) / len(shorts) if shorts else 0.0,
        mean_long_throughput_bps=(
            sum(throughputs) / len(throughputs) if throughputs else 0.0
        ),
        long_throughputs_bps=throughputs,
    )


def run_coexistence_experiment(
    config: ExperimentConfig,
    protocols: Sequence[str] = DEFAULT_PROTOCOL_MIX,
) -> CoexistenceResult:
    """Run the mixed-protocol experiment described by ``config``.

    The per-protocol workload parameters (flow sizes, arrival rate, long-flow
    fraction) are taken from ``config`` exactly as in a single-protocol run;
    only the transport protocol varies across the sender blocks.
    """
    simulator = Simulator()
    streams = RandomStreams(config.seed)
    topology = build_topology(config, simulator)
    params = ShortLongWorkloadParams(
        long_flow_fraction=config.long_flow_fraction,
        short_flow_size_bytes=config.short_flow_size_bytes,
        long_flow_size_bytes=config.long_flow_size_bytes,
        short_flow_rate_per_sender=config.short_flow_rate_per_sender,
        duration_s=config.arrival_window_s,
        max_short_flows=config.max_short_flows,
        protocol=config.protocol,
        num_subflows=config.num_subflows,
    )
    workload = build_mixed_protocol_workload(
        [host.name for host in topology.hosts],
        params,
        streams.stream("coexistence-workload"),
        protocols=protocols,
    )
    # Reuse the standard runner with the pre-built workload; the fresh
    # topology/simulator above was only needed to enumerate the hosts.
    result = run_experiment(config, workload=workload)

    shares: Dict[str, ProtocolShare] = {}
    for protocol in protocols:
        records = [record for record in result.metrics.flows if record.protocol == protocol]
        shares[protocol] = _share_for(protocol, records, config.horizon_s)
    return CoexistenceResult(result=result, shares=shares)


def coexistence_rows(outcome: CoexistenceResult) -> List[Dict[str, object]]:
    """Flat per-protocol rows for table rendering / CSV export."""
    rows: List[Dict[str, object]] = []
    for protocol, share in outcome.shares.items():
        rows.append(
            {
                "protocol": protocol,
                "short_flows": share.short_flow_count,
                "long_flows": share.long_flow_count,
                "mean_fct_ms": share.short_fct.mean,
                "std_fct_ms": share.short_fct.std,
                "p99_fct_ms": share.short_fct.p99,
                "rto_incidence": share.rto_incidence,
                "completion_rate": share.completion_rate,
                "mean_long_throughput_mbps": share.mean_long_throughput_bps / 1e6,
            }
        )
    return rows
