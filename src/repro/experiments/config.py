"""Experiment configuration.

A single :class:`ExperimentConfig` captures everything needed to reproduce a
run: the fabric, the link/queue parameters, the workload, the transport
protocol under test and its options, and the random seed.  Two presets are
provided:

* :func:`reproduction_scale` — the scaled-down FatTree used by the benchmark
  suite (pure-Python packet simulation is orders of magnitude slower than the
  authors' ns-3 setup, so the default keeps the paper's 4:1 over-subscription
  and workload mix but shrinks the fabric and the flow count; see DESIGN.md).
* :func:`paper_scale` — the full 512-server, 4:1 over-subscribed FatTree of
  the paper, for when simulation time is no object.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.net.faults import FaultEvent
from repro.sim.units import (
    gigabits_per_second,
    kilobytes,
    megabits_per_second,
    megabytes,
    microseconds,
    milliseconds,
)
from repro.traffic.flowspec import PROTOCOL_MPTCP
from repro.transport.path_manager import PATH_MANAGERS
from repro.transport.scheduler import SCHEDULERS

TOPOLOGY_FATTREE = "fattree"
TOPOLOGY_DUALHOMED = "dualhomed"
TOPOLOGY_VL2 = "vl2"

QUEUE_DROPTAIL = "droptail"
QUEUE_ECN = "ecn"
QUEUE_SHARED = "shared"

SWITCHING_DATA_VOLUME = "data_volume"
SWITCHING_CONGESTION = "congestion_event"
SWITCHING_HYBRID = "hybrid"
SWITCHING_NEVER = "never"

REORDERING_STATIC = "static"
REORDERING_TOPOLOGY = "topology_informed"
REORDERING_ADAPTIVE = "adaptive"

#: Simulation fidelity tiers.  ``packet`` is the full per-segment engine;
#: ``flow`` is the fluid bandwidth-sharing tier (:mod:`repro.flowlevel`)
#: that only recomputes rates on arrival/departure/fault events and buys
#: ~100× flow-count headroom at documented accuracy tolerances.
FIDELITY_PACKET = "packet"
FIDELITY_FLOW = "flow"
FIDELITIES = (FIDELITY_PACKET, FIDELITY_FLOW)


@dataclass(frozen=True)
class ExperimentConfig:
    """Full description of one simulation run."""

    # Fabric ---------------------------------------------------------------
    topology: str = TOPOLOGY_FATTREE
    fattree_k: int = 4
    hosts_per_edge: Optional[int] = 8  # k=4 with 8 hosts/edge -> 4:1 over-subscription
    link_rate_bps: float = megabits_per_second(100)
    core_oversubscription: float = 1.0
    core_link_rate_bps: Optional[float] = None
    host_link_rate_bps: Optional[float] = None
    link_delay_s: float = microseconds(20)
    queue_kind: str = QUEUE_DROPTAIL
    queue_capacity_packets: int = 100
    ecn_threshold_packets: int = 20
    shared_buffer_bytes: int = 512 * 1500

    # Workload ---------------------------------------------------------------
    long_flow_fraction: float = 1.0 / 3.0
    short_flow_size_bytes: int = kilobytes(70)
    long_flow_size_bytes: int = megabytes(20)
    short_flow_rate_per_sender: float = 8.0
    arrival_window_s: float = 0.3
    max_short_flows: Optional[int] = None
    drain_time_s: float = 1.5

    # Transport ---------------------------------------------------------------
    protocol: str = PROTOCOL_MPTCP
    num_subflows: int = 8
    mss_bytes: int = 1400
    initial_cwnd_segments: int = 4
    min_rto_s: float = milliseconds(200)
    dupack_threshold: int = 3
    switching_policy: str = SWITCHING_DATA_VOLUME
    switching_threshold_bytes: int = 100 * 1400
    reordering_policy: str = REORDERING_TOPOLOGY
    adaptive_reordering_increment: int = 2
    #: MPTCP chunk scheduler (see :data:`repro.transport.scheduler.SCHEDULERS`);
    #: ``fcfs`` is the historical demand-driven allocation.
    scheduler: str = "fcfs"
    #: MPTCP subflow creation policy (see
    #: :data:`repro.transport.path_manager.PATH_MANAGERS`).
    path_manager: str = "ndiffports"

    # Faults ---------------------------------------------------------------
    #: Timed fabric changes applied during the run (see
    #: :mod:`repro.net.faults`): link failures / recoveries / degradations,
    #: gradual ``drain_link`` staircases, and ``migrate_host`` endpoint
    #: re-homing events.  A tuple of frozen events so the config stays
    #: hashable and picklable for parallel sweeps — and so every fault
    #: (migrations included) participates in store keys automatically.
    fault_schedule: Tuple[FaultEvent, ...] = ()

    # Run control ---------------------------------------------------------------
    seed: int = 1
    max_events: Optional[int] = None
    wallclock_limit_s: Optional[float] = None
    #: Simulation fidelity: ``packet`` (per-segment engine) or ``flow`` (the
    #: fluid bandwidth-sharing tier).  A first-class config field so it
    #: participates in store keys and campaign sweep axes automatically.
    fidelity: str = FIDELITY_PACKET

    # ------------------------------------------------------------------

    def __post_init__(self) -> None:
        if self.fattree_k < 2 or self.fattree_k % 2:
            raise ValueError("fattree_k must be an even integer >= 2")
        if self.arrival_window_s <= 0 or self.drain_time_s < 0:
            raise ValueError("arrival_window_s must be > 0 and drain_time_s >= 0")
        if self.num_subflows < 1:
            raise ValueError("num_subflows must be at least 1")
        if self.queue_kind not in (QUEUE_DROPTAIL, QUEUE_ECN, QUEUE_SHARED):
            raise ValueError(f"unknown queue kind {self.queue_kind!r}")
        if self.topology not in (TOPOLOGY_FATTREE, TOPOLOGY_DUALHOMED, TOPOLOGY_VL2):
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.core_oversubscription <= 0:
            raise ValueError("core_oversubscription must be positive")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; expected one of "
                f"{tuple(sorted(SCHEDULERS))}"
            )
        if self.path_manager not in PATH_MANAGERS:
            raise ValueError(
                f"unknown path manager {self.path_manager!r}; expected one of "
                f"{tuple(sorted(PATH_MANAGERS))}"
            )
        if self.fidelity not in FIDELITIES:
            raise ValueError(
                f"unknown fidelity {self.fidelity!r}; expected one of {FIDELITIES}"
            )
        if not isinstance(self.fault_schedule, tuple):
            # Lists pickle fine but break hashing/equality of the frozen
            # config; normalise early with a clear message instead.
            raise ValueError("fault_schedule must be a tuple of FaultEvent")

    @property
    def horizon_s(self) -> float:
        """Total simulated time: arrivals plus drain."""
        return self.arrival_window_s + self.drain_time_s

    def with_protocol(
        self, protocol: str, num_subflows: Optional[int] = None
    ) -> "ExperimentConfig":
        """A copy of this config running a different protocol (same workload/seed)."""
        updates = {"protocol": protocol}
        if num_subflows is not None:
            updates["num_subflows"] = num_subflows
        return replace(self, **updates)

    def with_updates(self, **updates) -> "ExperimentConfig":
        """A copy of this config with arbitrary field overrides."""
        return replace(self, **updates)


def reproduction_scale(**overrides) -> ExperimentConfig:
    """The scaled-down configuration used by the benchmark suite.

    Keeps the paper's structural parameters (4:1 over-subscribed FatTree,
    one-third long-flow senders, 70 KB short flows, Poisson arrivals,
    permutation matrix, 200 ms min RTO) while shrinking the fabric and the
    number of flows so a pure-Python run completes in seconds to minutes.
    """
    return ExperimentConfig(**overrides)


#: Named scales shared by the CLI and the campaign layer ("tiny", the
#: scenario-matrix scale, lives in :func:`repro.scenarios.spec.tiny_config`).
SCALES = ("quick", "large", "paper")


def scaled_config(scale: str, seed: int) -> ExperimentConfig:
    """The base configuration for one of the named scales in :data:`SCALES`.

    ``quick`` is the CI-friendly k=4 fabric, ``large`` the k=8 variant with a
    longer arrival window, ``paper`` the full :func:`paper_scale` setup.
    """
    if scale == "paper":
        return paper_scale(seed=seed)
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; expected one of {SCALES}")
    config = reproduction_scale(
        fattree_k=4,
        hosts_per_edge=8,
        link_rate_bps=megabits_per_second(100),
        arrival_window_s=0.25,
        drain_time_s=1.0,
        short_flow_rate_per_sender=7.0,
        long_flow_size_bytes=3_000_000,
        max_short_flows=120,
        initial_cwnd_segments=2,
        seed=seed,
    )
    if scale == "large":
        config = config.with_updates(
            fattree_k=8,
            arrival_window_s=0.5,
            short_flow_rate_per_sender=10.0,
            long_flow_size_bytes=10_000_000,
            max_short_flows=600,
        )
    return config


def paper_scale(**overrides) -> ExperimentConfig:
    """The paper's full-size setup: 512 servers, 4:1 over-subscription, 1 Gbps links.

    Expect runs at this scale to take hours in pure Python; the benchmark
    suite never uses it by default.
    """
    defaults = dict(
        fattree_k=8,
        hosts_per_edge=16,
        link_rate_bps=gigabits_per_second(1),
        short_flow_rate_per_sender=20.0,
        arrival_window_s=1.0,
        long_flow_size_bytes=megabytes(200),
        drain_time_s=3.0,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)
