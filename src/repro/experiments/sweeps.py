"""Parameter-sweep helpers shared by the benchmark harnesses.

Sweeps are lists of independent points, so they parallelise trivially: pass
``workers=N`` to fan the points out over a process pool (see
:mod:`repro.experiments.parallel`).  Results come back ordered by point
index whatever the worker count, so ``workers`` never changes a sweep's
output — only its wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import RunSpec, SweepRunner
from repro.experiments.runner import ExperimentResult


@dataclass
class SweepPoint:
    """One point of a parameter sweep: the overrides applied and the result."""

    overrides: Dict[str, Any]
    result: ExperimentResult

    @property
    def summary(self) -> Dict[str, float]:
        """Headline metrics for this point."""
        return self.result.metrics.summary_dict()


def sweep(
    base_config: ExperimentConfig,
    overrides_list: Sequence[Dict[str, Any]],
    progress: Optional[Callable[[int, Dict[str, Any]], None]] = None,
    workers: Optional[int] = 1,
) -> List[SweepPoint]:
    """Run ``base_config`` once per override dictionary and collect the results."""
    specs = [
        RunSpec(index=index, config=base_config.with_updates(**overrides), tag=dict(overrides))
        for index, overrides in enumerate(overrides_list)
    ]

    def _progress(spec: RunSpec) -> None:
        if progress is not None:
            progress(spec.index, dict(spec.tag or {}))

    results = SweepRunner(workers).run(specs, progress=_progress)
    return [
        SweepPoint(overrides=dict(spec.tag or {}), result=result)
        for spec, result in zip(specs, results)
    ]


def sweep_parameter(
    base_config: ExperimentConfig,
    parameter: str,
    values: Iterable[Any],
    progress: Optional[Callable[[int, Dict[str, Any]], None]] = None,
    workers: Optional[int] = 1,
) -> List[SweepPoint]:
    """Sweep a single configuration field over ``values``."""
    return sweep(
        base_config,
        [{parameter: value} for value in values],
        progress=progress,
        workers=workers,
    )
