"""Parameter-sweep helpers shared by the benchmark harnesses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment


@dataclass
class SweepPoint:
    """One point of a parameter sweep: the overrides applied and the result."""

    overrides: Dict[str, Any]
    result: ExperimentResult

    @property
    def summary(self) -> Dict[str, float]:
        """Headline metrics for this point."""
        return self.result.metrics.summary_dict()


def sweep(
    base_config: ExperimentConfig,
    overrides_list: Sequence[Dict[str, Any]],
    progress: Optional[Callable[[int, Dict[str, Any]], None]] = None,
) -> List[SweepPoint]:
    """Run ``base_config`` once per override dictionary and collect the results."""
    points: List[SweepPoint] = []
    for index, overrides in enumerate(overrides_list):
        if progress is not None:
            progress(index, overrides)
        config = base_config.with_updates(**overrides)
        points.append(SweepPoint(overrides=dict(overrides), result=run_experiment(config)))
    return points


def sweep_parameter(
    base_config: ExperimentConfig,
    parameter: str,
    values: Iterable[Any],
    progress: Optional[Callable[[int, Dict[str, Any]], None]] = None,
) -> List[SweepPoint]:
    """Sweep a single configuration field over ``values``."""
    return sweep(base_config, [{parameter: value} for value in values], progress=progress)
