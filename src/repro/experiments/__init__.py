"""Experiment harness: configuration, runner, sweeps and figure builders."""

from repro.experiments.coexistence import (
    CoexistenceResult,
    ProtocolShare,
    build_mixed_protocol_workload,
    coexistence_rows,
    run_coexistence_experiment,
)
from repro.experiments.config import (
    ExperimentConfig,
    paper_scale,
    reproduction_scale,
)
from repro.experiments.deadline_study import (
    DeadlineOutcome,
    deadline_rows,
    run_deadline_study,
)
from repro.experiments.figure1 import (
    FIGURE1A_SUBFLOW_COUNTS,
    Figure1aRow,
    figure1a_series,
    figure1b_scatter,
    figure1c_scatter,
    scatter_points,
)
from repro.experiments.hotspot import (
    HotspotOutcome,
    hotspot_rows,
    run_hotspot_comparison,
)
from repro.experiments.incast_study import (
    IncastPoint,
    compare_multihoming,
    incast_rows,
    run_incast_sweep,
)
from repro.experiments.loadsweep import (
    LoadPoint,
    load_sweep_rows,
    points_by_protocol,
    run_load_sweep,
)
from repro.experiments.parallel import (
    RunSpec,
    SweepRunner,
    run_specs,
    seeded_replications,
    specs_from_configs,
)
from repro.experiments.runner import (
    ExperimentResult,
    build_topology,
    build_workload,
    create_flow,
    run_experiment,
)
from repro.experiments.section3 import (
    ProtocolStatistics,
    Section3Comparison,
    section3_statistics,
)
from repro.experiments.sweeps import SweepPoint, sweep, sweep_parameter

__all__ = [
    "ExperimentConfig",
    "paper_scale",
    "reproduction_scale",
    "CoexistenceResult",
    "ProtocolShare",
    "build_mixed_protocol_workload",
    "coexistence_rows",
    "run_coexistence_experiment",
    "DeadlineOutcome",
    "deadline_rows",
    "run_deadline_study",
    "HotspotOutcome",
    "hotspot_rows",
    "run_hotspot_comparison",
    "IncastPoint",
    "compare_multihoming",
    "incast_rows",
    "run_incast_sweep",
    "LoadPoint",
    "load_sweep_rows",
    "points_by_protocol",
    "run_load_sweep",
    "FIGURE1A_SUBFLOW_COUNTS",
    "Figure1aRow",
    "figure1a_series",
    "figure1b_scatter",
    "figure1c_scatter",
    "scatter_points",
    "RunSpec",
    "SweepRunner",
    "run_specs",
    "seeded_replications",
    "specs_from_configs",
    "ExperimentResult",
    "build_topology",
    "build_workload",
    "create_flow",
    "run_experiment",
    "ProtocolStatistics",
    "Section3Comparison",
    "section3_statistics",
    "SweepPoint",
    "sweep",
    "sweep_parameter",
]
