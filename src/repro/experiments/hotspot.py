"""Hotspot experiments.

"Effect of hotspots" is another scenario on the paper's roadmap: a fraction
of the receivers attracts a disproportionate share of the traffic, which
concentrates load on a few edge links and — for single-path transports — on
a few core paths.  This module runs the paper's short/long mix over a
hotspot-skewed matrix for any set of protocols and reports the same
statistics as the Figure 1 / Section 3 experiments, so the MPTCP-vs-MMPTCP
comparison can be repeated under skew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, build_topology, run_experiment
from repro.metrics.stats import DistributionSummary
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.flowspec import PROTOCOL_MMPTCP, PROTOCOL_MPTCP
from repro.traffic.workloads import (
    ShortLongWorkloadParams,
    Workload,
    build_hotspot_workload,
)


@dataclass
class HotspotOutcome:
    """Statistics of one protocol's run over the hotspot workload."""

    protocol: str
    hotspot_fraction: float
    load_fraction: float
    fct_summary: DistributionSummary
    rto_incidence: float
    completion_rate: float
    tail_over_200ms: float
    edge_loss_rate: float
    core_loss_rate: float
    mean_long_throughput_mbps: float
    result: ExperimentResult


def build_hotspot_workload_for(
    config: ExperimentConfig,
    hotspot_fraction: float,
    load_fraction: float,
    protocol: str,
) -> Workload:
    """Materialise the hotspot workload for ``config`` under ``protocol``.

    The random stream is derived only from the configuration seed, so every
    protocol sees the same hotspots, the same senders and the same arrival
    times — the comparison is paired exactly like the Figure 1 benchmarks.
    """
    simulator = Simulator()
    streams = RandomStreams(config.seed)
    topology = build_topology(config, simulator)
    params = ShortLongWorkloadParams(
        long_flow_fraction=config.long_flow_fraction,
        short_flow_size_bytes=config.short_flow_size_bytes,
        long_flow_size_bytes=config.long_flow_size_bytes,
        short_flow_rate_per_sender=config.short_flow_rate_per_sender,
        duration_s=config.arrival_window_s,
        max_short_flows=config.max_short_flows,
        protocol=protocol,
        num_subflows=config.num_subflows,
    )
    return build_hotspot_workload(
        [host.name for host in topology.hosts],
        params,
        streams.stream("hotspot-workload"),
        hotspot_fraction=hotspot_fraction,
        load_fraction=load_fraction,
    )


def run_hotspot_comparison(
    base_config: ExperimentConfig,
    protocols: Sequence[str] = (PROTOCOL_MPTCP, PROTOCOL_MMPTCP),
    hotspot_fraction: float = 0.125,
    load_fraction: float = 0.5,
    num_subflows: int = 8,
) -> Dict[str, HotspotOutcome]:
    """Run each protocol over the same hotspot-skewed workload."""
    if not protocols:
        raise ValueError("need at least one protocol")
    outcomes: Dict[str, HotspotOutcome] = {}
    for protocol in protocols:
        config = base_config.with_protocol(protocol, num_subflows)
        workload = build_hotspot_workload_for(
            config, hotspot_fraction, load_fraction, protocol
        )
        result = run_experiment(config, workload=workload)
        metrics = result.metrics
        outcomes[protocol] = HotspotOutcome(
            protocol=protocol,
            hotspot_fraction=hotspot_fraction,
            load_fraction=load_fraction,
            fct_summary=metrics.short_flow_fct_summary(),
            rto_incidence=metrics.rto_incidence(),
            completion_rate=metrics.short_flow_completion_rate(),
            tail_over_200ms=metrics.tail_fraction(200.0),
            edge_loss_rate=metrics.loss_rate("edge"),
            core_loss_rate=metrics.loss_rate("core"),
            mean_long_throughput_mbps=metrics.mean_long_flow_throughput_bps() / 1e6,
            result=result,
        )
    return outcomes


def hotspot_rows(outcomes: Dict[str, HotspotOutcome]) -> List[Dict[str, object]]:
    """Flat per-protocol rows for table rendering / CSV export."""
    rows: List[Dict[str, object]] = []
    for protocol, outcome in outcomes.items():
        rows.append(
            {
                "protocol": protocol,
                "hotspot_fraction": outcome.hotspot_fraction,
                "load_fraction": outcome.load_fraction,
                "mean_fct_ms": outcome.fct_summary.mean,
                "std_fct_ms": outcome.fct_summary.std,
                "p99_fct_ms": outcome.fct_summary.p99,
                "rto_incidence": outcome.rto_incidence,
                "completion_rate": outcome.completion_rate,
                "tail_over_200ms": outcome.tail_over_200ms,
                "edge_loss_rate": outcome.edge_loss_rate,
                "core_loss_rate": outcome.core_loss_rate,
                "long_throughput_mbps": outcome.mean_long_throughput_mbps,
            }
        )
    return rows
