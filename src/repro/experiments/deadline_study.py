"""Deadline-miss study.

The paper motivates MMPTCP with short flows that "commonly come with strict
deadlines regarding their completion time" and positions itself against
deadline-aware single-path transports (DCTCP, D2TCP, D3) that need
application-layer deadline information.  This experiment quantifies that
trade-off: it assigns slack-based deadlines to every short flow, runs the
same workload under a configurable set of protocols (including the
deadline-aware D2TCP baseline, which actually consumes the deadlines) and
reports the deadline miss rate, completion-time statistics and RTO incidence
per protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.config import QUEUE_ECN, ExperimentConfig
from repro.experiments.runner import ExperimentResult, build_topology, run_experiment
from repro.metrics.stats import DistributionSummary
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.deadlines import DeadlineParams, deadline_of, slack_deadlines
from repro.traffic.flowspec import (
    PROTOCOL_D2TCP,
    PROTOCOL_DCTCP,
    PROTOCOL_MMPTCP,
    PROTOCOL_MPTCP,
    PROTOCOL_TCP,
    FlowSpec,
)
from repro.traffic.workloads import ShortLongWorkloadParams, Workload, build_short_long_workload

#: Protocols compared by default: the paper's contenders plus the
#: deadline-aware single-path baselines its introduction discusses.
DEFAULT_DEADLINE_PROTOCOLS = (
    PROTOCOL_TCP,
    PROTOCOL_DCTCP,
    PROTOCOL_D2TCP,
    PROTOCOL_MPTCP,
    PROTOCOL_MMPTCP,
)

#: ECN-dependent protocols need marking switches; everything else works on
#: plain drop-tail queues.
ECN_PROTOCOLS = (PROTOCOL_DCTCP, PROTOCOL_D2TCP)


@dataclass
class DeadlineOutcome:
    """Deadline statistics for one protocol on the annotated workload."""

    protocol: str
    slack_factor: float
    short_flow_count: int
    deadline_miss_rate: float
    fct_summary: DistributionSummary
    rto_incidence: float
    completion_rate: float
    result: ExperimentResult


def _annotated_workload(
    config: ExperimentConfig, protocol: str, slack_factor: float
) -> Workload:
    """The paper's short/long mix with slack deadlines attached to short flows."""
    simulator = Simulator()
    streams = RandomStreams(config.seed)
    topology = build_topology(config, simulator)
    params = ShortLongWorkloadParams(
        long_flow_fraction=config.long_flow_fraction,
        short_flow_size_bytes=config.short_flow_size_bytes,
        long_flow_size_bytes=config.long_flow_size_bytes,
        short_flow_rate_per_sender=config.short_flow_rate_per_sender,
        duration_s=config.arrival_window_s,
        max_short_flows=config.max_short_flows,
        protocol=protocol,
        num_subflows=config.num_subflows,
    )
    workload = build_short_long_workload(
        [host.name for host in topology.hosts], params, streams.stream("workload")
    )
    deadline_params = DeadlineParams(
        slack_factor=slack_factor,
        link_rate_bps=config.link_rate_bps,
        base_rtt_s=8 * config.link_delay_s,
    )
    slack_deadlines(workload.flows, deadline_params)
    return workload


def _miss_rate(specs: Sequence[FlowSpec], result: ExperimentResult) -> float:
    """Fraction of deadline-carrying short flows that finished after their deadline."""
    records = {record.flow_id: record for record in result.metrics.flows}
    with_deadline = [spec for spec in specs if not spec.is_long and deadline_of(spec) is not None]
    if not with_deadline:
        return 0.0
    missed = 0
    for spec in with_deadline:
        record = records.get(spec.flow_id)
        deadline = deadline_of(spec)
        fct = record.completion_time if record is not None else None
        if fct is None or (deadline is not None and fct > deadline):
            missed += 1
    return missed / len(with_deadline)


def run_deadline_study(
    base_config: ExperimentConfig,
    protocols: Sequence[str] = DEFAULT_DEADLINE_PROTOCOLS,
    slack_factor: float = 2.0,
    num_subflows: int = 8,
) -> Dict[str, DeadlineOutcome]:
    """Run the deadline-annotated workload under each protocol.

    ECN-dependent protocols (DCTCP, D2TCP) automatically get ECN-marking
    queues; every other protocol runs on the configuration's own queue kind,
    mirroring the deployment reality the paper argues from.
    """
    if slack_factor <= 0:
        raise ValueError("slack_factor must be positive")
    outcomes: Dict[str, DeadlineOutcome] = {}
    for protocol in protocols:
        config = base_config.with_protocol(protocol, num_subflows)
        if protocol in ECN_PROTOCOLS:
            config = config.with_updates(queue_kind=QUEUE_ECN)
        workload = _annotated_workload(config, protocol, slack_factor)
        result = run_experiment(config, workload=workload)
        metrics = result.metrics
        outcomes[protocol] = DeadlineOutcome(
            protocol=protocol,
            slack_factor=slack_factor,
            short_flow_count=len(metrics.short_flows),
            deadline_miss_rate=_miss_rate(workload.flows, result),
            fct_summary=metrics.short_flow_fct_summary(),
            rto_incidence=metrics.rto_incidence(),
            completion_rate=metrics.short_flow_completion_rate(),
            result=result,
        )
    return outcomes


def deadline_rows(outcomes: Dict[str, DeadlineOutcome]) -> List[Dict[str, object]]:
    """Flat per-protocol rows for table rendering / CSV export."""
    rows: List[Dict[str, object]] = []
    for protocol, outcome in outcomes.items():
        rows.append(
            {
                "protocol": protocol,
                "slack_factor": outcome.slack_factor,
                "short_flows": outcome.short_flow_count,
                "deadline_miss_rate": outcome.deadline_miss_rate,
                "mean_fct_ms": outcome.fct_summary.mean,
                "p99_fct_ms": outcome.fct_summary.p99,
                "rto_incidence": outcome.rto_incidence,
                "completion_rate": outcome.completion_rate,
            }
        )
    return rows
