"""Experiment driver: configuration in, metrics out.

The runner builds the topology, materialises the workload, instantiates one
sender/receiver pair per flow for the configured protocol, runs the event
loop for the configured horizon and finally joins transport counters,
receiver state and switch counters into an :class:`ExperimentMetrics`.
"""

from __future__ import annotations

import time as _wallclock
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.mmptcp import MmptcpConnection, MmptcpReceiver, PacketScatterConnection
from repro.core.phase_switching import (
    CongestionEventSwitching,
    DataVolumeSwitching,
    HybridSwitching,
    NeverSwitch,
    SwitchingPolicy,
)
from repro.core.reordering import (
    AdaptiveReorderingPolicy,
    StaticReorderingPolicy,
    TopologyInformedPolicy,
)
from repro.experiments.config import (
    FIDELITY_FLOW,
    QUEUE_DROPTAIL,
    QUEUE_ECN,
    QUEUE_SHARED,
    REORDERING_ADAPTIVE,
    REORDERING_STATIC,
    REORDERING_TOPOLOGY,
    SWITCHING_CONGESTION,
    SWITCHING_DATA_VOLUME,
    SWITCHING_HYBRID,
    SWITCHING_NEVER,
    TOPOLOGY_DUALHOMED,
    TOPOLOGY_FATTREE,
    TOPOLOGY_VL2,
    ExperimentConfig,
)
from repro.metrics.collector import ExperimentMetrics
from repro.metrics.records import FlowRecord
from repro.net.faults import FaultInjector
from repro.net.host import Host
from repro.net.packet import default_pool, set_pool_profile
from repro.net.queues import DropTailQueue, EcnQueue, SharedBufferPool, SharedBufferQueue
from repro.obs.profiler import EngineProfiler, pool_counters, profile_diagnostics
from repro.obs.telemetry import NULL_PROBES, TeeSink, TelemetryProbes, TelemetryRecorder
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.sim.tracing import NULL_SINK, TraceSink
from repro.topology.base import Topology
from repro.topology.dualhomed import DualHomedFatTreeTopology
from repro.topology.fattree import FatTreeParams, FatTreeTopology
from repro.topology.vl2 import Vl2Params, Vl2Topology
from repro.traffic.deadlines import deadline_of
from repro.traffic.flowspec import (
    PROTOCOL_D2TCP,
    PROTOCOL_DCTCP,
    PROTOCOL_MMPTCP,
    PROTOCOL_MPTCP,
    PROTOCOL_PACKET_SCATTER,
    PROTOCOL_TCP,
    FlowSpec,
)
from repro.traffic.workloads import ShortLongWorkloadParams, Workload, build_short_long_workload
from repro.transport.base import TcpConfig
from repro.transport.d2tcp import D2tcpReceiver, D2tcpSender
from repro.transport.dctcp import DctcpReceiver, DctcpSender
from repro.transport.mptcp import MptcpConnection, MptcpReceiver
from repro.transport.path_manager import make_path_manager
from repro.transport.receiver import TcpReceiver
from repro.transport.scheduler import make_scheduler
from repro.transport.tcp import TcpSender


@dataclass
class _FlowInstance:
    """Bookkeeping linking a spec to its live endpoints."""

    spec: FlowSpec
    sender: object
    receiver: object


@dataclass
class ExperimentResult:
    """Metrics plus provenance for one run.

    ``diagnostics`` and ``telemetry`` are observability side-channels: they
    never participate in equality, are never serialised by
    ``store/serialize.py`` and never reach a ``run_key`` — attaching probes
    or the profiler cannot change what a run *is*, only what it reports.
    """

    config: ExperimentConfig
    metrics: ExperimentMetrics
    events_processed: int
    wallclock_s: float
    workload_size: int
    #: ``--profile`` output (the sanctioned wall-clock island), or None.
    diagnostics: Optional[Dict[str, Any]] = field(default=None, compare=False, repr=False)
    #: Rendered telemetry records (used to ferry a worker-side recorder's
    #: content across the process boundary), or None.
    telemetry: Optional[List[Dict[str, Any]]] = field(default=None, compare=False, repr=False)


# ---------------------------------------------------------------------------
# Topology and workload construction
# ---------------------------------------------------------------------------


def build_topology(
    config: ExperimentConfig, simulator: Simulator, trace: TraceSink = NULL_SINK
) -> Topology:
    """Instantiate the fabric described by ``config``."""
    queue_factory = _queue_factory(config)
    if config.topology in (TOPOLOGY_FATTREE, TOPOLOGY_DUALHOMED):
        params = FatTreeParams(
            k=config.fattree_k,
            hosts_per_edge=config.hosts_per_edge,
            link_rate_bps=config.link_rate_bps,
            core_oversubscription=config.core_oversubscription,
            core_link_rate_bps=config.core_link_rate_bps,
            host_link_rate_bps=config.host_link_rate_bps,
            link_delay_s=config.link_delay_s,
        )
        topology_class = (
            FatTreeTopology if config.topology == TOPOLOGY_FATTREE else DualHomedFatTreeTopology
        )
        return topology_class(simulator, params, queue_factory=queue_factory, trace=trace)
    if config.topology == TOPOLOGY_VL2:
        if (
            config.core_oversubscription != 1.0
            or config.core_link_rate_bps is not None
            or config.host_link_rate_bps is not None
        ):
            # Refuse rather than silently building a symmetric fabric: a
            # scenario matrix comparing "asymmetric" VL2 cells against
            # baseline would otherwise report misleading zero deltas.
            raise ValueError(
                "core_oversubscription / core_link_rate_bps / host_link_rate_bps "
                "apply to FatTree-family topologies only, not vl2"
            )
        params = Vl2Params(
            server_link_rate_bps=config.link_rate_bps,
            fabric_link_rate_bps=config.link_rate_bps * 10,
            link_delay_s=config.link_delay_s,
        )
        return Vl2Topology(simulator, params, queue_factory=queue_factory, trace=trace)
    raise ValueError(f"unknown topology {config.topology!r}")


def _queue_factory(config: ExperimentConfig) -> Callable:
    if config.queue_kind == QUEUE_DROPTAIL:
        return lambda: DropTailQueue(capacity_packets=config.queue_capacity_packets)
    if config.queue_kind == QUEUE_ECN:
        return lambda: EcnQueue(
            capacity_packets=config.queue_capacity_packets,
            marking_threshold=config.ecn_threshold_packets,
        )
    if config.queue_kind == QUEUE_SHARED:
        # One pool per queue factory call would defeat the purpose; a pool is
        # shared among the ports created for a single experiment run.
        pool = SharedBufferPool(total_bytes=config.shared_buffer_bytes)
        return lambda: SharedBufferQueue(pool, marking_threshold=None)
    raise ValueError(f"unknown queue kind {config.queue_kind!r}")


def build_workload(
    config: ExperimentConfig, topology: Topology, streams: RandomStreams
) -> Workload:
    """Materialise the short/long mixed workload for ``config``."""
    params = ShortLongWorkloadParams(
        long_flow_fraction=config.long_flow_fraction,
        short_flow_size_bytes=config.short_flow_size_bytes,
        long_flow_size_bytes=config.long_flow_size_bytes,
        short_flow_rate_per_sender=config.short_flow_rate_per_sender,
        duration_s=config.arrival_window_s,
        max_short_flows=config.max_short_flows,
        protocol=config.protocol,
        num_subflows=config.num_subflows,
    )
    host_names = [host.name for host in topology.hosts]
    return build_short_long_workload(host_names, params, streams.stream("workload"))


# ---------------------------------------------------------------------------
# Protocol factory
# ---------------------------------------------------------------------------


def _tcp_config(config: ExperimentConfig) -> TcpConfig:
    return TcpConfig(
        mss=config.mss_bytes,
        initial_cwnd_segments=config.initial_cwnd_segments,
        dupack_threshold=config.dupack_threshold,
        min_rto=config.min_rto_s,
        ecn_enabled=config.protocol in (PROTOCOL_DCTCP, PROTOCOL_D2TCP),
    )


def make_switching_policy(config: ExperimentConfig) -> SwitchingPolicy:
    """Build the MMPTCP phase-switching policy named by ``config``."""
    if config.switching_policy == SWITCHING_DATA_VOLUME:
        return DataVolumeSwitching(threshold_bytes=config.switching_threshold_bytes)
    if config.switching_policy == SWITCHING_CONGESTION:
        return CongestionEventSwitching()
    if config.switching_policy == SWITCHING_HYBRID:
        return HybridSwitching(threshold_bytes=config.switching_threshold_bytes)
    if config.switching_policy == SWITCHING_NEVER:
        return NeverSwitch()
    raise ValueError(f"unknown switching policy {config.switching_policy!r}")


def make_reordering_policy(config: ExperimentConfig, path_count: int):
    """Build the packet-scatter reordering policy named by ``config``."""
    if config.reordering_policy == REORDERING_STATIC:
        return StaticReorderingPolicy(threshold=config.dupack_threshold)
    if config.reordering_policy == REORDERING_TOPOLOGY:
        return TopologyInformedPolicy(path_count=path_count)
    if config.reordering_policy == REORDERING_ADAPTIVE:
        return AdaptiveReorderingPolicy(increment=config.adaptive_reordering_increment)
    raise ValueError(f"unknown reordering policy {config.reordering_policy!r}")


def _path_count_hint(topology: Topology, source: Host, destination: Host) -> int:
    if hasattr(topology, "expected_path_count"):
        return topology.expected_path_count(source, destination)
    return max(1, topology.path_count(source, destination))


def create_flow(
    spec: FlowSpec,
    config: ExperimentConfig,
    topology: Topology,
    simulator: Simulator,
    streams: RandomStreams,
    probes: TelemetryProbes = NULL_PROBES,
) -> _FlowInstance:
    """Instantiate the sender and receiver endpoints for one flow spec."""
    instance = _build_flow(spec, config, topology, simulator, streams)
    if probes.enabled:
        sender = instance.sender
        if isinstance(sender, MptcpConnection):
            sender.set_probes(probes)
        else:
            sender.probes = probes
    return instance


def _build_flow(
    spec: FlowSpec,
    config: ExperimentConfig,
    topology: Topology,
    simulator: Simulator,
    streams: RandomStreams,
) -> _FlowInstance:
    source = topology.node(spec.source)
    destination = topology.node(spec.destination)
    if not isinstance(source, Host) or not isinstance(destination, Host):
        raise ValueError("flow endpoints must be hosts")
    tcp_config = _tcp_config(config)
    port = destination.allocate_port()
    protocol = spec.protocol

    if protocol == PROTOCOL_TCP:
        receiver = TcpReceiver(
            simulator, destination, local_port=port, flow_id=spec.flow_id,
            expected_bytes=spec.size_bytes,
        )
        sender = TcpSender(
            simulator, source, destination.address, port, spec.size_bytes,
            flow_id=spec.flow_id, config=tcp_config,
        )
        return _FlowInstance(spec, sender, receiver)

    if protocol == PROTOCOL_DCTCP:
        receiver = DctcpReceiver(
            simulator, destination, local_port=port, flow_id=spec.flow_id,
            expected_bytes=spec.size_bytes,
        )
        sender = DctcpSender(
            simulator, source, destination.address, port, spec.size_bytes,
            flow_id=spec.flow_id, config=tcp_config,
        )
        return _FlowInstance(spec, sender, receiver)

    if protocol == PROTOCOL_D2TCP:
        receiver = D2tcpReceiver(
            simulator, destination, local_port=port, flow_id=spec.flow_id,
            expected_bytes=spec.size_bytes,
        )
        sender = D2tcpSender(
            simulator, source, destination.address, port, spec.size_bytes,
            flow_id=spec.flow_id, config=tcp_config, deadline_s=deadline_of(spec),
        )
        return _FlowInstance(spec, sender, receiver)

    if protocol == PROTOCOL_MPTCP:
        receiver = MptcpReceiver(
            simulator, destination, local_port=port, flow_id=spec.flow_id,
            expected_bytes=spec.size_bytes,
        )
        sender = MptcpConnection(
            simulator, source, destination.address, port, spec.size_bytes,
            num_subflows=spec.num_subflows, flow_id=spec.flow_id, config=tcp_config,
            scheduler=make_scheduler(config.scheduler),
            path_manager=make_path_manager(config.path_manager),
            address_resolver=topology.current_address_of,
        )
        return _FlowInstance(spec, sender, receiver)

    if protocol in (PROTOCOL_MMPTCP, PROTOCOL_PACKET_SCATTER):
        receiver = MmptcpReceiver(
            simulator, destination, local_port=port, flow_id=spec.flow_id,
            expected_bytes=spec.size_bytes,
        )
        path_count = _path_count_hint(topology, source, destination)
        reordering = make_reordering_policy(config, path_count)
        rng = streams.stream(f"scatter-{spec.flow_id}")
        if protocol == PROTOCOL_PACKET_SCATTER:
            sender = PacketScatterConnection(
                simulator, source, destination.address, port, spec.size_bytes,
                flow_id=spec.flow_id, config=tcp_config,
                reordering_policy=reordering, rng=rng,
                scheduler=make_scheduler(config.scheduler),
                path_manager=make_path_manager(config.path_manager),
                address_resolver=topology.current_address_of,
            )
        else:
            sender = MmptcpConnection(
                simulator, source, destination.address, port, spec.size_bytes,
                num_subflows=spec.num_subflows, flow_id=spec.flow_id, config=tcp_config,
                switching_policy=make_switching_policy(config),
                reordering_policy=reordering, path_count_hint=path_count, rng=rng,
                scheduler=make_scheduler(config.scheduler),
                path_manager=make_path_manager(config.path_manager),
                address_resolver=topology.current_address_of,
            )
        return _FlowInstance(spec, sender, receiver)

    raise ValueError(f"unknown protocol {protocol!r}")


# ---------------------------------------------------------------------------
# Record extraction
# ---------------------------------------------------------------------------


def _record_for(instance: _FlowInstance) -> FlowRecord:
    spec = instance.spec
    sender = instance.sender
    receiver = instance.receiver
    record = FlowRecord(
        flow_id=spec.flow_id,
        protocol=spec.protocol,
        size_bytes=spec.size_bytes,
        is_long=spec.is_long,
        start_time=spec.start_time,
    )

    if isinstance(receiver, (TcpReceiver, MptcpReceiver)):
        record.receiver_completion_time = receiver.completion_time
        record.bytes_received = receiver.bytes_received_in_order
    if isinstance(receiver, MptcpReceiver):
        record.reordering_events = receiver.reordering_events

    if isinstance(sender, TcpSender):
        stats = sender.stats
        record.sender_completion_time = stats.completion_time
    elif isinstance(sender, MptcpConnection):
        stats = sender.aggregate_stats()
        record.sender_completion_time = sender.completion_time
    else:  # pragma: no cover - defensive
        return record

    record.rto_events = stats.rto_events
    record.fast_retransmits = stats.fast_retransmits
    record.retransmitted_packets = stats.retransmitted_packets
    record.spurious_retransmits = stats.spurious_retransmits
    record.data_packets_sent = stats.data_packets_sent
    record.duplicate_acks = stats.duplicate_acks

    if isinstance(sender, MmptcpConnection):
        record.phase_at_completion = sender.phase
        record.switch_time = sender.switch_time
    return record


# ---------------------------------------------------------------------------
# Top-level entry point
# ---------------------------------------------------------------------------


def run_experiment(
    config: ExperimentConfig,
    workload: Optional[Workload] = None,
    topology_builder: Optional[Callable[..., Topology]] = None,
    trace: TraceSink = NULL_SINK,
    probes: Optional[TelemetryRecorder] = None,
    profile: bool = False,
) -> ExperimentResult:
    """Run one simulation described by ``config`` and return its metrics.

    Args:
        config: the experiment description.
        workload: pre-built workload (the runner builds the paper's short/long
            mix when omitted).  Passing the same workload object to several
            configs is how protocol comparisons stay paired.
        topology_builder: override for exotic fabrics (defaults to
            :func:`build_topology`; called as ``builder(config, simulator)``).
        trace: sink receiving the run's trace events (drops, fault events,
            ...); the default null sink costs nothing.
        probes: optional telemetry recorder; when given, every endpoint's
            probe hooks feed it and the trace stream is teed into it,
            without changing what ``trace`` itself observes.
        profile: attach the engine profiler and return its ``diagnostics``
            on the result (wall-clock-bearing, key-excluded).
    """
    if config.fidelity == FIDELITY_FLOW:
        if topology_builder is not None:
            raise ValueError(
                "topology_builder overrides are packet-fidelity only: the "
                "flow tier derives its fabric from the standard build_topology"
            )
        # Imported lazily: repro.flowlevel reuses this module's topology and
        # workload builders, so a top-level import would be a cycle.
        from repro.flowlevel.engine import run_flow_experiment

        return run_flow_experiment(
            config, workload=workload, trace=trace, probes=probes, profile=profile
        )

    # wallclock_s is a pure diagnostic: the store normalises it to 0.0 and no
    # metric derives from it, so the real-clock read cannot perturb results.
    # repro: allow[no-wallclock-or-global-random] -- diagnostic only
    wall_start = _wallclock.monotonic()
    if probes is not None:
        trace = TeeSink(trace, probes)
    flow_probes = probes if probes is not None else NULL_PROBES
    simulator = Simulator()
    profiler = None
    pool = None
    pool_baseline = None
    pool_profile_was = False
    if profile:
        profiler = EngineProfiler()
        simulator.profiler = profiler
        pool = default_pool()
        pool_profile_was = set_pool_profile(True)
        pool_baseline = pool_counters(pool)
    try:
        streams = RandomStreams(config.seed)
        if topology_builder is not None:
            topology = topology_builder(config, simulator)
        else:
            topology = build_topology(config, simulator, trace)
        if config.fault_schedule:
            FaultInjector(simulator, topology, config.fault_schedule, trace=trace).arm()
        if workload is None:
            workload = build_workload(config, topology, streams)

        instances: List[_FlowInstance] = []
        for spec in workload.flows:
            instance = create_flow(
                spec, config, topology, simulator, streams, probes=flow_probes
            )
            instances.append(instance)
            simulator.schedule_at(spec.start_time, instance.sender.start)

        simulator.run(
            until=config.horizon_s,
            max_events=config.max_events,
            wallclock_limit=config.wallclock_limit_s,
        )
    finally:
        if profile:
            set_pool_profile(pool_profile_was)

    metrics = ExperimentMetrics(duration_s=config.horizon_s)
    metrics.flows = [_record_for(instance) for instance in instances]
    metrics.network = topology.monitor().snapshot(config.horizon_s)

    # repro: allow[no-wallclock-or-global-random] -- diagnostic only (above)
    wallclock_s = _wallclock.monotonic() - wall_start
    diagnostics = None
    if profiler is not None:
        diagnostics = profile_diagnostics(
            profiler, simulator, wallclock_s, pool=pool, pool_baseline=pool_baseline
        )

    return ExperimentResult(
        config=config,
        metrics=metrics,
        events_processed=simulator.events_processed,
        wallclock_s=wallclock_s,
        workload_size=len(workload.flows),
        diagnostics=diagnostics,
    )
