"""Network-load sweeps.

"Effect of ... network loads" is one of the scenarios the paper's roadmap
says it is currently simulating.  The natural load knob in the Figure 1
workload is the Poisson arrival rate of short flows at each sender; this
module sweeps that rate for any set of protocols on an otherwise identical
configuration (same fabric, same seed, same long-flow background) and
reports how mean/tail completion times and RTO incidence degrade as the
offered load grows — the regime where MMPTCP's burst tolerance is supposed
to matter most.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import RunSpec, SweepRunner
from repro.experiments.runner import ExperimentResult
from repro.metrics.stats import DistributionSummary
from repro.traffic.flowspec import PROTOCOL_MMPTCP, PROTOCOL_MPTCP

#: Default multipliers applied to the base configuration's arrival rate.
DEFAULT_LOAD_FACTORS = (0.5, 1.0, 1.5, 2.0)


@dataclass
class LoadPoint:
    """One (protocol, load) point of the sweep."""

    protocol: str
    load_factor: float
    arrival_rate_per_sender: float
    fct_summary: DistributionSummary
    rto_incidence: float
    completion_rate: float
    tail_over_200ms: float
    mean_long_throughput_mbps: float
    result: ExperimentResult

    @property
    def mean_fct_ms(self) -> float:
        """Mean short-flow completion time in milliseconds at this load."""
        return self.fct_summary.mean

    @property
    def p99_fct_ms(self) -> float:
        """99th-percentile short-flow completion time in milliseconds."""
        return self.fct_summary.p99


def run_load_sweep(
    base_config: ExperimentConfig,
    protocols: Sequence[str] = (PROTOCOL_MPTCP, PROTOCOL_MMPTCP),
    load_factors: Sequence[float] = DEFAULT_LOAD_FACTORS,
    num_subflows: Optional[int] = None,
    workers: Optional[int] = 1,
) -> List[LoadPoint]:
    """Sweep the short-flow arrival rate for each protocol.

    Every point uses the same seed, so the permutation matrix and the long-
    flow background are identical across protocols at a given load factor;
    only the arrival rate (and the protocol under test) changes.

    ``workers`` fans the (factor, protocol) points out over a process pool;
    the returned list is ordered factor-major exactly as the serial sweep
    produced it, whatever the worker count.
    """
    if not protocols:
        raise ValueError("need at least one protocol")
    if any(factor <= 0 for factor in load_factors):
        raise ValueError("load factors must be positive")
    subflows = num_subflows if num_subflows is not None else base_config.num_subflows
    axes: List[tuple] = []
    specs: List[RunSpec] = []
    for factor in load_factors:
        rate = base_config.short_flow_rate_per_sender * factor
        for protocol in protocols:
            config = base_config.with_protocol(protocol, subflows).with_updates(
                short_flow_rate_per_sender=rate
            )
            specs.append(RunSpec(index=len(specs), config=config))
            axes.append((factor, rate, protocol))
    results = SweepRunner(workers).run(specs)

    points: List[LoadPoint] = []
    for (factor, rate, protocol), result in zip(axes, results):
        metrics = result.metrics
        points.append(
            LoadPoint(
                protocol=protocol,
                load_factor=factor,
                arrival_rate_per_sender=rate,
                fct_summary=metrics.short_flow_fct_summary(),
                rto_incidence=metrics.rto_incidence(),
                completion_rate=metrics.short_flow_completion_rate(),
                tail_over_200ms=metrics.tail_fraction(200.0),
                mean_long_throughput_mbps=metrics.mean_long_flow_throughput_bps() / 1e6,
                result=result,
            )
        )
    return points


def load_sweep_rows(points: Sequence[LoadPoint]) -> List[Dict[str, object]]:
    """Flat rows (one per point) for table rendering / CSV export."""
    rows: List[Dict[str, object]] = []
    for point in points:
        rows.append(
            {
                "protocol": point.protocol,
                "load_factor": point.load_factor,
                "arrival_rate": point.arrival_rate_per_sender,
                "mean_fct_ms": point.mean_fct_ms,
                "p99_fct_ms": point.p99_fct_ms,
                "rto_incidence": point.rto_incidence,
                "completion_rate": point.completion_rate,
                "tail_over_200ms": point.tail_over_200ms,
                "long_throughput_mbps": point.mean_long_throughput_mbps,
            }
        )
    return rows


def points_by_protocol(points: Sequence[LoadPoint]) -> Dict[str, List[LoadPoint]]:
    """Group sweep points by protocol, each group ordered by load factor."""
    grouped: Dict[str, List[LoadPoint]] = {}
    for point in points:
        grouped.setdefault(point.protocol, []).append(point)
    for series in grouped.values():
        series.sort(key=lambda point: point.load_factor)
    return grouped
