"""Section 3 statistics: the paper's prose "table".

Section 3 reports, for the Figure 1 workload:

* mean / standard deviation of short-flow completion time —
  MMPTCP 116 ms (std 101) vs MPTCP 126 ms (std 425);
* the majority of MMPTCP short flows completing within 100 ms;
* slightly lower loss rates at the core and aggregation layers for MMPTCP;
* equal average long-flow throughput and overall network utilisation.

:func:`section3_statistics` runs the paired comparison and returns all of
those quantities for both protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.traffic.flowspec import PROTOCOL_MMPTCP, PROTOCOL_MPTCP


@dataclass
class ProtocolStatistics:
    """The Section 3 quantities for one protocol."""

    protocol: str
    mean_fct_ms: float
    std_fct_ms: float
    p99_fct_ms: float
    fraction_within_100ms: float
    rto_incidence: float
    core_loss_rate: float
    aggregation_loss_rate: float
    edge_loss_rate: float
    long_flow_throughput_mbps: float
    core_utilisation: float
    completion_rate: float

    @staticmethod
    def from_result(protocol: str, result: ExperimentResult) -> "ProtocolStatistics":
        """Extract the Section 3 quantities from one experiment result."""
        metrics = result.metrics
        fct = metrics.short_flow_fct_summary()
        fct_values = metrics.short_flow_fct_ms()
        within_100 = (
            sum(1 for value in fct_values if value <= 100.0) / len(fct_values)
            if fct_values
            else 0.0
        )
        return ProtocolStatistics(
            protocol=protocol,
            mean_fct_ms=fct.mean,
            std_fct_ms=fct.std,
            p99_fct_ms=fct.p99,
            fraction_within_100ms=within_100,
            rto_incidence=metrics.rto_incidence(),
            core_loss_rate=metrics.loss_rate("core"),
            aggregation_loss_rate=metrics.loss_rate("aggregation"),
            edge_loss_rate=metrics.loss_rate("edge"),
            long_flow_throughput_mbps=metrics.mean_long_flow_throughput_bps() / 1e6,
            core_utilisation=metrics.core_utilisation(),
            completion_rate=metrics.short_flow_completion_rate(),
        )

    def as_dict(self) -> Dict[str, float]:
        """Numeric fields as a flat dictionary (for table rendering)."""
        return {
            "mean_fct_ms": self.mean_fct_ms,
            "std_fct_ms": self.std_fct_ms,
            "p99_fct_ms": self.p99_fct_ms,
            "within_100ms": self.fraction_within_100ms,
            "rto_incidence": self.rto_incidence,
            "core_loss": self.core_loss_rate,
            "agg_loss": self.aggregation_loss_rate,
            "edge_loss": self.edge_loss_rate,
            "long_tput_mbps": self.long_flow_throughput_mbps,
            "core_util": self.core_utilisation,
            "completion_rate": self.completion_rate,
        }


@dataclass
class Section3Comparison:
    """MPTCP vs MMPTCP on the same workload (same seed, same arrivals)."""

    mptcp: ProtocolStatistics
    mmptcp: ProtocolStatistics

    def mmptcp_wins_on_tail(self) -> bool:
        """The paper's headline: MMPTCP's FCT variability is far smaller."""
        return self.mmptcp.std_fct_ms <= self.mptcp.std_fct_ms

    def throughput_parity(self, tolerance: float = 0.25) -> bool:
        """Long-flow throughput should be roughly equal for the two protocols."""
        reference = max(self.mptcp.long_flow_throughput_mbps, 1e-9)
        delta = abs(self.mmptcp.long_flow_throughput_mbps - self.mptcp.long_flow_throughput_mbps)
        return delta / reference <= tolerance


def section3_statistics(
    base_config: ExperimentConfig, num_subflows: int = 8
) -> Section3Comparison:
    """Run the paired MPTCP / MMPTCP comparison of Section 3."""
    mptcp_result = run_experiment(base_config.with_protocol(PROTOCOL_MPTCP, num_subflows))
    mmptcp_result = run_experiment(base_config.with_protocol(PROTOCOL_MMPTCP, num_subflows))
    return Section3Comparison(
        mptcp=ProtocolStatistics.from_result("mptcp", mptcp_result),
        mmptcp=ProtocolStatistics.from_result("mmptcp", mmptcp_result),
    )
