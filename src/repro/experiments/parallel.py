"""Parallel experiment execution.

Every sweep in this repository — Figure 1's subflow series, the load and
incast sweeps, seed replications — is a list of *independent* simulation
points: each point is fully described by its :class:`ExperimentConfig`
(plus, for some studies, a deterministic workload-builder call), and no
point reads state written by another.  That independence is what
:class:`SweepRunner` exploits: it fans points out across a process pool and
merges the :class:`ExperimentResult`s back **ordered by point index, never
by completion order**, so the output of a sweep is bit-identical whether it
ran on 1 worker or 8.

Determinism contract
--------------------

* A point's randomness derives only from its config's ``seed`` (via the
  named streams of :mod:`repro.sim.randomness`); nothing reads global RNG
  state, so executing points in different processes cannot perturb them.
* Workloads that must be built per point travel as a *picklable recipe*
  (top-level callable + arguments on the :class:`RunSpec`), not as live
  objects, and the recipe itself is seeded from the config.
* Per-point replication seeds come from hash-derived spawn keys
  (:func:`repro.sim.randomness.spawn_seed`), so point ``i``'s seed does not
  depend on how many points exist or which worker runs it.

The only per-run field that legitimately differs between a serial and a
parallel execution is :attr:`ExperimentResult.wallclock_s` (real elapsed
time); every simulated quantity — per-flow records, switch counters,
summary metrics — is identical.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.obs.telemetry import make_recorder, telemetry_records
from repro.sim.randomness import spawn_seeds


@dataclass(frozen=True)
class RunSpec:
    """A picklable description of one independent simulation point.

    Attributes:
        index: position of the point in its sweep; results are merged in
            this order regardless of completion order.
        config: the full experiment description (frozen dataclass, picklable).
        workload_factory: optional **module-level** callable that builds the
            point's workload inside the worker process (module-level so it
            pickles by reference).  Called as ``factory(config, *args,
            **kwargs)`` — the spec's own config is always the first
            argument, so the config the workload is built for and the
            config the experiment runs cannot drift apart.  ``None`` means
            the runner builds the default short/long workload from the
            config.
        workload_args / workload_kwargs: extra arguments for
            ``workload_factory`` after the config.
        tag: free-form labels (e.g. the override dict or the sweep axes)
            carried through untouched so callers can re-associate results.
        probes: telemetry probe groups to record for this point (empty =
            probes off).  Observability-only: ``run_key_for_spec`` hashes
            the config and workload recipe, so probing never changes a
            store key.
        profile: attach the engine profiler and ship its diagnostics on
            the result (key-excluded, wall-clock-bearing).
    """

    index: int
    config: ExperimentConfig
    workload_factory: Optional[Callable[..., Any]] = None
    workload_args: Tuple[Any, ...] = ()
    workload_kwargs: Optional[Dict[str, Any]] = None
    tag: Optional[Dict[str, Any]] = None
    probes: Tuple[str, ...] = ()
    profile: bool = False


def execute_spec(spec: RunSpec) -> ExperimentResult:
    """Run one point.  Top-level so a process pool can pickle it.

    When the spec asks for probes the recorder is built *inside* the worker
    and its content travels back as rendered records
    (:attr:`ExperimentResult.telemetry`) — recorders themselves never cross
    the process boundary, so serial and pooled execution render identically.
    """
    workload = None
    if spec.workload_factory is not None:
        workload = spec.workload_factory(
            spec.config, *spec.workload_args, **(spec.workload_kwargs or {})
        )
    recorder = make_recorder(spec.probes)
    result = run_experiment(
        spec.config, workload=workload, probes=recorder, profile=spec.profile
    )
    if recorder is not None:
        result.telemetry = telemetry_records(
            recorder, label=f"run{spec.index}", diagnostics=result.diagnostics
        )
    elif spec.profile and result.diagnostics is not None:
        result.telemetry = [{"kind": "diagnostics", "diagnostics": result.diagnostics}]
    return result


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``--workers`` value: ``None``/``0`` means one per CPU."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def workers_argument_type(text: str) -> int:
    """``argparse`` type for ``--workers`` flags: validate at parse time.

    Shared by the CLI and the examples so a negative pool size is rejected
    with one clear message before any simulation work starts, instead of
    surfacing as a traceback from the process pool.
    """
    import argparse

    value = int(text)
    try:
        resolve_workers(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--workers must be >= 0 (1 = serial, 0 = one per CPU), got {value}"
        ) from None
    return value


class SweepRunner:
    """Executes a list of :class:`RunSpec`s, serially or on a process pool.

    ``workers=1`` (the default) runs every point in-process in index order —
    byte-for-byte the behaviour of the historical serial sweep loop.
    ``workers>1`` submits points to a :class:`ProcessPoolExecutor` and
    gathers results in submission (= index) order, so callers never observe
    completion order.  ``workers=None`` or ``0`` uses one worker per CPU.
    """

    def __init__(self, workers: Optional[int] = 1) -> None:
        self.workers = resolve_workers(workers)

    def run(
        self,
        specs: Sequence[RunSpec],
        progress: Optional[Callable[[RunSpec], None]] = None,
        on_result: Optional[Callable[[RunSpec, ExperimentResult], None]] = None,
    ) -> List[ExperimentResult]:
        """Execute ``specs`` and return results ordered by point index.

        ``progress`` is invoked once per point, in index order, when the
        point is dispatched (serial: immediately before it runs).

        ``on_result`` is invoked in the **main process**, once per point, in
        **completion order** — as soon as the point's result is available,
        not when the whole sweep is done.  This is the persistence hook the
        campaign store uses: a killed sweep has already delivered every
        finished point to ``on_result``, so completed work survives the
        interruption even though ``run`` never returned.  The returned list
        is index-ordered regardless.
        """
        ordered = sorted(specs, key=lambda spec: spec.index)
        if self.workers <= 1 or len(ordered) <= 1:
            results: List[ExperimentResult] = []
            for spec in ordered:
                if progress is not None:
                    progress(spec)
                result = execute_spec(spec)
                if on_result is not None:
                    on_result(spec, result)
                results.append(result)
            return results

        pool_size = min(self.workers, len(ordered))
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            futures = []
            for spec in ordered:
                futures.append(pool.submit(execute_spec, spec))
                if progress is not None:
                    progress(spec)
            if on_result is not None:
                # Deliver results as they complete so the callback fires at
                # the earliest possible moment, then merge by index below.
                by_future = {future: spec for future, spec in zip(futures, ordered)}
                pending = set(futures)
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        on_result(by_future[future], future.result())
            # Collecting in submission order *is* the deterministic merge:
            # future i holds point i however the pool interleaved the work.
            return [future.result() for future in futures]


def run_specs(
    specs: Sequence[RunSpec],
    workers: Optional[int] = 1,
    progress: Optional[Callable[[RunSpec], None]] = None,
    on_result: Optional[Callable[[RunSpec, ExperimentResult], None]] = None,
) -> List[ExperimentResult]:
    """Convenience wrapper: ``SweepRunner(workers).run(specs, ...)``."""
    return SweepRunner(workers).run(specs, progress=progress, on_result=on_result)


def specs_from_configs(
    configs: Sequence[ExperimentConfig],
    tags: Optional[Sequence[Optional[Dict[str, Any]]]] = None,
) -> List[RunSpec]:
    """One :class:`RunSpec` per config, indexed by position."""
    if tags is not None and len(tags) != len(configs):
        raise ValueError("tags must match configs one-to-one")
    return [
        RunSpec(index=index, config=config, tag=None if tags is None else tags[index])
        for index, config in enumerate(configs)
    ]


def seeded_replications(
    base_config: ExperimentConfig,
    count: int,
    *,
    root_seed: Optional[int] = None,
) -> List[ExperimentConfig]:
    """``count`` copies of ``base_config`` with independent derived seeds.

    Replication ``i`` gets ``spawn_seeds(root, count, "replication")[i]``
    where ``root`` defaults to the base config's own seed, so the seed list
    is a pure function of ``(root, i)``: stable under re-runs, under
    extending the replication count, and under any worker-count choice.
    """
    root = base_config.seed if root_seed is None else root_seed
    return [
        base_config.with_updates(seed=seed)
        for seed in spawn_seeds(root, count, "replication")
    ]
