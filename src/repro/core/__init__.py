"""MMPTCP — the paper's contribution: packet scatter, phase switching, reordering."""

from repro.core.mmptcp import (
    PHASE_MPTCP,
    PHASE_PACKET_SCATTER,
    MmptcpConnection,
    MmptcpReceiver,
    PacketScatterConnection,
)
from repro.core.packet_scatter import DEFAULT_SCATTER_PORT_RANGE, PacketScatterSubflow
from repro.core.phase_switching import (
    DEFAULT_VOLUME_THRESHOLD_BYTES,
    CongestionEventSwitching,
    DataVolumeSwitching,
    HybridSwitching,
    NeverSwitch,
    SwitchingPolicy,
)
from repro.core.reordering import (
    AdaptiveReorderingPolicy,
    StaticReorderingPolicy,
    TopologyInformedPolicy,
)

__all__ = [
    "PHASE_MPTCP",
    "PHASE_PACKET_SCATTER",
    "MmptcpConnection",
    "MmptcpReceiver",
    "PacketScatterConnection",
    "DEFAULT_SCATTER_PORT_RANGE",
    "PacketScatterSubflow",
    "DEFAULT_VOLUME_THRESHOLD_BYTES",
    "CongestionEventSwitching",
    "DataVolumeSwitching",
    "HybridSwitching",
    "NeverSwitch",
    "SwitchingPolicy",
    "AdaptiveReorderingPolicy",
    "StaticReorderingPolicy",
    "TopologyInformedPolicy",
]
