"""MMPTCP: the hybrid transport protocol the paper introduces.

An :class:`MmptcpConnection` is an MPTCP connection whose life begins in the
**packet-scatter phase**: one subflow, one congestion window, every data
packet stamped with a random source port so ECMP sprays it across all
available paths.  A :class:`~repro.core.phase_switching.SwitchingPolicy`
watches the volume of data handed to the network and/or congestion signals;
when it fires the connection **switches to the MPTCP phase**: it opens the
configured number of standard MPTCP subflows (coupled by LIA), stops
assigning new data to the scatter flow, and lets the scatter flow drain and
deactivate once its window empties — mirroring Section 2 of the paper.

Short flows are expected to finish before the switch ever happens, so they
enjoy the large single window and the burst tolerance of spraying; long
flows spend almost their whole life in MPTCP mode and lose nothing.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from repro.core.packet_scatter import DEFAULT_SCATTER_PORT_RANGE, PacketScatterSubflow
from repro.core.phase_switching import DataVolumeSwitching, SwitchingPolicy
from repro.core.reordering import TopologyInformedPolicy
from repro.net.host import Host
from repro.sim.engine import Simulator
from repro.sim.tracing import NULL_SINK, TraceSink
from repro.transport.base import TcpConfig
from repro.transport.mptcp import MptcpConnection, MptcpReceiver, MptcpSubflow
from repro.transport.path_manager import PathManager
from repro.transport.scheduler import SubflowScheduler
from repro.transport.tcp import TcpSender

#: Phase labels.
PHASE_PACKET_SCATTER = "packet_scatter"
PHASE_MPTCP = "mptcp"

#: The receiver side of MMPTCP is a standard MPTCP receiver: it already
#: reassembles per-subflow sequence spaces plus the connection-level data
#: stream, and it acknowledges towards each subflow's canonical port, which is
#: all the packet-scatter phase requires.
MmptcpReceiver = MptcpReceiver


class MmptcpConnection(MptcpConnection):
    """Sender side of an MMPTCP connection (packet scatter, then MPTCP)."""

    def __init__(
        self,
        simulator: Simulator,
        host: Host,
        destination: int,
        destination_port: int,
        total_bytes: int,
        num_subflows: int = 8,
        flow_id: int = 0,
        config: TcpConfig = TcpConfig(),
        switching_policy: Optional[SwitchingPolicy] = None,
        reordering_policy=None,
        path_count_hint: Optional[int] = None,
        scatter_port_range: Tuple[int, int] = DEFAULT_SCATTER_PORT_RANGE,
        rng: Optional[random.Random] = None,
        scheduler: Optional[SubflowScheduler] = None,
        path_manager: Optional[PathManager] = None,
        address_resolver: Optional[Callable[[int], int]] = None,
        on_complete: Optional[Callable[["MptcpConnection"], None]] = None,
        on_phase_switch: Optional[Callable[["MmptcpConnection"], None]] = None,
        trace: TraceSink = NULL_SINK,
    ) -> None:
        super().__init__(
            simulator,
            host,
            destination,
            destination_port,
            total_bytes,
            num_subflows=num_subflows,
            flow_id=flow_id,
            config=config,
            scheduler=scheduler,
            path_manager=path_manager,
            address_resolver=address_resolver,
            on_complete=on_complete,
            trace=trace,
            create_subflows=False,
        )
        self.switching_policy = (
            switching_policy if switching_policy is not None else DataVolumeSwitching()
        )
        self.on_phase_switch = on_phase_switch
        self._rng = rng if rng is not None else random.Random(flow_id)
        self._scatter_port_range = scatter_port_range

        if reordering_policy is None:
            # Default to the topology-informed threshold the paper proposes;
            # callers that know the real path diversity pass it via
            # ``path_count_hint`` (FatTree addressing makes this a local
            # computation at the sender).
            reordering_policy = TopologyInformedPolicy(
                path_count=path_count_hint if path_count_hint is not None else 8
            )
        self.reordering_policy = reordering_policy

        self.phase = PHASE_PACKET_SCATTER
        self.switch_time: Optional[float] = None
        self.switch_reason: Optional[str] = None
        self.bytes_in_scatter_phase = 0
        self.scatter_subflow = PacketScatterSubflow(
            self,
            subflow_id=0,
            rng=self._rng,
            port_range=scatter_port_range,
            reordering_policy=reordering_policy,
        )
        self.subflows.append(self.scatter_subflow)

    # ------------------------------------------------------------------
    # Phase machinery
    # ------------------------------------------------------------------

    @property
    def in_packet_scatter_phase(self) -> bool:
        """True while the connection is still in its initial phase."""
        return self.phase == PHASE_PACKET_SCATTER

    def allocate_chunk(self, subflow: MptcpSubflow) -> Optional[Tuple[int, int]]:
        """Serve data to subflows, excluding the scatter flow after the switch.

        The paper is explicit: once the switch happens, *no more packets are
        put in the initial PS flow*; it only drains (and retransmits) what it
        already carries.
        """
        if self.phase == PHASE_MPTCP and subflow is self.scatter_subflow:
            return None
        return super().allocate_chunk(subflow)

    def _has_data_for(self, subflow: MptcpSubflow) -> bool:
        """The deactivated scatter flow is no longer a scheduling candidate.

        Keeping it out of the candidate list matters for policy schedulers:
        a round-robin rotation (or an RTT ranking) must not keep offering
        turns to a subflow that :meth:`allocate_chunk` will always refuse.
        """
        if self.phase == PHASE_MPTCP and subflow is self.scatter_subflow:
            return False
        return super()._has_data_for(subflow)

    def _on_data_allocated(self, subflow: MptcpSubflow, dsn: int, size: int) -> None:
        if self.phase != PHASE_PACKET_SCATTER:
            return
        self.bytes_in_scatter_phase += size
        if self.switching_policy.should_switch_on_data(self.bytes_in_scatter_phase):
            self._switch_to_mptcp(reason="data_volume")

    def _subflow_congestion_event(self, subflow: TcpSender, kind: str) -> None:
        super()._subflow_congestion_event(subflow, kind)
        if (
            self.phase == PHASE_PACKET_SCATTER
            and subflow is self.scatter_subflow
            and self.switching_policy.should_switch_on_congestion(kind)
        ):
            self._switch_to_mptcp(reason=f"congestion:{kind}")

    def _on_peer_readdressed(self, new_address: int) -> None:
        """A migrated peer forces the MPTCP phase.

        The scatter flow's sprayed packets are bound (by handshake) to the
        old address, so it dies with the readdressing like any other subflow;
        re-establishing a *scatter* flow would re-spray into the same fabric
        the connection just lost, while regular MPTCP subflows towards the
        new address restore connectivity immediately.  The phase bookkeeping
        is set directly — :meth:`_switch_to_mptcp` would open subflows at
        stale ids towards the not-yet-updated address — and the base
        readdressing path then opens the replacement subflows.
        """
        if self.phase == PHASE_PACKET_SCATTER:
            self.phase = PHASE_MPTCP
            self.switch_time = self.simulator.now
            self.switch_reason = "peer_readdressed"
            if self.probes.enabled:
                self.probes.count("phase.switches")
                self.probes.event(
                    "phase.switch",
                    self.simulator.now,
                    flow_id=self.flow_id,
                    reason="peer_readdressed",
                    bytes_in_scatter=self.bytes_in_scatter_phase,
                )
            if self.trace.enabled:
                self.trace.emit(
                    self.simulator.now,
                    "phase_switch",
                    flow_id=self.flow_id,
                    reason="peer_readdressed",
                    bytes_in_scatter=self.bytes_in_scatter_phase,
                )
            super()._on_peer_readdressed(new_address)
            if self.on_phase_switch is not None:
                self.on_phase_switch(self)
            return
        super()._on_peer_readdressed(new_address)

    def _switch_to_mptcp(self, reason: str) -> None:
        if self.phase == PHASE_MPTCP:
            return
        self.phase = PHASE_MPTCP
        self.switch_time = self.simulator.now
        self.switch_reason = reason
        if self.probes.enabled:
            self.probes.count("phase.switches")
            self.probes.event(
                "phase.switch",
                self.simulator.now,
                flow_id=self.flow_id,
                reason=reason,
                bytes_in_scatter=self.bytes_in_scatter_phase,
            )
        if self.trace.enabled:
            self.trace.emit(
                self.simulator.now,
                "phase_switch",
                flow_id=self.flow_id,
                reason=reason,
                bytes_in_scatter=self.bytes_in_scatter_phase,
            )
        # Open the MPTCP subflows only if there is still data for them to
        # carry; a flow that is already fully allocated (e.g. a short flow
        # whose last bytes triggered the volume threshold) gains nothing from
        # extra handshakes.
        if not self.all_data_allocated:
            new_subflows = self._create_subflows(self.num_subflows, first_subflow_id=1)
            for subflow in new_subflows:
                subflow.start()
        if self.on_phase_switch is not None:
            self.on_phase_switch(self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def mptcp_subflows(self) -> List[MptcpSubflow]:
        """The subflows opened for the MPTCP phase (empty before the switch)."""
        return [subflow for subflow in self.subflows if subflow is not self.scatter_subflow]

    @property
    def scatter_drained(self) -> bool:
        """True when the scatter flow has nothing left in flight (deactivated)."""
        return self.scatter_subflow.flight_size() == 0


class PacketScatterConnection(MmptcpConnection):
    """A pure packet-scatter transport (MMPTCP that never switches).

    Not part of the paper's headline comparison but mentioned as prior work
    ([6] explores packet scatter at the switches); useful as an ablation
    baseline to separate the contribution of spraying from the contribution
    of the phase switch.
    """

    def __init__(self, *args, **kwargs) -> None:
        from repro.core.phase_switching import NeverSwitch

        kwargs["switching_policy"] = NeverSwitch()
        kwargs.setdefault("num_subflows", 1)
        super().__init__(*args, **kwargs)
