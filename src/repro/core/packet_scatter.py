"""The packet-scatter (PS) subflow.

During MMPTCP's first phase all data travels over a *single* TCP congestion
window, but every data packet is stamped with a fresh random source port.
Hash-based ECMP in the switches therefore sends consecutive packets down
different equal-cost paths — the spraying is initiated entirely at the end
host, with no switch modification, exactly as Section 2 of the paper
describes.  Acknowledgements still flow to the sender's canonical port (the
receiver learns it from the SYN), so the sender sees one coherent ACK
stream.

The benefits the paper claims follow directly:

* a short flow keeps one *large* window, so a lost packet can almost always
  be repaired by fast retransmit instead of a 200 ms timeout;
* the flow's packets never pile onto a single congested core path, so bursts
  are absorbed by many queues at once.

The cost is reordering, handled by the policies in
:mod:`repro.core.reordering`.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional, Tuple

from repro.net.packet import Packet
from repro.transport.cc.base import CongestionController, NewRenoController
from repro.transport.mptcp import MptcpSubflow

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.transport.mptcp import MptcpConnection

#: Source ports drawn for scattered packets.  The range only needs to be wide
#: enough that the ECMP hash decorrelates consecutive packets.
DEFAULT_SCATTER_PORT_RANGE: Tuple[int, int] = (32768, 65535)


class PacketScatterSubflow(MptcpSubflow):
    """Subflow 0 of an MMPTCP connection: single window, sprayed packets."""

    def __init__(
        self,
        connection: "MptcpConnection",
        subflow_id: int = 0,
        rng: Optional[random.Random] = None,
        port_range: Tuple[int, int] = DEFAULT_SCATTER_PORT_RANGE,
        reordering_policy=None,
        congestion_control: Optional[CongestionController] = None,
    ) -> None:
        low, high = port_range
        if low > high or low < 1 or high > 65535:
            raise ValueError(f"invalid scatter port range {port_range!r}")
        self._rng = rng if rng is not None else random.Random(0)
        self._port_range = port_range
        self.scattered_packets = 0
        super().__init__(
            connection,
            subflow_id,
            congestion_control=(
                congestion_control if congestion_control is not None else NewRenoController()
            ),
            reordering_policy=reordering_policy,
        )

    # ------------------------------------------------------------------

    def _data_source_port(self) -> int:
        """A fresh random source port for every data packet (the scatter)."""
        low, high = self._port_range
        return self._rng.randint(low, high)

    def _decorate_data_packet(self, packet: Packet) -> None:
        self.scattered_packets += 1

    @property
    def port_range(self) -> Tuple[int, int]:
        """The ephemeral port range the scatter draws from."""
        return self._port_range
