"""Phase-switching policies.

MMPTCP must decide *when* to abandon the packet-scatter phase and open its
MPTCP subflows.  Switching too early re-creates MPTCP's thin-window problem
for short flows; switching too late keeps long flows on a single congestion
window and sacrifices multi-path throughput.  Section 2 of the paper puts
forward two strategies, both implemented here together with a hybrid and a
"never switch" control used by the ablation benchmarks:

* **Data volume** — switch once a configured number of bytes has been handed
  to the network.  The paper's early evaluation found this does not hurt
  long flows because the freshly opened subflows grow to the access-link
  capacity within a few RTTs.
* **Congestion event** — switch the first time congestion is inferred (a
  fast retransmission or a retransmission timeout on the scatter flow).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.transport.cc.base import LOSS_FAST_RETRANSMIT, LOSS_TIMEOUT

#: A volume threshold just above the canonical 70 KB short-flow size, so that
#: short flows finish inside the packet-scatter phase while long flows switch
#: to MPTCP almost immediately (in relative terms).
DEFAULT_VOLUME_THRESHOLD_BYTES = 100 * 1400


class SwitchingPolicy:
    """Decides when an MMPTCP connection leaves the packet-scatter phase."""

    name = "base"

    def should_switch_on_data(self, bytes_handed_to_network: int) -> bool:
        """Consulted every time new data is allocated to the scatter flow."""
        return False

    def should_switch_on_congestion(self, kind: str) -> bool:
        """Consulted on every congestion event (``fast_retransmit`` or ``timeout``)."""
        return False

    def describe(self) -> str:
        """Human-readable parameterisation, used in experiment reports."""
        return self.name


@dataclass
class DataVolumeSwitching(SwitchingPolicy):
    """Switch after ``threshold_bytes`` have been allocated to the scatter flow."""

    threshold_bytes: int = DEFAULT_VOLUME_THRESHOLD_BYTES

    def __post_init__(self) -> None:
        if self.threshold_bytes <= 0:
            raise ValueError("threshold_bytes must be positive")
        self.name = "data_volume"

    def should_switch_on_data(self, bytes_handed_to_network: int) -> bool:
        return bytes_handed_to_network >= self.threshold_bytes

    def describe(self) -> str:
        return f"data_volume({self.threshold_bytes} B)"


@dataclass
class CongestionEventSwitching(SwitchingPolicy):
    """Switch at the first inferred congestion event on the scatter flow.

    Attributes:
        on_fast_retransmit: treat a fast retransmission as the trigger.
        on_timeout: treat a retransmission timeout as the trigger.
    """

    on_fast_retransmit: bool = True
    on_timeout: bool = True

    def __post_init__(self) -> None:
        if not (self.on_fast_retransmit or self.on_timeout):
            raise ValueError("at least one congestion trigger must be enabled")
        self.name = "congestion_event"

    def should_switch_on_congestion(self, kind: str) -> bool:
        if kind == LOSS_FAST_RETRANSMIT:
            return self.on_fast_retransmit
        if kind == LOSS_TIMEOUT:
            return self.on_timeout
        return False

    def describe(self) -> str:
        triggers = []
        if self.on_fast_retransmit:
            triggers.append("fast_retransmit")
        if self.on_timeout:
            triggers.append("timeout")
        return f"congestion_event({'|'.join(triggers)})"


@dataclass
class HybridSwitching(SwitchingPolicy):
    """Switch on whichever comes first: the volume threshold or congestion."""

    threshold_bytes: int = DEFAULT_VOLUME_THRESHOLD_BYTES

    def __post_init__(self) -> None:
        if self.threshold_bytes <= 0:
            raise ValueError("threshold_bytes must be positive")
        self.name = "hybrid"

    def should_switch_on_data(self, bytes_handed_to_network: int) -> bool:
        return bytes_handed_to_network >= self.threshold_bytes

    def should_switch_on_congestion(self, kind: str) -> bool:
        return True

    def describe(self) -> str:
        return f"hybrid({self.threshold_bytes} B or congestion)"


class NeverSwitch(SwitchingPolicy):
    """Remain in the packet-scatter phase forever (pure packet-scatter baseline)."""

    name = "never"

    def describe(self) -> str:
        return "never (pure packet scatter)"
