"""Reordering-tolerance policies for the packet-scatter phase.

Spraying consecutive packets of one congestion window over many ECMP paths
makes out-of-order arrival the common case, and a standard duplicate-ACK
threshold of three would constantly misinterpret that reordering as loss
(spurious fast retransmissions, halved windows).  Section 2 of the paper
sketches two remedies, both implemented here:

* **Topology-informed threshold** — derive the number of available paths
  between sender and receiver from the structured FatTree/VL2 address (or a
  central controller) and raise the duplicate-ACK threshold accordingly.
* **Adaptive (RR-TCP-like) threshold** — start from the standard threshold
  and grow it each time a fast retransmission turns out to have been
  spurious, the reactive scheme of Zhang et al. (ICNP 2003).

A static policy is also provided so experiments can quantify what goes wrong
without any mitigation (ablation B in DESIGN.md).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.transport.tcp import TcpSender


class StaticReorderingPolicy:
    """A fixed duplicate-ACK threshold (standard TCP uses three)."""

    name = "static"

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.threshold = threshold
        self.spurious_retransmits_seen = 0

    def current_threshold(self, sender: "TcpSender") -> int:
        """Return the configured, constant threshold."""
        return self.threshold

    def on_spurious_retransmit(self, sender: "TcpSender") -> None:
        """Record the event; a static policy does not react."""
        self.spurious_retransmits_seen += 1


class TopologyInformedPolicy:
    """Duplicate-ACK threshold sized from the number of equal-cost paths.

    With ``p`` parallel paths, up to ``p - 1`` later packets can overtake a
    given packet purely because of path diversity, so the threshold is set to
    the path count (clamped to ``[minimum, maximum]``).  The path count comes
    from FatTree's structured addressing
    (:meth:`repro.topology.fattree.FatTreeTopology.expected_path_count`) or —
    for topologies like VL2 — from a centralised component, exactly as the
    paper suggests.
    """

    name = "topology_informed"

    def __init__(self, path_count: int, minimum: int = 3, maximum: int = 64) -> None:
        if path_count < 1:
            raise ValueError("path_count must be at least 1")
        if minimum < 1 or maximum < minimum:
            raise ValueError("require 1 <= minimum <= maximum")
        self.path_count = path_count
        self.minimum = minimum
        self.maximum = maximum
        self.spurious_retransmits_seen = 0

    def current_threshold(self, sender: "TcpSender") -> int:
        """Threshold = clamp(path count, minimum, maximum)."""
        return max(self.minimum, min(self.path_count, self.maximum))

    def on_spurious_retransmit(self, sender: "TcpSender") -> None:
        """Record the event; the topology-derived value is not adjusted."""
        self.spurious_retransmits_seen += 1


class AdaptiveReorderingPolicy:
    """RR-TCP-style reactive threshold adjustment.

    Every spurious fast retransmission raises the threshold by ``increment``;
    the threshold optionally decays back towards ``initial`` after
    ``decay_interval`` seconds without new evidence of reordering, so a
    transient burst of reordering does not permanently blunt loss detection.
    """

    name = "adaptive"

    def __init__(
        self,
        initial: int = 3,
        increment: int = 2,
        maximum: int = 64,
        decay_interval: Optional[float] = None,
    ) -> None:
        if initial < 1:
            raise ValueError("initial threshold must be at least 1")
        if increment < 1:
            raise ValueError("increment must be at least 1")
        if maximum < initial:
            raise ValueError("maximum must be >= initial")
        if decay_interval is not None and decay_interval <= 0:
            raise ValueError("decay_interval must be positive when given")
        self.initial = initial
        self.increment = increment
        self.maximum = maximum
        self.decay_interval = decay_interval
        self.threshold = initial
        self.spurious_retransmits_seen = 0
        self._last_adjustment_time: Optional[float] = None

    def current_threshold(self, sender: "TcpSender") -> int:
        """Current threshold, after applying any pending time-based decay."""
        if (
            self.decay_interval is not None
            and self._last_adjustment_time is not None
            and self.threshold > self.initial
        ):
            elapsed = sender.simulator.now - self._last_adjustment_time
            steps = int(elapsed / self.decay_interval)
            if steps > 0:
                self.threshold = max(self.initial, self.threshold - steps)
                self._last_adjustment_time = sender.simulator.now
        return self.threshold

    def on_spurious_retransmit(self, sender: "TcpSender") -> None:
        """Raise the threshold — the last fast retransmit was unnecessary."""
        self.spurious_retransmits_seen += 1
        self.threshold = min(self.maximum, self.threshold + self.increment)
        self._last_adjustment_time = sender.simulator.now
