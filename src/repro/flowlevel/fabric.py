"""Fluid view of a packet topology: directed link capacities and paths.

The flow-level tier reuses the packet tier's topology construction wholesale
(:func:`repro.experiments.runner.build_topology`), so both fidelity tiers see
the *same* fabric: same node names, same link rates and delays, same
connectivity graph.  :class:`FluidFabric` then projects that fabric down to
what a bandwidth-sharing model needs — a capacity per directed link, the
propagation delay along a path, and the set of equal-cost shortest paths
between two hosts — with none of the per-packet machinery (queues, packet
pool, per-interface timers) ever touched.

Faults: :class:`FluidFaultApplier` consumes the same
:class:`~repro.net.faults.FaultEvent` schedules as the packet tier's
:class:`~repro.net.faults.FaultInjector` and mirrors its semantics for the
link verbs — ``link_down`` zeroes both directions' capacity, ``degrade``
multiplies the *original* rate keyed by the sorted name pair, ``restore``
undoes it, ``drain_link`` expands through the shared
:func:`~repro.net.faults.expand_fault_event` staircase.  ``migrate_host``
needs per-connection re-establishment the fluid model cannot express, so it
is rejected up front with a clear error.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import networkx as nx

from repro.net.faults import (
    DEGRADE,
    LINK_DOWN,
    LINK_UP,
    MIGRATE_HOST,
    RESTORE,
    FaultEvent,
    expand_fault_event,
)
from repro.sim.engine import Simulator
from repro.sim.tracing import NULL_SINK, TraceSink
from repro.topology.base import Topology

#: A directed link, named by (tail node, head node).
Link = Tuple[str, str]
#: A path as the tuple of directed links it crosses.
LinkPath = Tuple[Link, ...]


class FluidFabric:
    """Directed-link capacity/delay view of a built :class:`Topology`."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.graph = topology.graph
        #: Administrative state and nominal rate per directed link.  The
        #: effective capacity handed to the solver is ``rate if up else 0``.
        self.rate_bps: Dict[Link, float] = {}
        self.up: Dict[Link, bool] = {}
        self.delay_s: Dict[Link, float] = {}
        #: Rate at construction time, the baseline ``degrade`` multiplies.
        self.original_rate_bps: Dict[Link, float] = {}
        #: Layer attribution for utilisation metrics: a directed link belongs
        #: to its *tail* node, mirroring how the packet tier's monitor sums
        #: per-interface busy time over each switch layer's interfaces.
        self.layer_of: Dict[Link, str] = {}
        for name_a, name_b in sorted(topology.graph.edges()):
            iface_ab, iface_ba = topology.interfaces_between(name_a, name_b)
            for tail, head, iface in (
                (name_a, name_b, iface_ab),
                (name_b, name_a, iface_ba),
            ):
                link = (tail, head)
                self.rate_bps[link] = iface.rate_bps
                self.up[link] = iface.up
                self.delay_s[link] = iface.delay_s
                self.original_rate_bps[link] = iface.rate_bps
                node_attrs = topology.graph.nodes[tail]
                if node_attrs.get("kind") == "switch":
                    self.layer_of[link] = node_attrs.get("layer", "")
                else:
                    self.layer_of[link] = "host"
        self._path_cache: Dict[Tuple[str, str], List[LinkPath]] = {}

    # ------------------------------------------------------------------
    # Capacities
    # ------------------------------------------------------------------

    def capacity(self, link: Link) -> float:
        """Effective capacity of one directed link (0 while it is down)."""
        return self.rate_bps[link] if self.up[link] else 0.0

    def capacities(self) -> Dict[Link, float]:
        """Effective capacity of every directed link (solver input)."""
        return {link: self.rate_bps[link] if self.up[link] else 0.0
                for link in self.rate_bps}

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def paths_between(self, source: str, destination: str) -> List[LinkPath]:
        """Every equal-cost shortest path, as directed link tuples, sorted.

        Paths are computed on the *construction-time* graph and cached per
        (source, destination) pair: the fluid tier models a link failure as
        zero capacity (stalling the subflows crossing it) rather than as an
        ECMP re-route.  This is a documented approximation — see the
        README's fidelity-tier section.
        """
        key = (source, destination)
        cached = self._path_cache.get(key)
        if cached is None:
            node_paths = sorted(nx.all_shortest_paths(self.graph, source, destination))
            cached = [
                tuple((path[i], path[i + 1]) for i in range(len(path) - 1))
                for path in node_paths
            ]
            if not cached:  # pragma: no cover - connected fabrics only
                raise ValueError(f"no path between {source!r} and {destination!r}")
            self._path_cache[key] = cached
        return cached

    def path_rtt_s(self, path: LinkPath, mss_bytes: int) -> float:
        """Estimated round-trip time along ``path``.

        Propagation both ways plus one store-and-forward serialisation of a
        full data segment per forward hop (ACKs are treated as free).  Used
        only for the connection-startup latency correction, never for the
        bandwidth-sharing itself.
        """
        propagation = sum(self.delay_s[link] for link in path)
        serialisation = sum(
            (mss_bytes * 8.0) / self.original_rate_bps[link] for link in path
        )
        return 2.0 * propagation + serialisation


class FluidFaultApplier:
    """Arms a packet-tier fault schedule against a :class:`FluidFabric`."""

    def __init__(
        self,
        simulator: Simulator,
        fabric: FluidFabric,
        schedule: Tuple[FaultEvent, ...],
        on_change: Callable[[], None],
        trace: TraceSink = NULL_SINK,
    ) -> None:
        self.simulator = simulator
        self.fabric = fabric
        self.schedule = tuple(schedule)
        self.on_change = on_change
        self.trace = trace
        self.applied_events = 0
        # Original (pre-degrade) rates per sorted name pair, exactly like the
        # packet tier's injector, so degrade factors never compound.
        self._original_rates: Dict[Tuple[str, str], Tuple[float, float]] = {}
        for event in self.schedule:
            self._validate(event)

    def _validate(self, event: FaultEvent) -> None:
        if event.kind == MIGRATE_HOST:
            raise ValueError(
                "migrate_host faults require packet fidelity: the fluid tier "
                "has no per-connection state to re-establish after a re-homing "
                "(run this scenario with fidelity='packet')"
            )
        if (event.node_a, event.node_b) not in self.fabric.rate_bps:
            raise ValueError(f"no link between {event.node_a!r} and {event.node_b!r}")

    def arm(self) -> None:
        """Schedule every (expanded) fault step on the simulator."""
        for event in self.schedule:
            for step in expand_fault_event(event):
                self.simulator.schedule_at(step.time_s, self._apply, step)

    # ------------------------------------------------------------------

    def _oriented(self, event: FaultEvent) -> Tuple[Tuple[str, str], Link, Link]:
        """Canonical (sorted-pair key, forward link, reverse link) triple."""
        if event.node_a <= event.node_b:
            key = (event.node_a, event.node_b)
        else:
            key = (event.node_b, event.node_a)
        return key, (key[0], key[1]), (key[1], key[0])

    def _apply(self, event: FaultEvent) -> None:
        fabric = self.fabric
        key, link_ab, link_ba = self._oriented(event)
        if event.kind == LINK_DOWN:
            fabric.up[link_ab] = False
            fabric.up[link_ba] = False
        elif event.kind == LINK_UP:
            fabric.up[link_ab] = True
            fabric.up[link_ba] = True
        elif event.kind == DEGRADE:
            if key not in self._original_rates:
                self._original_rates[key] = (
                    fabric.rate_bps[link_ab],
                    fabric.rate_bps[link_ba],
                )
            original_ab, original_ba = self._original_rates[key]
            fabric.rate_bps[link_ab] = original_ab * event.factor
            fabric.rate_bps[link_ba] = original_ba * event.factor
        else:  # RESTORE — without a matching DEGRADE this is an explicit no-op.
            assert event.kind == RESTORE
            if key in self._original_rates:
                original_ab, original_ba = self._original_rates.pop(key)
                fabric.rate_bps[link_ab] = original_ab
                fabric.rate_bps[link_ba] = original_ba
        self.applied_events += 1
        if self.trace.enabled:
            self.trace.emit(
                self.simulator.now,
                event.kind,
                link=f"{event.node_a}<->{event.node_b}",
                factor=event.factor,
            )
        self.on_change()
