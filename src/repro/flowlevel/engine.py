"""Flow-level (fluid) experiment engine.

Where the packet tier simulates every segment, ACK and queue occupancy, this
tier models each transfer as a bandwidth-sharing connection over its path(s):
the weighted max-min solver (:mod:`repro.sim.fluid`) assigns every active
subflow a rate, and rates only change on *events* — a flow arriving, a flow
completing, or a fault altering link capacity.  Between events each flow
drains at its assigned rate, so a flow costs a handful of simulator events
instead of thousands, which is what buys the 100× flow-count headroom.

The tier plugs into everything the packet tier already defined:

* the same :class:`~repro.sim.engine.Simulator` event core and timer wheel
  (completion deadlines are re-armable timers; same-time arrivals coalesce
  into a single rate recomputation),
* the same topology construction, fault schedules and seed streams,
* the same :class:`~repro.metrics.collector.ExperimentMetrics` /
  :class:`~repro.metrics.records.FlowRecord` surface, so reports, stores and
  campaign caching work unchanged.

Documented approximations (validated against the packet engine in
``tests/test_flowlevel.py``; tolerances in the README's fidelity section):

* **Multipath coupling** — an MPTCP flow with ``k`` usable subflow paths is
  ``k`` max-min participants of weight ``1/k`` each, so the whole flow
  weighs like one TCP flow at a shared bottleneck (the goal of coupled
  congestion control) while still filling disjoint paths.  MMPTCP and
  packet-scatter spread weight over *every* equal-cost path, modelling
  their scatter phase.
* **Startup latency** — a per-flow additive correction (handshake RTT,
  slow-start ramp deficit against the path's line rate, last-byte delivery)
  stands in for connection establishment and window growth.
* **Failures stall, they do not re-route** — a subflow crossing a dead link
  holds rate zero until the link returns; multipath siblings keep going.
  The packet tier's ECMP re-convergence has no fluid equivalent, so
  fault-heavy scenarios are where the tiers diverge most.
* **No losses** — fluid links never drop; loss-rate and RTO columns are
  structurally zero at this fidelity.
"""

from __future__ import annotations

import time as _wallclock
from typing import Dict, List, Optional, Tuple

from repro.experiments.config import ExperimentConfig
from repro.metrics.collector import ExperimentMetrics
from repro.metrics.records import FlowRecord
from repro.net.monitor import LayerLossStats, NetworkSnapshot
from repro.obs.profiler import EngineProfiler, profile_diagnostics
from repro.obs.telemetry import NULL_PROBES, TeeSink, TelemetryProbes, TelemetryRecorder
from repro.sim.engine import Simulator
from repro.sim.fluid import max_min_rates
from repro.sim.randomness import RandomStreams
from repro.sim.tracing import NULL_SINK, TraceSink
from repro.traffic.flowspec import (
    PROTOCOL_MMPTCP,
    PROTOCOL_MPTCP,
    PROTOCOL_PACKET_SCATTER,
    FlowSpec,
)
from repro.traffic.workloads import Workload

from repro.flowlevel.fabric import FluidFabric, FluidFaultApplier, Link, LinkPath


class _FluidFlow:
    """Live state of one transfer inside the fluid engine."""

    __slots__ = (
        "spec",
        "subflow_paths",
        "weight",
        "overhead_s",
        "remaining_bits",
        "rate_bps",
        "subflow_rates",
        "active",
        "started",
        "completed_at",
        "timer",
    )

    def __init__(self, spec: FlowSpec, subflow_paths: List[LinkPath], overhead_s: float):
        self.spec = spec
        self.subflow_paths = subflow_paths
        #: Per-subflow weight; the flow's total max-min weight is always 1.0.
        self.weight = 1.0 / len(subflow_paths)
        self.overhead_s = overhead_s
        self.remaining_bits = spec.size_bytes * 8.0
        self.rate_bps = 0.0
        self.subflow_rates: List[float] = [0.0] * len(subflow_paths)
        self.active = False
        self.started = False
        self.completed_at: Optional[float] = None
        self.timer = None


class FlowLevelEngine:
    """Bandwidth-sharing execution of one experiment's workload."""

    def __init__(
        self,
        config: ExperimentConfig,
        fabric: FluidFabric,
        workload: Workload,
        streams: RandomStreams,
        trace: TraceSink = NULL_SINK,
        probes: TelemetryProbes = NULL_PROBES,
    ) -> None:
        self.config = config
        self.fabric = fabric
        self.simulator = fabric.topology.simulator
        self.trace = trace
        self.probes = probes
        rng = streams.stream("flowlevel")
        self.flows: List[_FluidFlow] = []
        for spec in workload.flows:
            paths = self._subflow_paths(spec, rng)
            overhead = self._startup_overhead_s(spec, paths[0])
            self.flows.append(_FluidFlow(spec, paths, overhead))
        self._active: Dict[int, _FluidFlow] = {}
        self._last_update = 0.0
        self._recompute_pending = False
        self._recomputes = 0
        #: Integral of bits carried per directed link (utilisation metrics).
        self._carried_bits: Dict[Link, float] = {}
        self.fault_applier: Optional[FluidFaultApplier] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _subflow_paths(self, spec: FlowSpec, rng) -> List[LinkPath]:
        """The equal-cost paths this flow's subflows occupy.

        Single-path transports use one path; MPTCP uses up to
        ``num_subflows`` *distinct* paths; MMPTCP / packet-scatter spread
        over every equal-cost path (their scatter phase).  A seeded offset
        rotates which paths a flow lands on, standing in for ECMP hashing.
        """
        paths = self.fabric.paths_between(spec.source, spec.destination)
        protocol = spec.protocol
        if protocol in (PROTOCOL_MMPTCP, PROTOCOL_PACKET_SCATTER):
            count = len(paths)
        elif protocol == PROTOCOL_MPTCP:
            count = min(spec.num_subflows, len(paths))
        else:
            count = 1
        offset = rng.randrange(len(paths))
        return [paths[(offset + index) % len(paths)] for index in range(count)]

    def _startup_overhead_s(self, spec: FlowSpec, path: LinkPath) -> float:
        """Additive latency correction for connection startup.

        One RTT of handshake, the slow-start ramp's deficit against sending
        at the path's line rate (doubling from the initial window until the
        window covers the bandwidth-delay product or the flow runs out of
        bytes), and half an RTT for last-byte delivery.
        """
        config = self.config
        rtt = self.fabric.path_rtt_s(path, config.mss_bytes)
        bottleneck = min(self.fabric.original_rate_bps[link] for link in path)
        size_bits = spec.size_bytes * 8.0
        mss_bits = config.mss_bytes * 8.0
        cwnd_bits = config.initial_cwnd_segments * mss_bits
        window_full_bits = bottleneck * rtt
        sent_bits = 0.0
        rounds = 0
        while cwnd_bits < window_full_bits and sent_bits + cwnd_bits < size_bits:
            sent_bits += cwnd_bits
            cwnd_bits *= 2.0
            rounds += 1
        ramp_deficit = max(0.0, rounds * rtt - sent_bits / bottleneck)
        return 1.5 * rtt + ramp_deficit

    # ------------------------------------------------------------------
    # Event wiring
    # ------------------------------------------------------------------

    def arm_faults(self, schedule) -> None:
        """Validate and schedule the config's fault events on the fabric."""
        self.fault_applier = FluidFaultApplier(
            self.simulator, self.fabric, schedule, self._mark_dirty, trace=self.trace
        )
        self.fault_applier.arm()

    def start(self) -> None:
        """Schedule every flow's activation (start time plus startup latency)."""
        for flow in self.flows:
            self.simulator.schedule_at(
                flow.spec.start_time + flow.overhead_s, self._on_arrival, flow
            )

    def _on_arrival(self, flow: _FluidFlow) -> None:
        flow.started = True
        flow.active = True
        flow.timer = self.simulator.timer(self._on_complete)
        self._active[flow.spec.flow_id] = flow
        self._mark_dirty()

    def _on_complete(self, flow: _FluidFlow) -> None:
        now = self.simulator.now
        self._drain_to(now)
        flow.remaining_bits = 0.0
        flow.completed_at = now
        flow.active = False
        flow.rate_bps = 0.0
        del self._active[flow.spec.flow_id]
        self._mark_dirty()

    def _mark_dirty(self) -> None:
        """Coalesce same-instant arrivals/departures into one recompute.

        The recompute event draws a fresh sequence number, so it runs after
        every event already queued for the current instant: a synchronized
        incast batch of N arrivals costs one allocation, not N.
        """
        if not self._recompute_pending:
            self._recompute_pending = True
            self.simulator.schedule(0.0, self._run_recompute)

    def _run_recompute(self) -> None:
        self._recompute_pending = False
        self._recompute()

    # ------------------------------------------------------------------
    # Rate allocation
    # ------------------------------------------------------------------

    def _drain_to(self, now: float) -> None:
        """Advance every active flow by its current rate up to ``now``."""
        dt = now - self._last_update
        if dt > 0.0:
            carried = self._carried_bits
            for flow_id in sorted(self._active):
                flow = self._active[flow_id]
                if flow.rate_bps > 0.0:
                    flow.remaining_bits = max(0.0, flow.remaining_bits - flow.rate_bps * dt)
                for path, rate in zip(flow.subflow_paths, flow.subflow_rates):
                    if rate > 0.0:
                        bits = rate * dt
                        for link in path:
                            carried[link] = carried.get(link, 0.0) + bits
        self._last_update = now

    def _recompute(self) -> None:
        """Re-solve the max-min allocation and re-arm completion deadlines."""
        now = self.simulator.now
        self._drain_to(now)
        self._recomputes += 1
        probes = self.probes
        if probes.enabled:
            probes.count("fluid.recomputes")
            probes.sample("fluid.active_flows", now, len(self._active))
        paths: Dict[Tuple[int, int], LinkPath] = {}
        weights: Dict[Tuple[int, int], float] = {}
        for flow_id in sorted(self._active):
            flow = self._active[flow_id]
            for index, path in enumerate(flow.subflow_paths):
                key = (flow_id, index)
                paths[key] = path
                weights[key] = flow.weight
        rates = max_min_rates(self.fabric.capacities(), paths, weights)
        for flow_id in sorted(self._active):
            flow = self._active[flow_id]
            total = 0.0
            for index in range(len(flow.subflow_paths)):
                rate = rates[(flow_id, index)]
                flow.subflow_rates[index] = rate
                total += rate
            flow.rate_bps = total
            if total > 0.0:
                flow.timer.arm(flow.remaining_bits / total, flow)
            else:
                # Stalled (every subflow crosses a dead link): no deadline
                # until a fault or departure frees capacity.
                flow.timer.cancel()

    # ------------------------------------------------------------------
    # Result extraction
    # ------------------------------------------------------------------

    def finalise(self, horizon_s: float) -> ExperimentMetrics:
        """Drain to the horizon and assemble the packet-compatible metrics."""
        if horizon_s > self._last_update:
            self._drain_to(horizon_s)
        metrics = ExperimentMetrics(duration_s=horizon_s)
        metrics.flows = [self._record_for(flow) for flow in self.flows]
        metrics.network = self._snapshot(horizon_s)
        return metrics

    def _record_for(self, flow: _FluidFlow) -> FlowRecord:
        spec = flow.spec
        record = FlowRecord(
            flow_id=spec.flow_id,
            protocol=spec.protocol,
            size_bytes=spec.size_bytes,
            is_long=spec.is_long,
            start_time=spec.start_time,
        )
        if flow.completed_at is not None:
            record.receiver_completion_time = flow.completed_at
            record.sender_completion_time = flow.completed_at
            record.bytes_received = spec.size_bytes
        else:
            delivered_bits = spec.size_bytes * 8.0 - flow.remaining_bits
            record.bytes_received = max(0, int(delivered_bits // 8))
        # The fluid model has no segments; report the packets an ideal
        # (loss-free, no-retransmit) sender would have emitted.
        mss = self.config.mss_bytes
        record.data_packets_sent = -(-record.bytes_received // mss) if flow.started else 0
        return record

    def _snapshot(self, horizon_s: float) -> NetworkSnapshot:
        """A loss-free :class:`NetworkSnapshot` from the rate integrals."""
        snapshot = NetworkSnapshot(duration_s=horizon_s)
        layer_links: Dict[str, List[Link]] = {}
        total_bits = 0.0
        for link in sorted(self.fabric.rate_bps):
            layer = self.fabric.layer_of[link]
            if layer != "host":
                snapshot.layer_loss.setdefault(layer, LayerLossStats(layer))
            layer_links.setdefault(layer, []).append(link)
            total_bits += self._carried_bits.get(link, 0.0)
        for layer in ("core", "edge"):
            links = layer_links.get(layer, [])
            if links and horizon_s > 0:
                utilisation = sum(
                    min(
                        1.0,
                        self._carried_bits.get(link, 0.0)
                        / (self.fabric.original_rate_bps[link] * horizon_s),
                    )
                    for link in links
                ) / len(links)
                if layer == "core":
                    snapshot.core_utilisation = utilisation
                else:
                    snapshot.edge_utilisation = utilisation
        snapshot.total_bytes_carried = int(total_bits // 8)
        return snapshot

    @property
    def recomputes(self) -> int:
        """Number of rate allocations solved (coalescing diagnostics)."""
        return self._recomputes


# ---------------------------------------------------------------------------
# Top-level entry point
# ---------------------------------------------------------------------------


def run_flow_experiment(
    config: ExperimentConfig,
    workload: Optional[Workload] = None,
    trace: TraceSink = NULL_SINK,
    probes: Optional[TelemetryRecorder] = None,
    profile: bool = False,
):
    """Run one experiment at flow-level fidelity; mirrors ``run_experiment``.

    Reuses the packet tier's topology and workload construction so the two
    tiers agree on the fabric and the flow population, then executes the
    fluid model instead of per-packet simulation.  Returns the same
    :class:`~repro.experiments.runner.ExperimentResult` shape.
    """
    # Imported here (not at module top) because the experiments runner
    # imports this module lazily for dispatch: a module-level cycle would
    # make import order load-bearing.
    from repro.experiments.runner import ExperimentResult, build_topology, build_workload

    # wallclock_s is a pure diagnostic: the store normalises it to 0.0 and no
    # metric derives from it, so the real-clock read cannot perturb results.
    # repro: allow[no-wallclock-or-global-random] -- diagnostic only
    wall_start = _wallclock.monotonic()
    if probes is not None:
        trace = TeeSink(trace, probes)
    simulator = Simulator()
    if profile:
        simulator.profiler = EngineProfiler()
    streams = RandomStreams(config.seed)
    topology = build_topology(config, simulator, trace)
    if workload is None:
        workload = build_workload(config, topology, streams)

    fabric = FluidFabric(topology)
    engine = FlowLevelEngine(
        config,
        fabric,
        workload,
        streams,
        trace=trace,
        probes=probes if probes is not None else NULL_PROBES,
    )
    if config.fault_schedule:
        engine.arm_faults(config.fault_schedule)
    engine.start()
    simulator.run(
        until=config.horizon_s,
        max_events=config.max_events,
        wallclock_limit=config.wallclock_limit_s,
    )
    metrics = engine.finalise(config.horizon_s)
    # repro: allow[no-wallclock-or-global-random] -- diagnostic only (above)
    wallclock_s = _wallclock.monotonic() - wall_start
    diagnostics = None
    if profile:
        diagnostics = profile_diagnostics(simulator.profiler, simulator, wallclock_s)
        diagnostics["fluid_recomputes"] = engine.recomputes
    return ExperimentResult(
        config=config,
        metrics=metrics,
        events_processed=simulator.events_processed,
        wallclock_s=wallclock_s,
        workload_size=len(workload.flows),
        diagnostics=diagnostics,
    )
