"""Flow-level (fluid bandwidth-sharing) fidelity tier.

Selected via ``ExperimentConfig.fidelity = "flow"``; see
:mod:`repro.flowlevel.engine` for the model and its documented
approximations, and :mod:`repro.sim.fluid` for the max-min solver.
"""

from repro.flowlevel.engine import FlowLevelEngine, run_flow_experiment
from repro.flowlevel.fabric import FluidFabric, FluidFaultApplier

__all__ = [
    "FlowLevelEngine",
    "FluidFabric",
    "FluidFaultApplier",
    "run_flow_experiment",
]
