"""Result export: CSV / JSON dumps and text CDF rendering.

The benchmark harness prints its tables to the console; this module writes
the same data to files so a reproduction run can be archived, diffed against
a previous run, or post-processed with external plotting tools.  Everything
uses only the standard library (``csv``/``json``) — no plotting dependency.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.metrics.collector import ExperimentMetrics
from repro.metrics.records import FlowRecord
from repro.metrics.stats import cdf_points

PathLike = Union[str, Path]

#: Column order used for per-flow CSV exports.
FLOW_RECORD_FIELDS = (
    "flow_id",
    "protocol",
    "size_bytes",
    "is_long",
    "start_time",
    "receiver_completion_time",
    "sender_completion_time",
    "completion_time_ms",
    "rto_events",
    "fast_retransmits",
    "retransmitted_packets",
    "spurious_retransmits",
    "data_packets_sent",
    "duplicate_acks",
    "reordering_events",
    "bytes_received",
    "phase_at_completion",
    "switch_time",
)


def flow_record_row(record: FlowRecord) -> Dict[str, object]:
    """One CSV row for a flow record (completion time pre-converted to ms)."""
    return {
        "flow_id": record.flow_id,
        "protocol": record.protocol,
        "size_bytes": record.size_bytes,
        "is_long": record.is_long,
        "start_time": record.start_time,
        "receiver_completion_time": record.receiver_completion_time,
        "sender_completion_time": record.sender_completion_time,
        "completion_time_ms": record.completion_time_ms,
        "rto_events": record.rto_events,
        "fast_retransmits": record.fast_retransmits,
        "retransmitted_packets": record.retransmitted_packets,
        "spurious_retransmits": record.spurious_retransmits,
        "data_packets_sent": record.data_packets_sent,
        "duplicate_acks": record.duplicate_acks,
        "reordering_events": record.reordering_events,
        "bytes_received": record.bytes_received,
        "phase_at_completion": record.phase_at_completion,
        "switch_time": record.switch_time,
    }


def write_flow_records_csv(records: Iterable[FlowRecord], path: PathLike) -> Path:
    """Write one CSV row per flow record and return the path written."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    with destination.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(FLOW_RECORD_FIELDS))
        writer.writeheader()
        for record in records:
            writer.writerow(flow_record_row(record))
    return destination


def dumps_deterministic(payload: object, indent: Optional[int] = 2) -> str:
    """The deterministic JSON text of ``payload``, trailing newline included.

    The repository-wide JSON emission policy, shared by metric exports,
    benchmark artifacts and the run store: keys sorted, ``allow_nan=False``
    (NaN/Infinity have no portable JSON form), floats rendered by CPython's
    shortest round-trip ``repr`` (a pure function of the IEEE-754 value,
    identical across platforms), and exactly one trailing newline.  Equal
    payloads therefore always serialise to equal bytes, which is what makes
    artifacts diffable and byte-comparable across runs and machines.
    """
    return json.dumps(payload, indent=indent, sort_keys=True, allow_nan=False) + "\n"


def write_json(payload: object, path: PathLike) -> Path:
    """Write ``payload`` with :func:`dumps_deterministic` and return the path."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(dumps_deterministic(payload))
    return destination


def write_summary_json(
    metrics: ExperimentMetrics, path: PathLike, extra: Optional[Dict[str, object]] = None
) -> Path:
    """Write the headline summary (plus optional provenance) as JSON."""
    payload: Dict[str, object] = dict(metrics.summary_dict())
    if extra:
        payload.update(extra)
    return write_json(payload, path)


def write_series_csv(
    rows: Sequence[Dict[str, object]], path: PathLike, fieldnames: Optional[Sequence[str]] = None
) -> Path:
    """Write an arbitrary list of homogeneous dictionaries as CSV."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        destination.write_text("")
        return destination
    names = list(fieldnames) if fieldnames is not None else list(rows[0].keys())
    with destination.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=names)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return destination


def write_cdf_csv(values: Sequence[float], path: PathLike) -> Path:
    """Write the empirical CDF of ``values`` as (value, fraction) rows."""
    rows = [
        {"value": value, "cumulative_fraction": fraction}
        for value, fraction in cdf_points(values)
    ]
    return write_series_csv(rows, path, fieldnames=["value", "cumulative_fraction"])


# ---------------------------------------------------------------------------
# Text CDF rendering (a stand-in for the paper's scatter/CDF plots)
# ---------------------------------------------------------------------------


def ascii_cdf(
    values: Sequence[float],
    width: int = 60,
    height: int = 12,
    label: str = "value",
) -> str:
    """Render the empirical CDF of ``values`` as a small ASCII chart.

    Useful for eyeballing the Figure 1(b)/(c) tails directly in a terminal
    without any plotting stack.  Returns an empty string for empty input.
    """
    if width < 10 or height < 4:
        raise ValueError("width must be >= 10 and height >= 4")
    points = cdf_points(values)
    if not points:
        return ""
    low = points[0][0]
    high = points[-1][0]
    span = max(high - low, 1e-12)
    grid = [[" "] * width for _ in range(height)]
    for value, fraction in points:
        column = int((value - low) / span * (width - 1))
        row = int((1.0 - fraction) * (height - 1))
        grid[row][column] = "*"
    lines = ["1.0 |" + "".join(grid[0])]
    for row in range(1, height - 1):
        lines.append("    |" + "".join(grid[row]))
    lines.append("0.0 |" + "".join(grid[height - 1]))
    lines.append("    +" + "-" * width)
    lines.append(f"     {label}: {low:.3g} .. {high:.3g}")
    return "\n".join(lines)


def cdf_comparison_rows(
    series: Dict[str, Sequence[float]], thresholds: Sequence[float]
) -> List[Dict[str, object]]:
    """For each named series, the fraction of samples at or below each threshold.

    This is the tabular equivalent of overlaying several CDFs on one plot —
    the form in which EXPERIMENTS.md records the Figure 1(b)/(c) comparison.
    """
    rows: List[Dict[str, object]] = []
    for name, values in series.items():
        row: Dict[str, object] = {"series": name, "samples": len(values)}
        total = max(len(values), 1)
        for threshold in thresholds:
            below = sum(1 for value in values if value <= threshold)
            row[f"<= {threshold:g}"] = below / total
        rows.append(row)
    return rows
