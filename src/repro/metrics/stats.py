"""Statistical summaries used by experiment reports.

Thin wrappers over numpy with the conventions the paper uses: flow
completion times are reported in milliseconds as mean plus standard
deviation, and the scatter plots of Figure 1(b)/(c) are summarised here by
percentiles and by the fraction of flows exceeding RTO-scale latencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-plus summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p90: float
    p99: float
    maximum: float

    @staticmethod
    def empty() -> "DistributionSummary":
        """Summary of an empty sample (all statistics zero)."""
        return DistributionSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


def summarize(values: Iterable[float]) -> DistributionSummary:
    """Compute a :class:`DistributionSummary` of ``values``."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return DistributionSummary.empty()
    return DistributionSummary(
        count=int(data.size),
        mean=float(np.mean(data)),
        std=float(np.std(data)),
        minimum=float(np.min(data)),
        p50=float(np.percentile(data, 50)),
        p90=float(np.percentile(data, 90)),
        p99=float(np.percentile(data, 99)),
        maximum=float(np.max(data)),
    )


def mean_ci95(values: Iterable[float]) -> Tuple[float, float]:
    """Sample mean and 95% confidence half-width of ``values``.

    The half-width is the normal-approximation interval ``1.96 · s / √n``
    with the *sample* standard deviation (ddof=1) — the convention campaign
    reports use for across-replication columns.  It is 0.0 for fewer than
    two values (no spread estimate), and the result is ``(0.0, 0.0)`` for an
    empty sample.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return 0.0, 0.0
    mean = float(np.mean(data))
    if data.size < 2:
        return mean, 0.0
    std = float(np.std(data, ddof=1))
    return mean, 1.96 * std / float(np.sqrt(data.size))


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` (0 for an empty sample)."""
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=float), q))


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) pairs suitable for plotting a CDF."""
    if not values:
        return []
    data = np.sort(np.asarray(values, dtype=float))
    n = data.size
    return [(float(value), (index + 1) / n) for index, value in enumerate(data)]


def fraction_above(values: Sequence[float], threshold: float) -> float:
    """Fraction of ``values`` strictly greater than ``threshold``."""
    if not values:
        return 0.0
    data = np.asarray(values, dtype=float)
    return float(np.count_nonzero(data > threshold) / data.size)


def jains_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index of a set of throughputs (1.0 = perfectly fair)."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return 0.0
    denominator = data.size * float(np.sum(data**2))
    if denominator == 0:
        return 0.0
    return float(np.sum(data)) ** 2 / denominator
