"""Plain-text report rendering.

The benchmark harnesses print the same rows/series the paper's figures and
prose contain; these helpers format them as aligned text tables so a run's
output can be eyeballed (and diffed) without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned, pipe-separated text table."""
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    def format_row(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[index]) for index, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "|-" + "-|-".join("-" * width for width in widths) + "-|"
    lines = [format_row(list(headers)), separator]
    lines.extend(format_row(row) for row in materialised)
    return "\n".join(lines)


def format_milliseconds(value: float) -> str:
    """Format a millisecond quantity with one decimal."""
    return f"{value:.1f} ms"


def format_rate(value: float) -> str:
    """Format a ratio as a percentage with two decimals."""
    return f"{100.0 * value:.2f}%"


def format_throughput_mbps(value_bps: float) -> str:
    """Format a bits-per-second value in Mbps."""
    return f"{value_bps / 1e6:.1f} Mbps"


def comparison_table(rows: Dict[str, Dict[str, float]], metrics: Sequence[str]) -> str:
    """Render a protocols × metrics comparison (used by the Section 3 bench)."""
    headers = ["protocol", *metrics]
    body = []
    for protocol, values in rows.items():
        body.append([protocol, *[f"{values.get(metric, 0.0):.3f}" for metric in metrics]])
    return render_table(headers, body)
