"""Experiment-level metrics aggregation.

:class:`ExperimentMetrics` joins per-flow records with the network-level
snapshot (per-layer loss rates, utilisation) and produces the quantities the
paper reports: short-flow FCT mean/std, the per-flow scatter of completion
times, RTO incidence, long-flow throughput and network utilisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.records import FlowRecord
from repro.metrics.stats import DistributionSummary, fraction_above, summarize
from repro.net.monitor import NetworkSnapshot


@dataclass
class ExperimentMetrics:
    """All measurements from one simulation run."""

    flows: List[FlowRecord] = field(default_factory=list)
    network: Optional[NetworkSnapshot] = None
    duration_s: float = 0.0

    # ------------------------------------------------------------------
    # Flow views
    # ------------------------------------------------------------------

    @property
    def short_flows(self) -> List[FlowRecord]:
        """Records of the latency-sensitive flows."""
        return [flow for flow in self.flows if not flow.is_long]

    @property
    def long_flows(self) -> List[FlowRecord]:
        """Records of the background flows."""
        return [flow for flow in self.flows if flow.is_long]

    @property
    def completed_short_flows(self) -> List[FlowRecord]:
        """Short flows that finished within the experiment horizon."""
        return [flow for flow in self.short_flows if flow.completed]

    # ------------------------------------------------------------------
    # Headline statistics (Section 3 of the paper)
    # ------------------------------------------------------------------

    def short_flow_fct_ms(self) -> List[float]:
        """Completion times (milliseconds) of all completed short flows."""
        return [
            flow.completion_time_ms
            for flow in self.completed_short_flows
            if flow.completion_time_ms is not None
        ]

    def short_flow_fct_summary(self) -> DistributionSummary:
        """Mean/std/percentiles of short-flow completion time in milliseconds."""
        return summarize(self.short_flow_fct_ms())

    def short_flow_completion_rate(self) -> float:
        """Fraction of short flows that completed before the horizon."""
        short = self.short_flows
        if not short:
            return 0.0
        return len(self.completed_short_flows) / len(short)

    def rto_incidence(self) -> float:
        """Fraction of short flows that experienced at least one RTO."""
        short = self.short_flows
        if not short:
            return 0.0
        return sum(1 for flow in short if flow.experienced_rto) / len(short)

    def tail_fraction(self, threshold_ms: float = 200.0) -> float:
        """Fraction of completed short flows slower than ``threshold_ms``."""
        return fraction_above(self.short_flow_fct_ms(), threshold_ms)

    def long_flow_throughputs_bps(self) -> List[float]:
        """Goodput of each long flow over the experiment horizon."""
        return [flow.throughput_bps(self.duration_s) for flow in self.long_flows]

    def mean_long_flow_throughput_bps(self) -> float:
        """Average long-flow goodput in bits per second."""
        throughputs = self.long_flow_throughputs_bps()
        if not throughputs:
            return 0.0
        return sum(throughputs) / len(throughputs)

    def loss_rate(self, layer: str) -> float:
        """Packet loss rate at one switch layer (``core``/``aggregation``/``edge``)."""
        if self.network is None:
            return 0.0
        return self.network.loss_rate(layer)

    @property
    def fault_drops(self) -> int:
        """Packets lost at down interfaces during the run.

        These losses bypass the queue counters entirely, so without this
        field the loss columns silently undercount under link failures.
        """
        return self.network.total_fault_drops if self.network is not None else 0

    def core_utilisation(self) -> float:
        """Average utilisation of core-switch links over the experiment."""
        return self.network.core_utilisation if self.network is not None else 0.0

    # ------------------------------------------------------------------
    # Scatter series (Figure 1(b) / 1(c))
    # ------------------------------------------------------------------

    def completion_scatter(self) -> List[Dict[str, float]]:
        """Per-flow points (flow id vs completion time in seconds) for the scatter plots."""
        points = []
        for flow in self.completed_short_flows:
            completion = flow.completion_time
            if completion is None:
                continue
            points.append({"flow_id": float(flow.flow_id), "completion_time_s": completion})
        return points

    #: The keys of :meth:`summary_dict`, in emission order.  This order is a
    #: **public contract**: CSV/table exports and store artifacts derive
    #: their column/key order from dict insertion order, so reordering these
    #: changes exported bytes.  Extend at the end only.
    SUMMARY_FIELDS = (
        "short_flows",
        "short_flows_completed",
        "short_fct_mean_ms",
        "short_fct_std_ms",
        "short_fct_p99_ms",
        "short_completion_rate",
        "rto_incidence",
        "tail_over_200ms",
        "long_flow_throughput_mbps",
        "fault_drops",
        "core_loss_rate",
        "aggregation_loss_rate",
        "edge_loss_rate",
        "core_utilisation",
    )

    def summary_dict(self) -> Dict[str, float]:
        """A flat dictionary of the headline numbers (useful for reports/tests).

        Key order is insertion-stable and equals :data:`SUMMARY_FIELDS`;
        callers may rely on it for deterministic, byte-comparable exports.
        """
        fct = self.short_flow_fct_summary()
        return {
            "short_flows": float(len(self.short_flows)),
            "short_flows_completed": float(len(self.completed_short_flows)),
            "short_fct_mean_ms": fct.mean,
            "short_fct_std_ms": fct.std,
            "short_fct_p99_ms": fct.p99,
            "short_completion_rate": self.short_flow_completion_rate(),
            "rto_incidence": self.rto_incidence(),
            "tail_over_200ms": self.tail_fraction(200.0),
            "long_flow_throughput_mbps": self.mean_long_flow_throughput_bps() / 1e6,
            "fault_drops": float(self.fault_drops),
            "core_loss_rate": self.loss_rate("core"),
            "aggregation_loss_rate": self.loss_rate("aggregation"),
            "edge_loss_rate": self.loss_rate("edge"),
            "core_utilisation": self.core_utilisation(),
        }
