"""Queue-occupancy time series.

The paper's introduction blames short-flow deadline misses on "queue
build-ups, buffer pressure and TCP Incast" in shared-memory switches.  The
aggregate loss counters in :mod:`repro.net.monitor` show the end result;
this module records the *trajectory*: a sampler that walks every switch
queue at a fixed simulated-time interval and stores (time, switch, port,
occupancy) samples, so experiments can show how packet scatter drains a
burst across many shallow queues while a single-path transport piles it
onto one deep one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.switch import Switch
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class QueueSample:
    """Occupancy of one switch output queue at one instant."""

    time_s: float
    switch: str
    layer: str
    interface_index: int
    queued_packets: int
    queued_bytes: int


@dataclass
class OccupancySummary:
    """Aggregate occupancy statistics for one switch layer."""

    layer: str
    samples: int = 0
    peak_packets: int = 0
    peak_bytes: int = 0
    mean_packets: float = 0.0


class QueueOccupancySampler:
    """Periodically samples every output queue of the given switches.

    Usage::

        sampler = QueueOccupancySampler(simulator, topology.switches, interval_s=0.001)
        sampler.start()
        ... run the simulation ...
        print(sampler.layer_summary("edge").peak_packets)

    Sampling stops automatically when the simulator runs out of events (no
    further samples are scheduled once :meth:`stop` has been called or the
    optional ``until`` horizon has passed).
    """

    def __init__(
        self,
        simulator: Simulator,
        switches: Sequence[Switch],
        interval_s: float = 1e-3,
        until: Optional[float] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if until is not None and until < 0:
            raise ValueError("until cannot be negative")
        self.simulator = simulator
        self.switches = list(switches)
        self.interval_s = interval_s
        self.until = until
        self.samples: List[QueueSample] = []
        self._running = False

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Take the first sample now and keep sampling every ``interval_s``."""
        if self._running:
            return
        self._running = True
        self._sample_and_reschedule()

    def stop(self) -> None:
        """Stop scheduling further samples (already-collected samples remain)."""
        self._running = False

    def _sample_and_reschedule(self) -> None:
        if not self._running:
            return
        now = self.simulator.now
        if self.until is not None and now > self.until:
            self._running = False
            return
        self._take_sample(now)
        self.simulator.schedule(self.interval_s, self._sample_and_reschedule)

    def _take_sample(self, now: float) -> None:
        for switch in self.switches:
            for index, interface in enumerate(switch.interfaces):
                queue = interface.queue
                occupancy = len(queue)
                if occupancy == 0:
                    # Empty queues are the common case; skipping them keeps the
                    # sample list proportional to congestion, not fabric size.
                    continue
                self.samples.append(
                    QueueSample(
                        time_s=now,
                        switch=switch.name,
                        layer=switch.layer,
                        interface_index=index,
                        queued_packets=occupancy,
                        queued_bytes=queue.byte_length,
                    )
                )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def samples_for_layer(self, layer: str) -> List[QueueSample]:
        """All non-empty samples taken at switches of ``layer``."""
        return [sample for sample in self.samples if sample.layer == layer]

    def layer_summary(self, layer: str) -> OccupancySummary:
        """Peak / mean occupancy across every queue of one layer."""
        samples = self.samples_for_layer(layer)
        summary = OccupancySummary(layer=layer, samples=len(samples))
        if not samples:
            return summary
        summary.peak_packets = max(sample.queued_packets for sample in samples)
        summary.peak_bytes = max(sample.queued_bytes for sample in samples)
        summary.mean_packets = sum(sample.queued_packets for sample in samples) / len(samples)
        return summary

    def peak_series(self, layer: str) -> List[Tuple[float, int]]:
        """(time, max occupancy over the layer's queues) for each sampling instant."""
        per_instant: Dict[float, int] = {}
        for sample in self.samples_for_layer(layer):
            previous = per_instant.get(sample.time_s, 0)
            per_instant[sample.time_s] = max(previous, sample.queued_packets)
        return sorted(per_instant.items())

    def busiest_queues(self, top: int = 5) -> List[Tuple[str, int, int]]:
        """The ``top`` (switch, port, peak packets) triples, worst first."""
        peaks: Dict[Tuple[str, int], int] = {}
        for sample in self.samples:
            key = (sample.switch, sample.interface_index)
            peaks[key] = max(peaks.get(key, 0), sample.queued_packets)
        ranked = sorted(peaks.items(), key=lambda item: item[1], reverse=True)
        return [(switch, port, peak) for (switch, port), peak in ranked[:top]]

    def to_rows(self) -> List[Dict[str, object]]:
        """Flat per-sample rows for CSV export."""
        return [
            {
                "time_s": sample.time_s,
                "switch": sample.switch,
                "layer": sample.layer,
                "interface_index": sample.interface_index,
                "queued_packets": sample.queued_packets,
                "queued_bytes": sample.queued_bytes,
            }
            for sample in self.samples
        ]
