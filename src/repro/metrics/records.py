"""Per-flow measurement records."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.units import throughput_bps


@dataclass
class FlowRecord:
    """Everything measured about one flow by the end of an experiment.

    Attributes:
        flow_id / protocol / size_bytes / is_long: copied from the
            :class:`~repro.traffic.flowspec.FlowSpec`.
        start_time: when the sender opened the connection.
        receiver_completion_time: when the receiver had assembled every byte
            in order (this is the flow completion time the paper plots).
        sender_completion_time: when the sender saw every byte acknowledged.
        rto_events / fast_retransmits / retransmitted_packets /
        spurious_retransmits / data_packets_sent / duplicate_acks: transport
            counters summed over all subflows.
        reordering_events: out-of-order arrivals observed by the receiver.
        phase_at_completion: MMPTCP only — which phase the connection was in
            when it completed.
        switch_time: MMPTCP only — when the connection left the scatter phase.
    """

    flow_id: int
    protocol: str
    size_bytes: int
    is_long: bool
    start_time: float
    receiver_completion_time: Optional[float] = None
    sender_completion_time: Optional[float] = None
    rto_events: int = 0
    fast_retransmits: int = 0
    retransmitted_packets: int = 0
    spurious_retransmits: int = 0
    data_packets_sent: int = 0
    duplicate_acks: int = 0
    reordering_events: int = 0
    bytes_received: int = 0
    phase_at_completion: Optional[str] = None
    switch_time: Optional[float] = None

    # ------------------------------------------------------------------

    @property
    def completed(self) -> bool:
        """True if the receiver assembled the whole flow before the experiment ended."""
        return self.receiver_completion_time is not None

    @property
    def completion_time(self) -> Optional[float]:
        """Flow completion time in seconds (receiver-side), or ``None`` if unfinished."""
        if self.receiver_completion_time is None:
            return None
        return self.receiver_completion_time - self.start_time

    @property
    def completion_time_ms(self) -> Optional[float]:
        """Flow completion time in milliseconds, or ``None`` if unfinished."""
        fct = self.completion_time
        return fct * 1e3 if fct is not None else None

    @property
    def experienced_rto(self) -> bool:
        """True if at least one retransmission timeout hit this flow."""
        return self.rto_events > 0

    def throughput_bps(self, horizon: Optional[float] = None) -> float:
        """Achieved goodput in bits/s.

        For completed flows this is size divided by completion time.  For
        still-running (long) flows, pass the experiment ``horizon`` to compute
        goodput over the observed interval using the bytes actually delivered.
        """
        if self.completed:
            duration = self.completion_time or 0.0
            return throughput_bps(self.size_bytes, duration)
        if horizon is None:
            return 0.0
        duration = max(0.0, horizon - self.start_time)
        return throughput_bps(self.bytes_received, duration)
