"""Measurement records, aggregation and reporting."""

from repro.metrics.collector import ExperimentMetrics
from repro.metrics.export import (
    ascii_cdf,
    cdf_comparison_rows,
    write_cdf_csv,
    write_flow_records_csv,
    write_series_csv,
    write_summary_json,
)
from repro.metrics.records import FlowRecord
from repro.metrics.reporting import (
    comparison_table,
    format_milliseconds,
    format_rate,
    format_throughput_mbps,
    render_table,
)
from repro.metrics.stats import (
    DistributionSummary,
    cdf_points,
    fraction_above,
    jains_fairness_index,
    percentile,
    summarize,
)
from repro.metrics.timeseries import (
    OccupancySummary,
    QueueOccupancySampler,
    QueueSample,
)

__all__ = [
    "ExperimentMetrics",
    "FlowRecord",
    "ascii_cdf",
    "cdf_comparison_rows",
    "write_cdf_csv",
    "write_flow_records_csv",
    "write_series_csv",
    "write_summary_json",
    "OccupancySummary",
    "QueueOccupancySampler",
    "QueueSample",
    "comparison_table",
    "format_milliseconds",
    "format_rate",
    "format_throughput_mbps",
    "render_table",
    "DistributionSummary",
    "cdf_points",
    "fraction_above",
    "jains_fairness_index",
    "percentile",
    "summarize",
]
