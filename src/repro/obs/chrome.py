"""Timeline export: telemetry records → Chrome trace-event / Perfetto JSON.

``repro-mmptcp trace export run.jsonl --output run.trace.json`` converts a
recorded telemetry document into the Trace Event Format that
``chrome://tracing``, Perfetto UI (https://ui.perfetto.dev) and Speedscope
all open, so a single incast or vm-migration run becomes visually
debuggable: one named track per host/switch/subflow, instant events for
probe/fault events, counter tracks for every recorded series.

Mapping (simulated seconds → trace microseconds):

* ``event`` records become instant events (``ph: "i"``) on the track
  derived from the record (series/name suffix after ``/``, else the
  payload's ``node``, else ``flow<id>[.sf<id>]``, else ``run``);
* ``series`` records become counter events (``ph: "C"``), one per sample,
  which the viewers render as a stepped area chart;
* each track gets a ``thread_name`` metadata event; tids are assigned in
  sorted label order, so the document is a pure function of the telemetry.

``diagnostics`` records are carried over verbatim under ``otherData`` —
they are operator-facing context in the viewer, not a byte-compare surface.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Trace Event Format process id: everything lives in one logical process.
_PID = 1

#: The catch-all track for records with no derivable entity.
_RUN_TRACK = "run"


def _track_label(name: str, data: Optional[Dict[str, Any]] = None) -> str:
    """The track a record belongs on (see module docstring for the rules)."""
    if "/" in name:
        return name.split("/", 1)[1]
    if data:
        node = data.get("node")
        if node is not None:
            return str(node)
        flow_id = data.get("flow_id")
        if flow_id is not None:
            subflow_id = data.get("subflow_id")
            if subflow_id is not None:
                return f"flow{flow_id}.sf{subflow_id}"
            return f"flow{flow_id}"
    return _RUN_TRACK


def chrome_trace_document(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Build one Chrome trace-event JSON document from telemetry records.

    Deterministic by construction: tids follow sorted track labels, events
    keep their recorded order, and the caller serialises the result through
    ``dumps_deterministic``.
    """
    staged: List[Tuple[str, Dict[str, Any]]] = []  # (track label, event)
    other: Dict[str, Any] = {}
    for record in records:
        kind = record.get("kind")
        if kind == "series":
            name = record.get("name", "")
            label = _track_label(name)
            for time_s, value in record.get("samples", []):
                staged.append(
                    (
                        label,
                        {
                            "ph": "C",
                            "name": name,
                            "ts": time_s * 1e6,
                            "args": {"value": value},
                        },
                    )
                )
        elif kind == "event":
            name = record.get("name", "")
            data = record.get("data", {})
            label = _track_label(name, data)
            staged.append(
                (
                    label,
                    {
                        "ph": "i",
                        "s": "t",
                        "name": name,
                        "ts": record.get("time_s", 0.0) * 1e6,
                        "args": data,
                    },
                )
            )
        elif kind == "counter":
            # End-of-run totals have no timeline position; surface them in
            # the document's metadata where viewers show run-level context.
            other.setdefault("counters", {})[record.get("name", "")] = record.get("value")
        elif kind == "diagnostics":
            other["diagnostics"] = record.get("diagnostics")
        elif kind == "header":
            other["telemetry_header"] = {
                key: value for key, value in record.items() if key != "kind"
            }

    labels = sorted({label for label, _ in staged})
    tids = {label: index + 1 for index, label in enumerate(labels)}
    trace_events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "thread_name",
            "pid": _PID,
            "tid": tids[label],
            "args": {"name": label},
        }
        for label in labels
    ]
    for label, event in staged:
        event["pid"] = _PID
        event["tid"] = tids[label]
        trace_events.append(event)
    return {
        "displayTimeUnit": "ms",
        "traceEvents": trace_events,
        "otherData": other,
    }


__all__ = ["chrome_trace_document"]
