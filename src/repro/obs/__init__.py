"""Unified observability: telemetry probes, engine profiler, timeline export.

The deterministic telemetry layer for the MMPTCP reproduction:

* :mod:`repro.obs.telemetry` — run-scoped probes (counters, gauges,
  simulated-time series, bounded event logs) behind the zero-cost
  ``NULL_PROBES`` convention, plus byte-stable JSONL rendering;
* :mod:`repro.obs.profiler` — the ``--profile`` event-loop profiler whose
  ``diagnostics`` output is the one sanctioned wall-clock island, excluded
  from store keys, goldens and every byte-compare surface;
* :mod:`repro.obs.chrome` — ``repro-mmptcp trace export``: telemetry JSONL
  → Chrome trace-event / Perfetto timeline JSON.

Everything probe-visible is keyed on simulated time and downsampled
deterministically, so telemetry holds the same invariant as metrics and
traces: byte-identical output for any ``--workers`` value.
"""

from repro.obs.chrome import chrome_trace_document
from repro.obs.profiler import EngineProfiler, pool_counters, profile_diagnostics
from repro.obs.telemetry import (
    ALL_GROUPS,
    NULL_PROBES,
    PROBE_GROUPS,
    TELEMETRY_SCHEMA,
    SeriesBuffer,
    TeeSink,
    TelemetryProbes,
    TelemetryRecorder,
    make_recorder,
    probe_groups_argument,
    telemetry_jsonl,
    telemetry_records,
)

__all__ = [
    "ALL_GROUPS",
    "NULL_PROBES",
    "PROBE_GROUPS",
    "TELEMETRY_SCHEMA",
    "EngineProfiler",
    "SeriesBuffer",
    "TeeSink",
    "TelemetryProbes",
    "TelemetryRecorder",
    "chrome_trace_document",
    "make_recorder",
    "pool_counters",
    "probe_groups_argument",
    "profile_diagnostics",
    "telemetry_jsonl",
    "telemetry_records",
]
