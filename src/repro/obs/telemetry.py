"""Run-scoped telemetry probes: counters, gauges and simulated-time series.

The observability layer's data model.  A :class:`TelemetryRecorder` is the
enabled implementation of the :class:`TelemetryProbes` interface; the
module-level :data:`NULL_PROBES` singleton is the disabled one, installed as
a *class attribute* on every instrumented component (mirroring how
``TraceSink``/``NULL_SINK`` work) so the unprobed common case costs one
attribute read and a falsy check — never per-instance storage, never a
method call.

Everything a recorder stores is keyed on **simulated** time and fed only by
deterministic call sites, so two runs of the same config produce
byte-identical telemetry whatever the worker count.  Wall-clock material is
confined to the separate ``diagnostics`` record assembled by
:mod:`repro.obs.profiler` and is never part of a byte-compare surface.

Memory is bounded without randomness:

* time series use **stride doubling** — keep every sample until the buffer
  is full, then drop every other retained sample and double the keep
  stride.  The retained set is a pure function of the offered sequence, so
  repeat runs downsample identically.
* the event log evicts **oldest first** in amortised batches and raises an
  ``overflowed`` flag instead of growing without bound.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.metrics.export import dumps_deterministic
from repro.sim.tracing import TraceSink

#: Telemetry schema version, stamped into every header record.
TELEMETRY_SCHEMA = 1

#: Probe groups a recorder can subscribe to.  A probe name is
#: ``<group>.<metric>`` (optionally ``/<track>`` for per-entity series);
#: the group is everything before the first dot.
PROBE_GROUPS = (
    "engine",
    "faults",
    "fluid",
    "phase",
    "scheduler",
    "trace",
    "transport",
)

#: The wildcard accepted by ``--probes`` and :class:`TelemetryRecorder`.
ALL_GROUPS = "all"

#: Trace-channel events worth keeping as full telemetry events (fault
#: applications, mobility, transport milestones).  Everything else the tee
#: observes is still *counted* under ``trace.<name>`` but not stored, so a
#: drop-heavy run cannot evict the interesting events.
TRACE_EVENT_KEEP = frozenset(
    {
        "degrade",
        "drain_link",
        "fast_retransmit",
        "host_attached",
        "link_down",
        "link_up",
        "migrate_host",
        "peer_readdressed",
        "phase_switch",
        "restore",
        "rto",
    }
)


class TelemetryProbes:
    """Disabled probe interface: every hook is a no-op.

    Instrumented hot paths guard with ``if probes.enabled:`` before calling
    any hook, exactly like the ``TraceSink`` convention, so the disabled
    cost is a single attribute check.
    """

    enabled: bool = False

    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the named monotonic counter."""

    def sample(self, name: str, time_s: float, value: float) -> None:
        """Append one (simulated time, value) point to the named series."""

    def event(self, name: str, time_s: float, **data: Any) -> None:
        """Record one discrete probe event at simulated ``time_s``."""


#: The shared disabled singleton (class-attribute default everywhere).
NULL_PROBES = TelemetryProbes()


class SeriesBuffer:
    """A bounded time series with deterministic stride-doubling decimation."""

    __slots__ = ("name", "max_samples", "stride", "offered", "samples", "_skip")

    def __init__(self, name: str, max_samples: int) -> None:
        if max_samples < 2:
            raise ValueError("max_samples must be at least 2")
        self.name = name
        self.max_samples = max_samples
        self.stride = 1
        self.offered = 0
        self.samples: List[Tuple[float, float]] = []
        self._skip = 0

    def add(self, time_s: float, value: float) -> None:
        self.offered += 1
        if self._skip:
            self._skip -= 1
            return
        samples = self.samples
        samples.append((time_s, value))
        if len(samples) >= self.max_samples:
            # Keep the even-indexed half (the first sample survives forever)
            # and double the stride: the retained set depends only on the
            # offered sequence, never on memory pressure or timing.
            del samples[1::2]
            self.stride *= 2
        self._skip = self.stride - 1


class TelemetryRecorder(TelemetryProbes):
    """The enabled probe sink: a registry of counters, series and events.

    ``groups`` selects which probe groups are recorded (``("all",)``
    records everything); names outside the subscription are dropped at the
    recorder, so call sites never need to know the configuration.
    """

    enabled = True

    def __init__(
        self,
        groups: Sequence[str] = (ALL_GROUPS,),
        max_samples_per_series: int = 512,
        max_events: int = 4096,
    ) -> None:
        unknown = sorted(set(groups) - set(PROBE_GROUPS) - {ALL_GROUPS})
        if unknown:
            raise ValueError(
                f"unknown probe group(s) {', '.join(unknown)}; "
                f"known: {', '.join(PROBE_GROUPS)} (or '{ALL_GROUPS}')"
            )
        self.groups = tuple(sorted(set(groups)))
        self._all = ALL_GROUPS in self.groups
        self._group_set = frozenset(self.groups)
        self.max_samples_per_series = max_samples_per_series
        self.max_events = max_events
        self.counters: Dict[str, int] = {}
        self.series: Dict[str, SeriesBuffer] = {}
        self.events: List[Tuple[float, str, Dict[str, Any]]] = []
        self.events_dropped = 0
        self.overflowed = False

    # -- subscription -------------------------------------------------------

    def wants(self, name: str) -> bool:
        """True when ``name``'s group is subscribed."""
        if self._all:
            return True
        return name.split(".", 1)[0] in self._group_set

    # -- probe hooks --------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        if not self.wants(name):
            return
        counters = self.counters
        counters[name] = counters.get(name, 0) + amount

    def sample(self, name: str, time_s: float, value: float) -> None:
        if not self.wants(name):
            return
        buffer = self.series.get(name)
        if buffer is None:
            buffer = self.series[name] = SeriesBuffer(name, self.max_samples_per_series)
        buffer.add(time_s, value)

    def event(self, name: str, time_s: float, **data: Any) -> None:
        if not self.wants(name):
            return
        events = self.events
        events.append((time_s, name, data))
        # Amortised oldest-first eviction: let the log grow to twice the
        # bound, then cut it back in one slice so steady-state appends stay
        # O(1) while memory stays O(max_events).
        if len(events) > 2 * self.max_events:
            excess = len(events) - self.max_events
            del events[:excess]
            self.events_dropped += excess
            self.overflowed = True

    # -- trace tee ----------------------------------------------------------

    def observe_trace(self, time_s: float, name: str, **data: Any) -> None:
        """Fold one trace-channel event into the telemetry registries.

        Every observed trace name is counted under ``trace.<name>``; the
        curated :data:`TRACE_EVENT_KEEP` names (faults, mobility, transport
        milestones) are additionally kept as full events under ``faults.``
        so a drop flood cannot evict them.
        """
        self.count(f"trace.{name}")
        if name in TRACE_EVENT_KEEP:
            self.event(f"faults.{name}", time_s, **data)


class TeeSink(TraceSink):
    """A trace sink that feeds a recorder while preserving a primary sink.

    The primary sink (a test's ``RecordingTraceSink``, or ``NULL_SINK``)
    sees exactly the stream it would have seen without the tee — that is
    what keeps golden traces byte-identical with a recorder attached.  The
    tee is always enabled so emit sites fire even when the primary is not.
    """

    enabled = True

    def __init__(self, primary: TraceSink, recorder: TelemetryRecorder) -> None:
        self.primary = primary
        self.recorder = recorder

    def emit(self, time: float, name: str, **data: Any) -> None:
        if self.primary.enabled:
            self.primary.emit(time, name, **data)
        self.recorder.observe_trace(time, name, **data)


# ---------------------------------------------------------------------------
# Rendering (JSONL through the repository JSON policy)
# ---------------------------------------------------------------------------


def _jsonable_value(value: Any) -> Any:
    """Coerce one probe payload value to a JSON-safe, deterministic form.

    Primitives pass through; containers recurse; anything else is reduced
    to its type name (never ``repr``, which can embed memory addresses).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable_value(item) for key, item in value.items()}
    return f"<{type(value).__name__}>"


def telemetry_records(
    recorder: TelemetryRecorder,
    label: str = "run",
    diagnostics: Optional[Dict[str, Any]] = None,
) -> List[Dict[str, Any]]:
    """The recorder's content as an ordered list of JSONL-ready records.

    Record order is fixed — header, counters (sorted by name), series
    (sorted by name), events (recorded order), then the optional
    ``diagnostics`` record — so equal recorder states always render to
    equal bytes.  ``diagnostics`` is the one wall-clock-bearing record; it
    is always last so byte-compare surfaces can drop it with a single
    line filter.
    """
    records: List[Dict[str, Any]] = [
        {
            "kind": "header",
            "schema": TELEMETRY_SCHEMA,
            "label": label,
            "groups": list(recorder.groups),
            "events_dropped": recorder.events_dropped,
            "overflowed": recorder.overflowed,
        }
    ]
    for name in sorted(recorder.counters):
        records.append({"kind": "counter", "name": name, "value": recorder.counters[name]})
    for name in sorted(recorder.series):
        buffer = recorder.series[name]
        records.append(
            {
                "kind": "series",
                "name": name,
                "stride": buffer.stride,
                "offered": buffer.offered,
                "samples": [[time_s, value] for time_s, value in buffer.samples],
            }
        )
    for time_s, name, data in recorder.events:
        records.append(
            {
                "kind": "event",
                "name": name,
                "time_s": time_s,
                "data": {str(key): _jsonable_value(item) for key, item in data.items()},
            }
        )
    if diagnostics is not None:
        records.append({"kind": "diagnostics", "diagnostics": diagnostics})
    return records


def telemetry_jsonl(records: Iterable[Dict[str, Any]]) -> str:
    """Render telemetry records as JSONL via the deterministic dumper.

    One compact line per record; every line goes through
    :func:`repro.metrics.export.dumps_deterministic` (sorted keys,
    ``allow_nan=False``), so equal records are equal bytes.
    """
    return "".join(dumps_deterministic(record, indent=None) for record in records)


def probe_groups_argument(values: Sequence[str]) -> Tuple[str, ...]:
    """Validate a CLI ``--probes`` list into a recorder ``groups`` tuple."""
    unknown = sorted(set(values) - set(PROBE_GROUPS) - {ALL_GROUPS})
    if unknown:
        raise ValueError(
            f"unknown probe group(s) {', '.join(unknown)}; "
            f"known: {', '.join(PROBE_GROUPS)} (or '{ALL_GROUPS}')"
        )
    return tuple(sorted(set(values)))


def make_recorder(
    groups: Optional[Sequence[str]],
    max_samples_per_series: int = 512,
    max_events: int = 4096,
) -> Optional[TelemetryRecorder]:
    """A recorder for the validated ``groups``, or None when probes are off."""
    if not groups:
        return None
    return TelemetryRecorder(
        groups=groups,
        max_samples_per_series=max_samples_per_series,
        max_events=max_events,
    )


__all__ = [
    "ALL_GROUPS",
    "NULL_PROBES",
    "PROBE_GROUPS",
    "TELEMETRY_SCHEMA",
    "TRACE_EVENT_KEEP",
    "SeriesBuffer",
    "TeeSink",
    "TelemetryProbes",
    "TelemetryRecorder",
    "make_recorder",
    "probe_groups_argument",
    "telemetry_jsonl",
    "telemetry_records",
]
