"""Engine profiler: where do the events (and the wall-clock) go?

:class:`EngineProfiler` plugs into ``Simulator.profiler`` and counts
dispatched events per handler category (the callback's qualified name, so
``TcpSender._on_rto`` and ``Link._deliver`` show up as themselves).  The
note path is two dict operations; when no profiler is attached the run loop
pays a single local ``None`` check per event.

:func:`profile_diagnostics` assembles the profiler's counts together with
the engine's hygiene counters (heap compactions, timer-wheel
cascades/sweeps), the packet pool's allocation stats and the run's measured
wall-clock into one ``diagnostics`` dict.  This dict is the repository's
**one sanctioned wall-clock-bearing surface**: it is attached to the
in-memory result only, never serialised by ``store/serialize.py``, never
hashed into a ``run_key``, and always rendered as the *last* telemetry
JSONL record so byte-compare surfaces can drop it with a one-line filter.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.net.packet import PacketPool
from repro.sim.engine import Simulator


class EngineProfiler:
    """Counts dispatched events per handler category."""

    __slots__ = ("handler_counts",)

    def __init__(self) -> None:
        self.handler_counts: Dict[str, int] = {}

    def note(self, callback: Any) -> None:
        """Attribute one dispatched event to ``callback``'s category.

        Categories are qualified names (deterministic, unlike ``repr``,
        which can embed memory addresses); callables without one — e.g.
        ``functools.partial`` — fall back to their type name.
        """
        key = getattr(callback, "__qualname__", None)
        if key is None:
            key = type(callback).__name__
        counts = self.handler_counts
        counts[key] = counts.get(key, 0) + 1

    @property
    def total(self) -> int:
        """Total events attributed so far."""
        return sum(self.handler_counts.values())


def pool_counters(pool: PacketPool) -> Dict[str, int]:
    """A point-in-time snapshot of a pool's cumulative counters."""
    return {
        "allocated": pool.allocated,
        "reused": pool.reused,
        "released": pool.released,
    }


def profile_diagnostics(
    profiler: EngineProfiler,
    simulator: Simulator,
    wallclock_s: float,
    pool: Optional[PacketPool] = None,
    pool_baseline: Optional[Dict[str, int]] = None,
) -> Dict[str, Any]:
    """The full ``diagnostics`` payload for one profiled run.

    ``pool_baseline`` (a :func:`pool_counters` snapshot taken before the
    run) turns the process-wide pool's cumulative counters into this run's
    deltas; ``outstanding``/``highwater`` are absolute because
    ``set_pool_profile(True)`` resets them at attach time.  ``wallclock_s``
    is the runner's existing measured elapsed time — no new clock reads
    happen here.
    """
    events = simulator.events_processed
    wheel = simulator.timer_wheel
    payload: Dict[str, Any] = {
        "events_processed": events,
        "wallclock_s": wallclock_s,
        "us_per_event": (wallclock_s / events * 1e6) if events else 0.0,
        "handlers": {name: profiler.handler_counts[name]
                     for name in sorted(profiler.handler_counts)},
        "engine": {
            "heap_compactions": simulator.heap_compactions,
            "timer_wheel_sweeps": wheel.sweeps,
            "timer_wheel_cascades": wheel.cascades,
            "timer_wheel_stale_entries": wheel.stale_entries,
            "timer_wheel_physical_size": wheel.physical_size(),
        },
    }
    if pool is not None:
        counters = pool_counters(pool)
        if pool_baseline is not None:
            counters = {
                name: counters[name] - pool_baseline.get(name, 0) for name in counters
            }
        counters["outstanding"] = pool.outstanding
        counters["highwater"] = pool.highwater
        payload["packet_pool"] = counters
    return payload


__all__ = ["EngineProfiler", "pool_counters", "profile_diagnostics"]
