#!/usr/bin/env python3
"""The paper's headline experiment at example scale: short vs. long flows.

Runs the Figure 1 workload — a 4:1 over-subscribed FatTree where one third of
the servers push long background flows and the rest send 70 KB short flows
with Poisson arrivals over a permutation matrix — under TCP, MPTCP(8) and
MMPTCP(PS + 8), all on the *same* workload (same seed), and prints the
short-flow completion-time statistics and long-flow throughput for each.

This is a smaller version of benchmarks/bench_section3_stats.py intended to
finish in about a minute; see EXPERIMENTS.md for the full benchmark results.

Run with:  python examples/datacenter_short_vs_long.py
"""

from __future__ import annotations

from repro.experiments import ExperimentConfig, run_experiment
from repro.metrics import render_table
from repro.sim.units import megabits_per_second, megabytes


def example_config() -> ExperimentConfig:
    """A deliberately small instance of the paper's workload."""
    return ExperimentConfig(
        fattree_k=4,
        hosts_per_edge=8,                      # 4:1 over-subscription, 64 hosts
        link_rate_bps=megabits_per_second(100),
        arrival_window_s=0.15,
        drain_time_s=1.0,
        short_flow_rate_per_sender=5.0,
        long_flow_size_bytes=megabytes(2),
        max_short_flows=40,
        seed=7,
    )


def main() -> None:
    config = example_config()
    protocols = {
        "tcp": config.with_protocol("tcp"),
        "mptcp (8 subflows)": config.with_protocol("mptcp", num_subflows=8),
        "mmptcp (PS + 8)": config.with_protocol("mmptcp", num_subflows=8),
    }

    rows = []
    for label, protocol_config in protocols.items():
        print(f"Running {label} ...")
        result = run_experiment(protocol_config)
        summary = result.metrics.summary_dict()
        rows.append([
            label,
            int(summary["short_flows_completed"]),
            f"{summary['short_fct_mean_ms']:.1f}",
            f"{summary['short_fct_std_ms']:.1f}",
            f"{summary['short_fct_p99_ms']:.1f}",
            f"{100 * summary['rto_incidence']:.1f}%",
            f"{summary['long_flow_throughput_mbps']:.1f}",
            f"{100 * summary['core_loss_rate']:.3f}%",
        ])

    print("\nShort flows: completion-time statistics (70 KB each)")
    print(render_table(
        ["protocol", "flows", "mean (ms)", "std (ms)", "p99 (ms)",
         ">=1 RTO", "long tput (Mbps)", "core loss"],
        rows,
    ))
    print(
        "\nExpected shape (paper, Section 3): MMPTCP matches MPTCP's long-flow\n"
        "throughput while cutting the short-flow tail (std and RTO incidence)."
    )


if __name__ == "__main__":
    main()
