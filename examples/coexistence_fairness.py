#!/usr/bin/env python3
"""Co-existence: TCP, MPTCP and MMPTCP sharing one FatTree.

The paper argues MMPTCP must "co-exist in harmony with legacy TCP and MPTCP
flows" because a data centre cannot switch transports atomically.  This
example partitions the senders of a 4:1 over-subscribed FatTree into three
blocks — one per protocol — runs the paper's short/long workload in every
block simultaneously, and prints per-protocol completion times, long-flow
throughput and Jain's fairness index.

Run with:  python examples/coexistence_fairness.py
"""

from __future__ import annotations

from repro.experiments import ExperimentConfig
from repro.experiments.coexistence import coexistence_rows, run_coexistence_experiment
from repro.metrics.reporting import render_table
from repro.sim.units import megabits_per_second
from repro.traffic import PROTOCOL_MMPTCP, PROTOCOL_MPTCP, PROTOCOL_TCP


def main() -> None:
    config = ExperimentConfig(
        fattree_k=4,
        hosts_per_edge=4,
        link_rate_bps=megabits_per_second(100),
        arrival_window_s=0.2,
        drain_time_s=1.0,
        short_flow_rate_per_sender=6.0,
        long_flow_size_bytes=2_000_000,
        max_short_flows=60,
        num_subflows=8,
        initial_cwnd_segments=2,
        seed=42,
    )
    print("Running TCP + MPTCP + MMPTCP side by side on one FatTree "
          f"({config.fattree_k=}, {config.hosts_per_edge=})...")
    outcome = run_coexistence_experiment(
        config, protocols=(PROTOCOL_TCP, PROTOCOL_MPTCP, PROTOCOL_MMPTCP)
    )

    rows = coexistence_rows(outcome)
    print()
    print(render_table(
        ["protocol", "short flows", "long flows", "mean FCT (ms)", "p99 FCT (ms)",
         "RTO incidence", "completed", "long tput (Mbps)"],
        [
            [
                row["protocol"],
                row["short_flows"],
                row["long_flows"],
                f"{row['mean_fct_ms']:.1f}",
                f"{row['p99_fct_ms']:.1f}",
                f"{100 * row['rto_incidence']:.1f}%",
                f"{100 * row['completion_rate']:.1f}%",
                f"{row['mean_long_throughput_mbps']:.1f}",
            ]
            for row in rows
        ],
    ))
    print()
    print(f"Jain fairness index over all long flows : {outcome.fairness_index():.3f}")
    print(f"MMPTCP / MPTCP long-flow throughput     : "
          f"{outcome.throughput_ratio(PROTOCOL_MMPTCP, PROTOCOL_MPTCP):.2f}x")
    print(f"Co-existing in harmony (within 50 %)?   : {outcome.harmony(tolerance=0.5)}")


if __name__ == "__main__":
    main()
