#!/usr/bin/env python3
"""Deadline study: deadline-aware single-path baselines vs MMPTCP.

The paper's introduction dismisses DCTCP/D2TCP/D3 as universal answers
because they need switch ECN support and application-layer deadline
knowledge.  This example makes that argument quantitative: it attaches
slack-based deadlines to every 70 KB short flow, runs the same workload
under TCP, DCTCP, D2TCP (which actually consumes the deadlines), MPTCP and
MMPTCP, and prints the deadline miss rate of each.

Run with:  python examples/deadline_study.py
"""

from __future__ import annotations

from repro.experiments import ExperimentConfig
from repro.experiments.deadline_study import deadline_rows, run_deadline_study
from repro.metrics.reporting import render_table
from repro.sim.units import megabits_per_second
from repro.traffic import (
    PROTOCOL_D2TCP,
    PROTOCOL_DCTCP,
    PROTOCOL_MMPTCP,
    PROTOCOL_MPTCP,
    PROTOCOL_TCP,
)

SLACK_FACTOR = 3.0


def main() -> None:
    config = ExperimentConfig(
        fattree_k=4,
        hosts_per_edge=4,
        link_rate_bps=megabits_per_second(100),
        arrival_window_s=0.2,
        drain_time_s=1.0,
        short_flow_rate_per_sender=6.0,
        long_flow_size_bytes=2_000_000,
        max_short_flows=50,
        num_subflows=8,
        initial_cwnd_segments=2,
        seed=7,
    )
    protocols = (PROTOCOL_TCP, PROTOCOL_DCTCP, PROTOCOL_D2TCP, PROTOCOL_MPTCP, PROTOCOL_MMPTCP)
    print(f"Assigning slack-{SLACK_FACTOR} deadlines to every short flow and running "
          f"{len(protocols)} transports on the same workload...")
    outcomes = run_deadline_study(
        config, protocols=protocols, slack_factor=SLACK_FACTOR, num_subflows=8
    )

    rows = deadline_rows(outcomes)
    print()
    print(render_table(
        ["protocol", "short flows", "deadline misses", "mean FCT (ms)",
         "p99 FCT (ms)", "RTO incidence", "completed"],
        [
            [
                row["protocol"],
                row["short_flows"],
                f"{100 * row['deadline_miss_rate']:.1f}%",
                f"{row['mean_fct_ms']:.1f}",
                f"{row['p99_fct_ms']:.1f}",
                f"{100 * row['rto_incidence']:.1f}%",
                f"{100 * row['completion_rate']:.1f}%",
            ]
            for row in rows
        ],
    ))
    print()
    print("Notes: DCTCP/D2TCP ran on ECN-marking switches (their deployment")
    print("requirement); D2TCP is the only transport that reads the deadlines.")
    print("MMPTCP uses neither ECN nor deadline information.")


if __name__ == "__main__":
    main()
