#!/usr/bin/env python3
"""Quickstart: one MMPTCP flow on a FatTree, step by step.

Builds a small 4-ary FatTree, opens a single MMPTCP connection between two
hosts in different pods, transfers 1 MB and prints what happened: when the
connection switched from the packet-scatter phase to MPTCP, how the data was
split across subflows, and the achieved completion time.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import DataVolumeSwitching, MmptcpConnection, MmptcpReceiver
from repro.sim import Simulator
from repro.sim.units import megabits_per_second, to_milliseconds
from repro.topology import FatTreeParams, FatTreeTopology


def main() -> None:
    # 1. A simulator and a 4-ary FatTree (16 hosts, 20 switches, 1:1 subscription).
    simulator = Simulator()
    topology = FatTreeTopology(
        simulator,
        FatTreeParams(k=4, link_rate_bps=megabits_per_second(1000)),
    )
    source = topology.node("host-0-0-0")
    destination = topology.node("host-3-1-1")
    paths = topology.expected_path_count(source, destination)
    print(f"Topology: {topology}")
    print(f"Equal-cost paths between {source.name} and {destination.name}: {paths}")

    # 2. The receiver binds a port; the sender opens an MMPTCP connection that
    #    starts in packet-scatter mode and switches to 4 MPTCP subflows after
    #    ~140 KB (the data-volume policy from the paper).
    flow_bytes = 1_000_000
    receiver = MmptcpReceiver(
        simulator, destination, local_port=5001, expected_bytes=flow_bytes,
        on_complete=lambda r: print(
            f"  receiver assembled all bytes at t={r.completion_time:.4f} s"
        ),
    )
    connection = MmptcpConnection(
        simulator,
        source,
        destination=destination.address,
        destination_port=5001,
        total_bytes=flow_bytes,
        num_subflows=4,
        switching_policy=DataVolumeSwitching(threshold_bytes=140_000),
        path_count_hint=paths,
        on_phase_switch=lambda conn: print(
            f"  phase switch at t={conn.switch_time:.4f} s "
            f"after {conn.bytes_in_scatter_phase} bytes in the scatter phase"
        ),
    )

    # 3. Run.
    print(f"\nTransferring {flow_bytes} bytes with MMPTCP...")
    connection.start()
    simulator.run(until=10.0)

    # 4. Report.
    assert connection.complete and receiver.complete
    fct_ms = to_milliseconds(connection.completion_time - connection.start_time)
    stats = connection.aggregate_stats()
    print(f"\nFlow completion time : {fct_ms:.2f} ms")
    print(f"Phase at completion  : {connection.phase}")
    print(f"Scattered packets    : {connection.scatter_subflow.scattered_packets}")
    print("Per-subflow share of the byte stream:")
    for subflow in connection.subflows:
        if subflow is connection.scatter_subflow:
            label = "scatter"
        else:
            label = f"subflow {subflow.subflow_id}"
        print(f"  {label:10s} {subflow.allocated_bytes:8d} bytes "
              f"({subflow.stats.data_packets_sent} packets)")
    print(f"Retransmissions      : {stats.retransmitted_packets} packets, "
          f"{stats.rto_events} RTOs, {stats.fast_retransmits} fast retransmits")
    print(f"Simulated events     : {simulator.events_processed}")


if __name__ == "__main__":
    main()
