#!/usr/bin/env python3
"""Phase-switching study: when should MMPTCP leave the packet-scatter phase?

Transfers one 2 MB flow between two hosts of a FatTree under every switching
policy the paper discusses (plus "never switch" and plain MPTCP as
references) and reports:

* when the switch happened and why,
* how many bytes travelled in each phase,
* the flow completion time and the retransmission behaviour.

Run with:  python examples/phase_switching_study.py
"""

from __future__ import annotations

import random

from repro.core import (
    CongestionEventSwitching,
    DataVolumeSwitching,
    HybridSwitching,
    MmptcpConnection,
    MmptcpReceiver,
    NeverSwitch,
)
from repro.metrics import render_table
from repro.sim import Simulator
from repro.sim.units import megabits_per_second, to_milliseconds
from repro.topology import FatTreeParams, FatTreeTopology
from repro.transport import MptcpConnection, MptcpReceiver, TcpConfig

FLOW_BYTES = 2_000_000
SUBFLOWS = 4


def run_mmptcp(policy) -> dict:
    """One MMPTCP transfer under the given switching policy."""
    simulator = Simulator()
    topology = FatTreeTopology(
        simulator, FatTreeParams(k=4, link_rate_bps=megabits_per_second(200))
    )
    source, destination = topology.node("host-0-0-0"), topology.node("host-2-1-1")
    receiver = MmptcpReceiver(simulator, destination, local_port=5001,
                              expected_bytes=FLOW_BYTES)
    connection = MmptcpConnection(
        simulator, source, destination.address, 5001, FLOW_BYTES,
        num_subflows=SUBFLOWS, config=TcpConfig(),
        switching_policy=policy,
        path_count_hint=topology.expected_path_count(source, destination),
        rng=random.Random(1),
    )
    connection.start()
    simulator.run(until=30.0)
    assert receiver.complete
    stats = connection.aggregate_stats()
    scatter_bytes = connection.scatter_subflow.allocated_bytes
    return {
        "policy": policy.describe(),
        "switch_time_ms": (
            f"{to_milliseconds(connection.switch_time):.1f}" if connection.switch_time else "-"
        ),
        "scatter_bytes": scatter_bytes,
        "mptcp_bytes": FLOW_BYTES - scatter_bytes,
        "fct_ms": to_milliseconds(connection.completion_time - connection.start_time),
        "retx": stats.retransmitted_packets,
        "rtos": stats.rto_events,
    }


def run_plain_mptcp() -> dict:
    """The reference: standard MPTCP (as if switching happened at time zero)."""
    simulator = Simulator()
    topology = FatTreeTopology(
        simulator, FatTreeParams(k=4, link_rate_bps=megabits_per_second(200))
    )
    source, destination = topology.node("host-0-0-0"), topology.node("host-2-1-1")
    receiver = MptcpReceiver(simulator, destination, local_port=5001,
                             expected_bytes=FLOW_BYTES)
    connection = MptcpConnection(simulator, source, destination.address, 5001, FLOW_BYTES,
                                 num_subflows=SUBFLOWS, config=TcpConfig())
    connection.start()
    simulator.run(until=30.0)
    assert receiver.complete
    stats = connection.aggregate_stats()
    return {
        "policy": "plain mptcp (reference)",
        "switch_time_ms": "0.0",
        "scatter_bytes": 0,
        "mptcp_bytes": FLOW_BYTES,
        "fct_ms": to_milliseconds(connection.completion_time - connection.start_time),
        "retx": stats.retransmitted_packets,
        "rtos": stats.rto_events,
    }


def main() -> None:
    policies = [
        DataVolumeSwitching(threshold_bytes=70_000),
        DataVolumeSwitching(threshold_bytes=140_000),
        DataVolumeSwitching(threshold_bytes=500_000),
        CongestionEventSwitching(),
        HybridSwitching(threshold_bytes=140_000),
        NeverSwitch(),
    ]
    rows = [run_plain_mptcp()] + [run_mmptcp(policy) for policy in policies]
    print(f"One {FLOW_BYTES // 1_000_000} MB flow, {SUBFLOWS} MPTCP-phase subflows\n")
    print(render_table(
        ["switching policy", "switch at (ms)", "bytes in PS", "bytes in MPTCP",
         "FCT (ms)", "retx", "RTOs"],
        [
            [row["policy"], row["switch_time_ms"], row["scatter_bytes"],
             row["mptcp_bytes"], f"{row['fct_ms']:.1f}", row["retx"], row["rtos"]]
            for row in rows
        ],
    ))
    print(
        "\nExpected shape (paper, Section 2): the data-volume threshold barely\n"
        "affects the long flow's completion time because the MPTCP subflows ramp\n"
        "up to the access-link capacity within a few RTTs of the switch."
    )


if __name__ == "__main__":
    main()
