#!/usr/bin/env python3
"""Incast burst tolerance: many synchronised senders, one receiver.

The paper's introduction lists TCP incast — a synchronised fan-in of
responses overflowing the receiver's switch port — among the reasons short
flows miss deadlines, and its roadmap argues that the packet-scatter phase
tolerates bursts because packets spread over many queues.  This example
fires a synchronised 16-to-1 burst of 70 KB responses inside a FatTree and
compares TCP, DCTCP, MPTCP(8) and MMPTCP.

Run with:  python examples/incast_burst.py
"""

from __future__ import annotations

import random

from repro.experiments import ExperimentConfig
from repro.experiments.runner import _record_for, build_topology, create_flow
from repro.metrics import ExperimentMetrics, render_table
from repro.sim import Simulator
from repro.sim.randomness import RandomStreams
from repro.sim.units import megabits_per_second
from repro.traffic import build_incast_workload

FAN_IN = 16
RESPONSE_BYTES = 70_000


def run_incast(protocol: str) -> ExperimentMetrics:
    """One synchronised fan-in under the given transport protocol."""
    config = ExperimentConfig(
        fattree_k=4,
        hosts_per_edge=8,
        link_rate_bps=megabits_per_second(100),
        queue_kind="ecn" if protocol == "dctcp" else "droptail",
        queue_capacity_packets=64,
        protocol=protocol,
        num_subflows=8,
        arrival_window_s=0.05,
        drain_time_s=2.0,
        seed=11,
    )
    simulator = Simulator()
    streams = RandomStreams(config.seed)
    topology = build_topology(config, simulator)
    rng = random.Random(config.seed)
    hosts = [host.name for host in topology.hosts]
    receiver_name = hosts[0]
    senders = rng.sample(hosts[1:], FAN_IN)
    workload = build_incast_workload(senders, receiver_name,
                                     response_size_bytes=RESPONSE_BYTES,
                                     start_time=0.01, protocol=protocol, num_subflows=8)
    instances = []
    for spec in workload.flows:
        instance = create_flow(spec, config, topology, simulator, streams)
        instances.append(instance)
        simulator.schedule_at(spec.start_time, instance.sender.start)
    simulator.run(until=config.horizon_s)

    metrics = ExperimentMetrics(duration_s=config.horizon_s)
    metrics.flows = [_record_for(instance) for instance in instances]
    metrics.network = topology.monitor().snapshot(config.horizon_s)
    return metrics


def main() -> None:
    rows = []
    for protocol in ("tcp", "dctcp", "mptcp", "mmptcp"):
        print(f"Running {FAN_IN}-to-1 incast with {protocol} ...")
        metrics = run_incast(protocol)
        summary = metrics.short_flow_fct_summary()
        rows.append([
            protocol,
            f"{100 * metrics.short_flow_completion_rate():.0f}%",
            f"{summary.mean:.1f}",
            f"{summary.p99:.1f}",
            f"{summary.maximum:.1f}",
            f"{100 * metrics.rto_incidence():.1f}%",
            f"{100 * metrics.loss_rate('edge'):.2f}%",
        ])

    print(f"\nIncast: {FAN_IN} senders x {RESPONSE_BYTES // 1000} KB responses to one receiver")
    print(render_table(
        ["protocol", "completed", "mean FCT (ms)", "p99 FCT (ms)", "max FCT (ms)",
         ">=1 RTO", "edge loss"],
        rows,
    ))
    print(
        "\nThe receiver's access link bounds how fast the burst can drain; the\n"
        "interesting column is RTO incidence — timeouts are what turn a ~70 ms\n"
        "burst into a 200+ ms one.  MMPTCP's single scatter window recovers with\n"
        "fast retransmit where MPTCP's thin per-subflow windows cannot."
    )


if __name__ == "__main__":
    main()
