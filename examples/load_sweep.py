#!/usr/bin/env python3
"""Load sweep: MPTCP vs MMPTCP as the offered load grows.

One of the paper's roadmap scenarios is the effect of network load.  This
example sweeps the short-flow arrival rate around the Figure 1 operating
point for MPTCP(8) and MMPTCP(8), prints the resulting completion-time and
RTO statistics, and renders an ASCII CDF of the short-flow completion times
at the highest load so the tail difference is visible without any plotting
stack.

Run with:  python examples/load_sweep.py [--workers N]

``--workers N`` fans the sweep's (protocol, load) points out over a process
pool; the printed tables are identical for any worker count because every
point is fully determined by its config and results are merged in point
order, never completion order.
"""

from __future__ import annotations

import argparse

from repro.experiments import ExperimentConfig
from repro.experiments.loadsweep import load_sweep_rows, points_by_protocol, run_load_sweep
from repro.experiments.parallel import workers_argument_type
from repro.metrics.export import ascii_cdf
from repro.metrics.reporting import render_table
from repro.sim.units import megabits_per_second
from repro.traffic import PROTOCOL_MMPTCP, PROTOCOL_MPTCP

LOAD_FACTORS = (0.5, 1.0, 2.0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=workers_argument_type, default=1,
                        help="process-pool size (1 = serial, 0 = one per CPU)")
    args = parser.parse_args()
    config = ExperimentConfig(
        fattree_k=4,
        hosts_per_edge=4,
        link_rate_bps=megabits_per_second(100),
        arrival_window_s=0.2,
        drain_time_s=1.0,
        short_flow_rate_per_sender=6.0,
        long_flow_size_bytes=2_000_000,
        max_short_flows=60,
        num_subflows=8,
        initial_cwnd_segments=2,
        seed=11,
    )
    print(f"Sweeping offered load x{LOAD_FACTORS} for MPTCP(8) and MMPTCP(8)...")
    points = run_load_sweep(
        config,
        protocols=(PROTOCOL_MPTCP, PROTOCOL_MMPTCP),
        load_factors=LOAD_FACTORS,
        num_subflows=8,
        workers=args.workers,
    )

    rows = load_sweep_rows(points)
    print()
    print(render_table(
        ["protocol", "load", "mean FCT (ms)", "p99 FCT (ms)", "RTO incidence",
         "> 200 ms", "completed", "long tput (Mbps)"],
        [
            [
                row["protocol"],
                f"{row['load_factor']:.1f}x",
                f"{row['mean_fct_ms']:.1f}",
                f"{row['p99_fct_ms']:.1f}",
                f"{100 * row['rto_incidence']:.1f}%",
                f"{100 * row['tail_over_200ms']:.1f}%",
                f"{100 * row['completion_rate']:.1f}%",
                f"{row['long_throughput_mbps']:.1f}",
            ]
            for row in rows
        ],
    ))

    grouped = points_by_protocol(points)
    print("\nShort-flow completion-time CDFs at the highest load:")
    for protocol, series in grouped.items():
        heaviest = series[-1]
        fct_ms = heaviest.result.metrics.short_flow_fct_ms()
        print(f"\n{protocol} (load {heaviest.load_factor:.1f}x, "
              f"{len(fct_ms)} completed short flows)")
        print(ascii_cdf(fct_ms, label="completion time (ms)"))


if __name__ == "__main__":
    main()
