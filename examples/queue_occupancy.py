#!/usr/bin/env python3
"""Queue build-up during an incast burst: TCP vs MMPTCP's packet scatter.

The paper's introduction blames short-flow deadline misses on "queue
build-ups, buffer pressure and TCP Incast".  This example fires the same
synchronised 16-to-1 burst of 70 KB responses through a FatTree twice —
once with single-path TCP, once with MMPTCP (whose short responses stay in
the packet-scatter phase) — while a sampler records every switch queue's
occupancy each 0.5 ms.  It then prints where the packets piled up.

Run with:  python examples/queue_occupancy.py
"""

from __future__ import annotations

from repro.experiments import ExperimentConfig
from repro.experiments.incast_study import build_incast_workload_for
from repro.experiments.runner import build_topology, create_flow
from repro.metrics.reporting import render_table
from repro.metrics.timeseries import QueueOccupancySampler
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.sim.units import megabits_per_second
from repro.traffic import PROTOCOL_MMPTCP, PROTOCOL_TCP

FAN_IN = 16
RESPONSE_BYTES = 70_000


def run_burst(protocol: str):
    """Run one synchronised burst and return (sampler, completed, horizon)."""
    config = ExperimentConfig(
        fattree_k=4,
        hosts_per_edge=4,
        link_rate_bps=megabits_per_second(100),
        arrival_window_s=0.05,
        drain_time_s=2.0,
        protocol=protocol,
        num_subflows=8,
        initial_cwnd_segments=2,
        seed=5,
    )
    simulator = Simulator()
    streams = RandomStreams(config.seed)
    topology = build_topology(config, simulator)
    workload = build_incast_workload_for(config, FAN_IN, RESPONSE_BYTES, protocol)

    instances = []
    for spec in workload.flows:
        instance = create_flow(spec, config, topology, simulator, streams)
        instances.append(instance)
        simulator.schedule_at(spec.start_time, instance.sender.start)

    sampler = QueueOccupancySampler(simulator, topology.switches, interval_s=5e-4)
    sampler.start()
    simulator.run(until=config.horizon_s)
    completed = sum(1 for instance in instances if instance.receiver.complete)
    return sampler, completed, config.horizon_s


def main() -> None:
    print(f"Synchronised {FAN_IN}-to-1 incast of {RESPONSE_BYTES // 1000} KB responses "
          f"on a 4-ary FatTree\n")
    rows = []
    details = {}
    for protocol in (PROTOCOL_TCP, PROTOCOL_MMPTCP):
        sampler, completed, _ = run_burst(protocol)
        edge = sampler.layer_summary("edge")
        aggregation = sampler.layer_summary("aggregation")
        core = sampler.layer_summary("core")
        rows.append([
            protocol,
            f"{completed}/{FAN_IN}",
            edge.peak_packets,
            f"{edge.mean_packets:.1f}",
            aggregation.peak_packets,
            core.peak_packets,
        ])
        details[protocol] = sampler

    print(render_table(
        ["protocol", "responses delivered", "edge peak (pkts)", "edge mean (pkts)",
         "agg peak (pkts)", "core peak (pkts)"],
        rows,
    ))

    print("\nBusiest queues per protocol (switch, port, peak packets):")
    for protocol, sampler in details.items():
        print(f"  {protocol}:")
        for switch, port, peak in sampler.busiest_queues(top=3):
            print(f"    {switch:22s} port {port}  peak {peak} packets")
    print("\nThe receiver's own edge port is the incast bottleneck for every transport")
    print("(no spraying can widen a single downlink); the difference shows upstream,")
    print("where the scattered burst spreads its packets over more aggregation and")
    print("core queues instead of a single path per sender.")


if __name__ == "__main__":
    main()
