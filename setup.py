"""Setup shim: metadata lives in pyproject.toml ([project] table)."""
from setuptools import setup

setup()
