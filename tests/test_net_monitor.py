"""Tests for the network monitor (per-layer loss, utilisation, byte counts)."""

from __future__ import annotations

import pytest

from repro.net.monitor import LayerLossStats, NetworkMonitor, NetworkSnapshot
from repro.net.queues import DropTailQueue
from repro.sim.engine import Simulator
from repro.sim.units import megabits_per_second, microseconds
from repro.topology.simple import DumbbellTopology, IncastTopology
from repro.transport.base import TcpConfig
from repro.transport.receiver import TcpReceiver
from repro.transport.tcp import TcpSender


def _run_dumbbell(pairs: int = 3, flow_bytes: int = 300_000, queue_capacity: int = 20):
    """Several TCP flows through one bottleneck; returns (topology, duration)."""
    simulator = Simulator()
    topology = DumbbellTopology(
        simulator,
        pairs=pairs,
        bottleneck_rate_bps=megabits_per_second(50),
        access_rate_bps=megabits_per_second(500),
        link_delay_s=microseconds(50),
        queue_factory=lambda: DropTailQueue(capacity_packets=queue_capacity),
    )
    config = TcpConfig(mss=1000, initial_cwnd_segments=2)
    for index in range(pairs):
        receiver_host = topology.receivers[index]
        TcpReceiver(simulator, receiver_host, local_port=5001, flow_id=index,
                    expected_bytes=flow_bytes)
        sender = TcpSender(simulator, topology.senders[index], receiver_host.address, 5001,
                           flow_bytes, flow_id=index, config=config)
        sender.start()
    duration = 5.0
    simulator.run(until=duration)
    return topology, duration


# ---------------------------------------------------------------------------
# LayerLossStats / NetworkSnapshot basics
# ---------------------------------------------------------------------------


def test_layer_loss_rate_zero_without_traffic() -> None:
    stats = LayerLossStats(layer="core")
    assert stats.loss_rate == 0.0


def test_layer_loss_rate_fraction() -> None:
    stats = LayerLossStats(layer="edge", offered_packets=200, dropped_packets=10)
    assert stats.loss_rate == pytest.approx(0.05)


def test_snapshot_loss_rate_for_missing_layer_is_zero() -> None:
    snapshot = NetworkSnapshot(duration_s=1.0)
    assert snapshot.loss_rate("aggregation") == 0.0


# ---------------------------------------------------------------------------
# Monitor over real simulations
# ---------------------------------------------------------------------------


def test_monitor_reports_traffic_and_bounded_utilisation() -> None:
    topology, duration = _run_dumbbell()
    snapshot = topology.monitor().snapshot(duration)
    assert snapshot.total_bytes_carried > 0
    assert 0.0 <= snapshot.edge_utilisation <= 1.0
    assert 0.0 <= snapshot.core_utilisation <= 1.0
    # The dumbbell only has edge-layer switches, so the edge stats exist.
    assert "edge" in snapshot.layer_loss
    assert snapshot.layer_loss["edge"].offered_packets > 0


def test_monitor_counts_drops_when_bottleneck_queue_is_tiny() -> None:
    congested_topology, duration = _run_dumbbell(pairs=4, queue_capacity=5)
    congested = congested_topology.monitor().snapshot(duration)
    # A five-packet bottleneck buffer shared by four flows must drop, and the
    # drops must be attributed to the (edge-layer) switch queues.
    assert congested.total_packets_dropped > 0
    assert congested.loss_rate("edge") > 0.0
    assert congested.layer_loss["edge"].dropped_packets > 0
    assert congested.layer_loss["edge"].dropped_bytes > 0


def test_monitor_snapshot_consistency_between_loss_fields() -> None:
    topology, duration = _run_dumbbell(pairs=4, queue_capacity=5)
    snapshot = topology.monitor().snapshot(duration)
    switch_drops = sum(stats.dropped_packets for stats in snapshot.layer_loss.values())
    # Total drops include host uplink queues as well, so they can only exceed
    # the switch-layer sum.
    assert snapshot.total_packets_dropped >= switch_drops


def test_host_drop_counts_covers_every_host() -> None:
    simulator = Simulator()
    topology = IncastTopology(simulator, fan_in=4)
    monitor = NetworkMonitor(topology.hosts, topology.switches)
    counts = monitor.host_drop_counts()
    assert set(counts) == {host.name for host in topology.hosts}
    assert all(value == 0 for value in counts.values())
