"""Tests for the reusable-timer subsystem and event-heap hygiene.

The centrepiece is a hypothesis property: for any interleaving of
arm/re-arm/cancel operations, timers backed by the hierarchical wheel fire
in exactly the same order (and at the same times) as the same program
expressed with naive ``schedule``/``cancel`` heap events.  That equivalence
is what lets the transport stack switch to timers without perturbing golden
traces.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.timerwheel import TimerWheel

# ---------------------------------------------------------------------------
# Timer handle basics
# ---------------------------------------------------------------------------


class TestTimerHandle:
    def test_unarmed_timer_state(self, simulator: Simulator) -> None:
        timer = simulator.timer(lambda: None)
        assert not timer.armed
        assert timer.when is None

    def test_arm_fires_once_with_args(self, simulator: Simulator) -> None:
        received = []
        timer = simulator.timer(lambda a, b: received.append((a, b)))
        timer.arm(0.5, 7, "x")
        assert timer.armed
        assert timer.when == 0.5
        simulator.run()
        assert received == [(7, "x")]
        assert not timer.armed
        assert simulator.events_processed == 1

    def test_rearm_replaces_previous_deadline(self, simulator: Simulator) -> None:
        fired = []
        timer = simulator.timer(lambda: fired.append(simulator.now))
        timer.arm(1.0)
        timer.arm(2.0)  # replaces, never fires at 1.0
        simulator.run()
        assert fired == [2.0]

    def test_cancel_prevents_firing_and_is_idempotent(self, simulator: Simulator) -> None:
        fired = []
        timer = simulator.timer(lambda: fired.append("fired"))
        timer.arm(1.0)
        timer.cancel()
        timer.cancel()
        assert not timer.armed
        simulator.run(until=5.0)
        assert fired == []

    def test_cancelled_timer_can_be_rearmed(self, simulator: Simulator) -> None:
        fired = []
        timer = simulator.timer(lambda: fired.append(simulator.now))
        timer.arm(1.0)
        timer.cancel()
        timer.arm(3.0)
        simulator.run()
        assert fired == [3.0]

    def test_negative_delay_rejected(self, simulator: Simulator) -> None:
        timer = simulator.timer(lambda: None)
        with pytest.raises(SimulationError):
            timer.arm(-0.1)

    def test_arm_at_in_the_past_rejected(self, simulator: Simulator) -> None:
        simulator.schedule(1.0, lambda: None)
        simulator.run()
        timer = simulator.timer(lambda: None)
        with pytest.raises(SimulationError):
            timer.arm_at(0.5)

    def test_self_rearming_timer_is_periodic(self, simulator: Simulator) -> None:
        fired = []
        timer = simulator.timer(lambda: None)

        def tick() -> None:
            fired.append(simulator.now)
            if len(fired) < 3:
                timer.arm(0.5)

        timer.callback = tick
        timer.arm(0.5)
        simulator.run()
        assert fired == [0.5, 1.0, 1.5]

    def test_reset_disarms_timers_but_handles_stay_usable(
        self, simulator: Simulator
    ) -> None:
        fired = []
        timer = simulator.timer(lambda: fired.append(simulator.now))
        timer.arm(1.0)
        simulator.reset()
        assert not timer.armed
        assert simulator.pending_events() == 0
        timer.arm(2.0)
        simulator.run()
        assert fired == [2.0]


# ---------------------------------------------------------------------------
# Ordering across the heap and the wheel
# ---------------------------------------------------------------------------


class TestTimerEventOrdering:
    def test_fifo_order_among_same_time_events_and_timers(
        self, simulator: Simulator
    ) -> None:
        order: List[str] = []
        simulator.schedule(1.0, lambda: order.append("event-a"))
        simulator.timer(lambda: order.append("timer")).arm(1.0)
        simulator.schedule(1.0, lambda: order.append("event-b"))
        simulator.run()
        assert order == ["event-a", "timer", "event-b"]

    def test_ordering_across_wheel_levels(self, simulator: Simulator) -> None:
        # Deadlines land in level 0 (<0.256s), level 1 (<65.5s) and the
        # overflow heap; they must still interleave correctly with heap
        # events regardless of which structure holds them.
        order: List[float] = []

        def log() -> None:
            order.append(simulator.now)

        simulator.timer(log).arm(100.0)  # overflow
        simulator.timer(log).arm(30.0)  # level 1
        simulator.timer(log).arm(0.1)  # level 0
        simulator.schedule(50.0, log)  # plain heap event
        simulator.timer(log).arm(0.1005)  # same level-0 slot as 0.1
        simulator.run()
        assert order == [0.1, 0.1005, 30.0, 50.0, 100.0]

    def test_timer_armed_by_callback_into_current_instant(
        self, simulator: Simulator
    ) -> None:
        order: List[str] = []
        timer = simulator.timer(lambda: order.append("timer"))
        simulator.schedule(1.0, lambda: timer.arm(0.0))
        simulator.schedule(1.0, lambda: order.append("later-event"))
        simulator.run()
        # The zero-delay arm gets a later sequence than the already-queued
        # event at the same instant, so it fires after it — exactly the
        # FIFO rule raw events follow.
        assert order == ["later-event", "timer"]

    def test_until_horizon_applies_to_timers(self, simulator: Simulator) -> None:
        fired = []
        simulator.timer(lambda: fired.append("late")).arm(5.0)
        simulator.run(until=2.0)
        assert fired == []
        assert simulator.now == 2.0
        simulator.run(until=10.0)
        assert fired == ["late"]

    def test_pending_events_and_peek_include_timers(self, simulator: Simulator) -> None:
        simulator.schedule(3.0, lambda: None)
        timer = simulator.timer(lambda: None)
        timer.arm(1.0)
        assert simulator.pending_events() == 2
        assert simulator.peek_next_time() == 1.0
        timer.cancel()
        assert simulator.pending_events() == 1
        assert simulator.peek_next_time() == 3.0


# ---------------------------------------------------------------------------
# Property: wheel timers == naive heap timers, for any interleaving
# ---------------------------------------------------------------------------

#: Delay grid mixing sub-slot, slot-scale, level-1 and overflow horizons;
#: repeated values force exact-time ties so FIFO ordering is exercised.
_DELAYS = st.sampled_from(
    [0.0, 1e-6, 1e-4, 5e-4, 1e-3, 0.01, 0.2, 0.2, 0.255, 0.3, 1.0, 30.0, 70.0]
) | st.floats(min_value=0.0, max_value=80.0, allow_nan=False, width=32)

#: One program step: (timer index, "arm" delay or None for cancel).
_OPS = st.lists(
    st.tuples(st.integers(0, 5), st.one_of(st.none(), _DELAYS), _DELAYS),
    min_size=1,
    max_size=40,
)


def _run_program(
    ops: List[Tuple[int, Optional[float], float]], use_wheel: bool
) -> Tuple[List[Tuple[int, float]], float, int]:
    """Execute a timer program and return (firing log, final now, events)."""
    simulator = Simulator()
    log: List[Tuple[int, float]] = []
    timer_count = 6

    if use_wheel:
        timers = [
            simulator.timer(lambda i=i: log.append((i, simulator.now)))
            for i in range(timer_count)
        ]

        def apply(index: int, delay: Optional[float]) -> None:
            if delay is None:
                timers[index].cancel()
            else:
                timers[index].arm(delay)

    else:
        events: List[Optional[Event]] = [None] * timer_count

        def apply(index: int, delay: Optional[float]) -> None:
            if delay is None:
                simulator.cancel(events[index])
                events[index] = None
            else:
                # Naive re-arm: cancel + schedule consumes one sequence
                # number, exactly like Timer.arm.
                simulator.cancel(events[index])
                events[index] = simulator.schedule(
                    delay, lambda i=index: log.append((i, simulator.now))
                )

    driver_time = 0.0
    for index, delay, driver_delay in ops:
        driver_time += driver_delay
        simulator.schedule_at(driver_time, apply, index, delay)
    simulator.run()
    return log, simulator.now, simulator.events_processed


@settings(max_examples=120, deadline=None)
@given(ops=_OPS)
def test_wheel_timers_match_naive_heap_for_any_interleaving(
    ops: List[Tuple[int, Optional[float], float]]
) -> None:
    wheel_log, wheel_now, wheel_events = _run_program(ops, use_wheel=True)
    naive_log, naive_now, naive_events = _run_program(ops, use_wheel=False)
    assert wheel_log == naive_log
    assert wheel_now == naive_now
    assert wheel_events == naive_events


# ---------------------------------------------------------------------------
# Hygiene: heap compaction and wheel sweeps under churn
# ---------------------------------------------------------------------------


class TestCancellationHygiene:
    def test_heap_compacts_once_cancelled_fraction_exceeds_half(self) -> None:
        simulator = Simulator()
        fired: List[float] = []
        events = [
            simulator.schedule(1.0 + index * 1e-6, lambda: fired.append(simulator.now))
            for index in range(10_000)
        ]
        for event in events[1_000:]:
            simulator.cancel(event)
        # The physical queue must have been rebuilt, not left 90% dead.
        assert simulator.heap_compactions >= 1
        assert len(simulator._queue) < 2_000
        assert simulator.pending_events() == 1_000
        assert simulator.peek_next_time() == 1.0
        simulator.run()
        assert len(fired) == 1_000
        assert fired == sorted(fired)

    def test_peek_next_time_skips_cancelled_without_sorting(self) -> None:
        simulator = Simulator()
        keep = simulator.schedule(5.0, lambda: None)
        doomed = [simulator.schedule(1.0 + index * 1e-3, lambda: None) for index in range(50)]
        for event in doomed:
            simulator.cancel(event)
        assert simulator.peek_next_time() == keep.time

    def test_wheel_sweeps_stale_entries_from_rearm_churn(self) -> None:
        simulator = Simulator()
        fired: List[float] = []
        timer = simulator.timer(lambda: fired.append(simulator.now))
        for index in range(10_000):
            timer.arm(0.2 + index * 1e-5)
        wheel = simulator._wheel
        assert wheel.live_count == 1
        assert wheel.sweeps >= 1
        # Stale entries from 10k re-arms must not accumulate.
        assert wheel.physical_size() < 500
        simulator.run()
        assert fired == [pytest.approx(0.2 + 9_999 * 1e-5)]
        # Regression: a sweep triggered mid-arm used to leak one uncounted
        # stale entry per sweep, driving the counter negative over time.
        assert wheel.stale_entries == 0

    def test_wheel_sweep_with_many_live_timers(self) -> None:
        simulator = Simulator()
        fired: List[int] = []
        timers = [
            simulator.timer(lambda i=i: fired.append(i)) for i in range(100)
        ]
        for round_no in range(100):
            for timer in timers:
                timer.arm(0.2 + round_no * 1e-4)
        wheel = simulator._wheel
        assert wheel.live_count == 100
        assert wheel.physical_size() < 20_000  # 10k arms, garbage swept
        simulator.run()
        assert sorted(fired) == list(range(100))
        assert len(fired) == 100

    def test_cancel_via_event_handle_still_correct(self) -> None:
        # Cancelling through Event.cancel() bypasses the compaction
        # accounting but must stay behaviourally correct (lazy skip).
        simulator = Simulator()
        fired: List[str] = []
        doomed = simulator.schedule(1.0, lambda: fired.append("doomed"))
        simulator.schedule(2.0, lambda: fired.append("kept"))
        doomed.cancel()
        simulator.run()
        assert fired == ["kept"]


# ---------------------------------------------------------------------------
# TimerWheel construction contracts
# ---------------------------------------------------------------------------


class TestTimerWheelValidation:
    def test_rejects_bad_parameters(self) -> None:
        with pytest.raises(ValueError):
            TimerWheel(tick=0.0)
        with pytest.raises(ValueError):
            TimerWheel(slots_per_level=1)

    def test_pop_from_empty_wheel_raises(self) -> None:
        with pytest.raises(IndexError):
            TimerWheel().pop()
