"""Tests for MPTCP: subflows, data scheduling, LIA coupling and completion."""

from __future__ import annotations

import pytest

from repro.net.queues import DropTailQueue
from repro.sim.engine import Simulator
from repro.sim.units import megabits_per_second
from repro.topology.simple import TwoHostTopology, TwoPathTopology
from repro.transport.base import TcpConfig
from repro.transport.cc.lia import LiaController
from repro.transport.mptcp import MptcpConnection, MptcpReceiver
from repro.transport.scheduler import LowestRttScheduler, RoundRobinScheduler

TEST_CONFIG = TcpConfig(mss=1000, initial_cwnd_segments=2)


def _run_mptcp(size: int, subflows: int, paths: int = 4, queue_packets: int = 100,
               until: float = 30.0):
    simulator = Simulator()
    topology = TwoPathTopology(
        simulator, paths=paths,
        queue_factory=lambda: DropTailQueue(capacity_packets=queue_packets),
    )
    receiver = MptcpReceiver(simulator, topology.receiver, local_port=5001,
                             expected_bytes=size)
    connection = MptcpConnection(simulator, topology.sender, topology.receiver.address, 5001,
                                 size, num_subflows=subflows, config=TEST_CONFIG)
    connection.start()
    simulator.run(until=until)
    return connection, receiver, topology


class TestBasicOperation:
    def test_transfer_completes_with_multiple_subflows(self) -> None:
        connection, receiver, _ = _run_mptcp(300_000, subflows=4)
        assert connection.complete
        assert receiver.complete
        assert receiver.bytes_received_in_order == 300_000

    def test_every_byte_allocated_exactly_once(self) -> None:
        connection, receiver, _ = _run_mptcp(100_000, subflows=3)
        allocated = sum(subflow.allocated_bytes for subflow in connection.subflows)
        assert allocated == 100_000
        # DSN ranges must tile the stream without overlap.
        ranges = []
        for subflow in connection.subflows:
            ranges.extend((dsn, dsn + size) for dsn, size in subflow._segments.values())
        ranges.sort()
        cursor = 0
        for start, end in ranges:
            assert start == cursor
            cursor = end
        assert cursor == 100_000

    def test_multiple_subflows_carry_data(self) -> None:
        connection, _, _ = _run_mptcp(400_000, subflows=4)
        carrying = [s for s in connection.subflows if s.allocated_bytes > 0]
        assert len(carrying) >= 2

    def test_subflows_use_distinct_source_ports_and_paths(self) -> None:
        connection, _, topology = _run_mptcp(400_000, subflows=4, paths=4)
        ports = {subflow.local_port for subflow in connection.subflows}
        assert len(ports) == 4
        used_paths = [s for s in topology.core_switches if s.forwarded_packets > 0]
        assert len(used_paths) >= 2

    def test_single_subflow_mptcp_degenerates_to_tcp_like_behaviour(self) -> None:
        connection, receiver, _ = _run_mptcp(100_000, subflows=1)
        assert connection.complete
        assert connection.subflows[0].allocated_bytes == 100_000

    def test_aggregate_stats_sum_subflows(self) -> None:
        connection, _, _ = _run_mptcp(200_000, subflows=3)
        stats = connection.aggregate_stats()
        assert stats.data_packets_sent == sum(
            s.stats.data_packets_sent for s in connection.subflows
        )
        assert stats.completion_time == connection.completion_time

    def test_validation(self) -> None:
        simulator = Simulator()
        topology = TwoHostTopology(simulator)
        with pytest.raises(ValueError):
            MptcpConnection(simulator, topology.sender, topology.receiver.address, 5001,
                            1000, num_subflows=0)
        with pytest.raises(ValueError):
            MptcpConnection(simulator, topology.sender, topology.receiver.address, 5001,
                            -5, num_subflows=2)


class TestLossRecovery:
    def test_recovers_from_congestion_on_narrow_queues(self) -> None:
        connection, receiver, _ = _run_mptcp(400_000, subflows=4, queue_packets=8,
                                             until=60.0)
        assert receiver.complete
        stats = connection.aggregate_stats()
        assert stats.retransmitted_packets > 0

    def test_thin_subflow_windows_suffer_rtos_for_short_flows(self) -> None:
        # 8 subflows for a 70 KB flow leaves ~6 packets per subflow; with a
        # lossy bottleneck some subflows cannot raise 3 dup-ACKs and must wait
        # for the retransmission timer — the pathology motivating MMPTCP.
        # With a generous queue the same flow finishes without any timeout.
        lossy, lossy_recv, _ = _run_mptcp(70_000, subflows=8, paths=1, queue_packets=3,
                                          until=60.0)
        clean, clean_recv, _ = _run_mptcp(70_000, subflows=8, paths=4, queue_packets=100,
                                          until=60.0)
        assert lossy_recv.complete and clean_recv.complete
        assert clean.aggregate_stats().rto_events == 0
        assert lossy.completion_time > clean.completion_time


class TestLiaCoupling:
    def test_lia_increase_never_exceeds_uncoupled_newreno(self) -> None:
        connection, _, _ = _run_mptcp(100_000, subflows=2)
        subflow = connection.subflows[0]
        controller = LiaController(connection)
        subflow.ssthresh = 1.0  # force congestion-avoidance branch
        before = subflow.cwnd
        controller.on_ack(subflow, subflow.mss)
        coupled_increase = subflow.cwnd - before
        subflow.cwnd = before
        uncoupled_increase = subflow.mss * subflow.mss / before
        assert coupled_increase <= uncoupled_increase + 1e-9

    def test_lia_slow_start_matches_newreno(self) -> None:
        connection, _, _ = _run_mptcp(50_000, subflows=2)
        subflow = connection.subflows[0]
        controller = LiaController(connection)
        subflow.ssthresh = 1e9
        before = subflow.cwnd
        controller.on_ack(subflow, subflow.mss)
        assert subflow.cwnd == pytest.approx(before + subflow.mss)

    def test_alpha_computation_handles_empty_connection(self) -> None:
        simulator = Simulator()
        topology = TwoHostTopology(simulator)
        connection = MptcpConnection(simulator, topology.sender, topology.receiver.address,
                                     5001, 10_000, num_subflows=2, config=TEST_CONFIG)
        controller = LiaController(connection)
        assert controller._coupled_alpha() > 0.0


class TestSchedulers:
    def test_round_robin_rotates(self) -> None:
        scheduler = RoundRobinScheduler()
        items = ["a", "b", "c"]
        first = scheduler.order(items)
        second = scheduler.order(items)
        assert sorted(first) == items
        assert first != second

    def test_lowest_rtt_prefers_fast_subflow(self) -> None:
        connection, _, _ = _run_mptcp(50_000, subflows=2)
        fast, slow = connection.subflows
        fast.rto_estimator.add_sample(0.001)
        slow.rto_estimator.add_sample(0.050)
        ordered = LowestRttScheduler().order([slow, fast])
        assert ordered[0] is fast

    def test_round_robin_empty_input(self) -> None:
        assert RoundRobinScheduler().order([]) == []


class TestReceiver:
    def test_reordering_events_counted(self) -> None:
        connection, receiver, _ = _run_mptcp(300_000, subflows=4, queue_packets=10,
                                             until=60.0)
        assert receiver.complete
        # Out-of-order arrivals at the data level are expected once losses and
        # multiple subflows are involved; the counter must be non-negative and
        # consistent with the per-subflow buffers.
        assert receiver.reordering_events >= 0
        assert receiver.data_packets_received >= 300_000 // TEST_CONFIG.mss

    def test_receiver_tracks_one_buffer_per_subflow(self) -> None:
        connection, receiver, _ = _run_mptcp(200_000, subflows=3)
        active = [s for s in connection.subflows if s.stats.data_packets_sent > 0]
        assert set(receiver.subflow_buffers.keys()) >= {s.subflow_id for s in active}
