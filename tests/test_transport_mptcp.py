"""Tests for MPTCP: subflows, data scheduling, LIA coupling and completion."""

from __future__ import annotations

import pytest

from repro.net.queues import DropTailQueue
from repro.sim.engine import Simulator
from repro.sim.units import microseconds, milliseconds
from repro.topology.dualhomed import DualHomedFatTreeTopology
from repro.topology.fattree import FatTreeParams
from repro.topology.simple import TwoHostTopology, TwoPathTopology
from repro.transport.base import TcpConfig
from repro.transport.cc.lia import LiaController
from repro.transport.mptcp import MptcpConnection, MptcpReceiver
from repro.transport.path_manager import make_path_manager
from repro.transport.scheduler import (
    LowestRttScheduler,
    RoundRobinScheduler,
    make_scheduler,
)

TEST_CONFIG = TcpConfig(mss=1000, initial_cwnd_segments=2)

#: Per-path one-way hop delays for the asymmetric two-path fabric: path 0 is
#: an order of magnitude shorter than path 1 (and later paths), so an
#: RTT-aware scheduler has a clear favourite.
ASYMMETRIC_DELAYS = (microseconds(50), milliseconds(2), milliseconds(4), milliseconds(8))


def _run_mptcp(size: int, subflows: int, paths: int = 4, queue_packets: int = 100,
               until: float = 30.0, scheduler: str | None = None,
               asymmetric: bool = False):
    simulator = Simulator()
    topology = TwoPathTopology(
        simulator, paths=paths,
        path_delays=ASYMMETRIC_DELAYS[:paths] if asymmetric else None,
        queue_factory=lambda: DropTailQueue(capacity_packets=queue_packets),
    )
    receiver = MptcpReceiver(simulator, topology.receiver, local_port=5001,
                             expected_bytes=size)
    connection = MptcpConnection(
        simulator, topology.sender, topology.receiver.address, 5001,
        size, num_subflows=subflows, config=TEST_CONFIG,
        scheduler=make_scheduler(scheduler) if scheduler is not None else None,
    )
    connection.start()
    simulator.run(until=until)
    return connection, receiver, topology


class TestBasicOperation:
    def test_transfer_completes_with_multiple_subflows(self) -> None:
        connection, receiver, _ = _run_mptcp(300_000, subflows=4)
        assert connection.complete
        assert receiver.complete
        assert receiver.bytes_received_in_order == 300_000

    @pytest.mark.parametrize("scheduler", ["fcfs", "round_robin", "lowest_rtt"])
    def test_every_byte_allocated_exactly_once(self, scheduler: str) -> None:
        connection, receiver, _ = _run_mptcp(100_000, subflows=3, scheduler=scheduler)
        allocated = sum(subflow.allocated_bytes for subflow in connection.subflows)
        assert allocated == 100_000
        # DSN ranges must tile the stream without overlap.
        ranges = []
        for subflow in connection.subflows:
            ranges.extend((dsn, dsn + size) for dsn, size in subflow._segments.values())
        ranges.sort()
        cursor = 0
        for start, end in ranges:
            assert start == cursor
            cursor = end
        assert cursor == 100_000

    def test_multiple_subflows_carry_data(self) -> None:
        connection, _, _ = _run_mptcp(400_000, subflows=4)
        carrying = [s for s in connection.subflows if s.allocated_bytes > 0]
        assert len(carrying) >= 2

    def test_subflows_use_distinct_source_ports_and_paths(self) -> None:
        connection, _, topology = _run_mptcp(400_000, subflows=4, paths=4)
        ports = {subflow.local_port for subflow in connection.subflows}
        assert len(ports) == 4
        used_paths = [s for s in topology.core_switches if s.forwarded_packets > 0]
        assert len(used_paths) >= 2

    def test_single_subflow_mptcp_degenerates_to_tcp_like_behaviour(self) -> None:
        connection, receiver, _ = _run_mptcp(100_000, subflows=1)
        assert connection.complete
        assert connection.subflows[0].allocated_bytes == 100_000

    def test_aggregate_stats_sum_subflows(self) -> None:
        connection, _, _ = _run_mptcp(200_000, subflows=3)
        stats = connection.aggregate_stats()
        assert stats.data_packets_sent == sum(
            s.stats.data_packets_sent for s in connection.subflows
        )
        assert stats.completion_time == connection.completion_time

    def test_validation(self) -> None:
        simulator = Simulator()
        topology = TwoHostTopology(simulator)
        with pytest.raises(ValueError):
            MptcpConnection(simulator, topology.sender, topology.receiver.address, 5001,
                            1000, num_subflows=0)
        with pytest.raises(ValueError):
            MptcpConnection(simulator, topology.sender, topology.receiver.address, 5001,
                            -5, num_subflows=2)


class TestLossRecovery:
    def test_recovers_from_congestion_on_narrow_queues(self) -> None:
        connection, receiver, _ = _run_mptcp(400_000, subflows=4, queue_packets=8,
                                             until=60.0)
        assert receiver.complete
        stats = connection.aggregate_stats()
        assert stats.retransmitted_packets > 0

    def test_thin_subflow_windows_suffer_rtos_for_short_flows(self) -> None:
        # 8 subflows for a 70 KB flow leaves ~6 packets per subflow; with a
        # lossy bottleneck some subflows cannot raise 3 dup-ACKs and must wait
        # for the retransmission timer — the pathology motivating MMPTCP.
        # With a generous queue the same flow finishes without any timeout.
        lossy, lossy_recv, _ = _run_mptcp(70_000, subflows=8, paths=1, queue_packets=3,
                                          until=60.0)
        clean, clean_recv, _ = _run_mptcp(70_000, subflows=8, paths=4, queue_packets=100,
                                          until=60.0)
        assert lossy_recv.complete and clean_recv.complete
        assert clean.aggregate_stats().rto_events == 0
        assert lossy.completion_time > clean.completion_time


class TestLiaCoupling:
    def test_lia_increase_never_exceeds_uncoupled_newreno(self) -> None:
        connection, _, _ = _run_mptcp(100_000, subflows=2)
        subflow = connection.subflows[0]
        controller = LiaController(connection)
        subflow.ssthresh = 1.0  # force congestion-avoidance branch
        before = subflow.cwnd
        controller.on_ack(subflow, subflow.mss)
        coupled_increase = subflow.cwnd - before
        subflow.cwnd = before
        uncoupled_increase = subflow.mss * subflow.mss / before
        assert coupled_increase <= uncoupled_increase + 1e-9

    def test_lia_slow_start_matches_newreno(self) -> None:
        connection, _, _ = _run_mptcp(50_000, subflows=2)
        subflow = connection.subflows[0]
        controller = LiaController(connection)
        subflow.ssthresh = 1e9
        before = subflow.cwnd
        controller.on_ack(subflow, subflow.mss)
        assert subflow.cwnd == pytest.approx(before + subflow.mss)

    def test_alpha_computation_handles_empty_connection(self) -> None:
        simulator = Simulator()
        topology = TwoHostTopology(simulator)
        connection = MptcpConnection(simulator, topology.sender, topology.receiver.address,
                                     5001, 10_000, num_subflows=2, config=TEST_CONFIG)
        controller = LiaController(connection)
        assert controller._coupled_alpha() > 0.0


def _allocations(connection) -> tuple:
    return tuple(subflow.allocated_bytes for subflow in connection.subflows)


class TestSchedulers:
    def test_lowest_rtt_prefers_fast_subflow(self) -> None:
        connection, _, _ = _run_mptcp(50_000, subflows=2)
        fast, slow = connection.subflows
        fast.rto_estimator.add_sample(0.001)
        slow.rto_estimator.add_sample(0.050)
        ordered = LowestRttScheduler().order([slow, fast])
        assert ordered[0] is fast

    def test_round_robin_empty_input(self) -> None:
        assert RoundRobinScheduler().order([]) == []

    def test_scheduler_choice_changes_allocation_on_asymmetric_paths(self) -> None:
        # The dead-scheduler regression test: with the scheduler actually
        # wired into allocation, round_robin and lowest_rtt must place the
        # stream differently (and differently from the FCFS default).
        by_scheduler = {}
        for name in ("fcfs", "round_robin", "lowest_rtt"):
            connection, receiver, _ = _run_mptcp(
                120_000, subflows=3, paths=3, asymmetric=True, scheduler=name)
            assert receiver.complete, name
            by_scheduler[name] = _allocations(connection)
        assert by_scheduler["round_robin"] != by_scheduler["lowest_rtt"]
        assert by_scheduler["fcfs"] != by_scheduler["lowest_rtt"]

    def test_lowest_rtt_shifts_allocation_toward_the_short_path(self) -> None:
        connection, receiver, _ = _run_mptcp(
            150_000, subflows=3, paths=3, asymmetric=True, scheduler="lowest_rtt")
        assert receiver.complete
        allocations = _allocations(connection)
        by_rtt = sorted(
            connection.subflows, key=lambda s: s.rto_estimator.smoothed_rtt)
        # The lowest-RTT subflow must carry a strict majority of the stream.
        assert by_rtt[0].allocated_bytes > sum(allocations) / 2

    def test_round_robin_spreads_more_evenly_than_lowest_rtt(self) -> None:
        spreads = {}
        for name in ("round_robin", "lowest_rtt"):
            connection, receiver, _ = _run_mptcp(
                150_000, subflows=3, paths=3, asymmetric=True, scheduler=name)
            assert receiver.complete
            allocations = _allocations(connection)
            spreads[name] = max(allocations) - min(allocations)
        assert spreads["round_robin"] < spreads["lowest_rtt"]

    def test_round_robin_spreads_chunks_evenly_on_symmetric_paths(self) -> None:
        # Strict rotation hands out chunks in turn, so on loss-free symmetric
        # paths every subflow ends up with an (almost) equal share — unlike
        # FCFS, where the first-established subflow races ahead.
        connection, receiver, _ = _run_mptcp(
            60_000, subflows=3, paths=3, scheduler="round_robin")
        assert receiver.complete
        allocations = _allocations(connection)
        assert all(bytes_ > 0 for bytes_ in allocations)
        assert max(allocations) - min(allocations) <= 4 * TEST_CONFIG.mss

    def test_redundant_scheduler_duplicates_unacked_data(self) -> None:
        connection, receiver, _ = _run_mptcp(60_000, subflows=3, scheduler="redundant")
        assert connection.complete
        assert receiver.complete
        assert receiver.bytes_received_in_order == 60_000
        # Every subflow walks the stream from the start, so the total mapped
        # bytes strictly exceed the stream (that is the redundancy).
        assert sum(_allocations(connection)) > 60_000
        # Each subflow's own mapping never overlaps itself and is in order.
        for subflow in connection.subflows:
            ranges = sorted((dsn, dsn + size) for dsn, size in subflow._segments.values())
            for (_, end), (start, _) in zip(ranges, ranges[1:]):
                assert start >= end
        # The receiver observed the duplication.
        assert receiver.data_buffer.duplicate_bytes > 0

    def test_redundant_cursor_skips_already_acked_data(self) -> None:
        # A subflow allocating behind the data-level ACK point must jump its
        # cursor forward: re-mapping delivered bytes would be pure waste.
        simulator = Simulator()
        topology = TwoHostTopology(simulator)
        connection = MptcpConnection(
            simulator, topology.sender, topology.receiver.address, 5001,
            100_000, num_subflows=2, config=TEST_CONFIG,
            scheduler=make_scheduler("redundant"))
        lagging = connection.subflows[1]
        connection.data_acked = 50_000
        assert connection.allocate_chunk(lagging) == (50_000, TEST_CONFIG.mss)
        # The cursor now advances normally from the jump point.
        assert connection.allocate_chunk(lagging) == (51_000, TEST_CONFIG.mss)


class TestFullMeshPathManager:
    def test_one_pinned_subflow_per_interface_on_dualhomed_hosts(self) -> None:
        simulator = Simulator()
        topology = DualHomedFatTreeTopology(simulator, FatTreeParams(k=4))
        sender, receiver_host = topology.hosts[0], topology.hosts[-1]
        receiver = MptcpReceiver(simulator, receiver_host, local_port=5001,
                                 expected_bytes=120_000)
        connection = MptcpConnection(
            simulator, sender, receiver_host.address, 5001, 120_000,
            num_subflows=8, config=TEST_CONFIG,
            path_manager=make_path_manager("fullmesh"))
        # fullmesh ignores the configured count: one subflow per uplink,
        # each pinned to a distinct egress interface.
        assert len(connection.subflows) == len(sender.interfaces) == 2
        assert [s.egress_interface for s in connection.subflows] == [0, 1]
        connection.start()
        simulator.run(until=30.0)
        assert connection.complete
        assert receiver.complete
        assert all(s.allocated_bytes > 0 for s in connection.subflows)

    def test_fullmesh_refuses_interfaceless_hosts(self) -> None:
        simulator = Simulator()
        topology = TwoHostTopology(simulator)
        host = topology.sender
        host.interfaces.clear()
        with pytest.raises(RuntimeError):
            MptcpConnection(simulator, host, topology.receiver.address, 5001,
                            1000, num_subflows=2, config=TEST_CONFIG,
                            path_manager=make_path_manager("fullmesh"))


class TestAggregateStats:
    def test_established_time_is_earliest_subflow_handshake(self) -> None:
        connection, _, _ = _run_mptcp(100_000, subflows=3)
        stats = connection.aggregate_stats()
        times = [s.stats.established_time for s in connection.subflows
                 if s.stats.established_time is not None]
        assert times, "subflows must have completed their handshakes"
        assert stats.established_time == min(times)

    def test_established_time_none_before_any_handshake(self) -> None:
        simulator = Simulator()
        topology = TwoHostTopology(simulator)
        connection = MptcpConnection(simulator, topology.sender, topology.receiver.address,
                                     5001, 10_000, num_subflows=2, config=TEST_CONFIG)
        assert connection.aggregate_stats().established_time is None


class TestReceiver:
    def test_reordering_events_counted(self) -> None:
        connection, receiver, _ = _run_mptcp(300_000, subflows=4, queue_packets=10,
                                             until=60.0)
        assert receiver.complete
        # Out-of-order arrivals at the data level are expected once losses and
        # multiple subflows are involved; the counter must be non-negative and
        # consistent with the per-subflow buffers.
        assert receiver.reordering_events >= 0
        assert receiver.data_packets_received >= 300_000 // TEST_CONFIG.mss

    def test_receiver_tracks_one_buffer_per_subflow(self) -> None:
        connection, receiver, _ = _run_mptcp(200_000, subflows=3)
        active = [s for s in connection.subflows if s.stats.data_packets_sent > 0]
        assert set(receiver.subflow_buffers.keys()) >= {s.subflow_id for s in active}
