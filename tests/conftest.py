"""Pytest fixtures for the test suite.

Shared non-fixture helpers live in :mod:`tests.support` (imported by test
modules as ``from support import ...``); keeping them out of this file means
no test depends on the bare ``conftest`` module name, which other conftest
files (e.g. the benchmark suite's) used to shadow.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator


@pytest.fixture
def simulator() -> Simulator:
    """A fresh simulator per test."""
    return Simulator()
