"""Tests for flow records, statistics, aggregation and report rendering."""

from __future__ import annotations

import pytest

from repro.metrics.collector import ExperimentMetrics
from repro.metrics.records import FlowRecord
from repro.metrics.reporting import (
    comparison_table,
    format_milliseconds,
    format_rate,
    format_throughput_mbps,
    render_table,
)
from repro.metrics.stats import (
    cdf_points,
    fraction_above,
    jains_fairness_index,
    percentile,
    summarize,
)
from repro.net.monitor import LayerLossStats, NetworkSnapshot


def _record(flow_id: int, fct_s: float = 0.05, is_long: bool = False, size: int = 70_000,
            rtos: int = 0, completed: bool = True, start: float = 1.0) -> FlowRecord:
    return FlowRecord(
        flow_id=flow_id,
        protocol="mptcp",
        size_bytes=size,
        is_long=is_long,
        start_time=start,
        receiver_completion_time=start + fct_s if completed else None,
        rto_events=rtos,
        bytes_received=size if completed else size // 2,
    )


class TestStats:
    def test_summarize_basic(self) -> None:
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0 and summary.maximum == 4.0
        assert summary.p50 == pytest.approx(2.5)

    def test_summarize_empty(self) -> None:
        summary = summarize([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_percentile_and_fraction(self) -> None:
        values = list(range(1, 101))
        assert percentile(values, 99) == pytest.approx(99.01)
        assert percentile([], 50) == 0.0
        assert fraction_above(values, 90) == pytest.approx(0.10)
        assert fraction_above([], 1) == 0.0

    def test_cdf_points_are_monotone(self) -> None:
        points = cdf_points([3.0, 1.0, 2.0])
        assert points == [(1.0, pytest.approx(1 / 3)), (2.0, pytest.approx(2 / 3)),
                          (3.0, pytest.approx(1.0))]
        assert cdf_points([]) == []

    def test_jains_fairness(self) -> None:
        assert jains_fairness_index([10.0, 10.0, 10.0]) == pytest.approx(1.0)
        assert jains_fairness_index([10.0, 0.0, 0.0]) == pytest.approx(1 / 3)
        assert jains_fairness_index([]) == 0.0


class TestFlowRecord:
    def test_completion_time_and_units(self) -> None:
        record = _record(1, fct_s=0.116)
        assert record.completed
        assert record.completion_time == pytest.approx(0.116)
        assert record.completion_time_ms == pytest.approx(116.0)

    def test_incomplete_flow(self) -> None:
        record = _record(2, completed=False)
        assert not record.completed
        assert record.completion_time is None
        assert record.completion_time_ms is None

    def test_throughput_for_completed_and_running_flows(self) -> None:
        completed = _record(1, fct_s=0.1, size=1_000_000)
        assert completed.throughput_bps() == pytest.approx(8e7)
        running = _record(2, completed=False, size=1_000_000, start=0.0)
        assert running.throughput_bps() == 0.0
        assert running.throughput_bps(horizon=4.0) == pytest.approx(1e6)

    def test_rto_flag(self) -> None:
        assert _record(1, rtos=2).experienced_rto
        assert not _record(1, rtos=0).experienced_rto


class TestExperimentMetrics:
    def _metrics(self) -> ExperimentMetrics:
        metrics = ExperimentMetrics(duration_s=2.0)
        metrics.flows = [
            _record(1, fct_s=0.050),
            _record(2, fct_s=0.100, rtos=1),
            _record(3, fct_s=0.300, rtos=2),
            _record(4, completed=False),
            _record(5, is_long=True, size=10_000_000, fct_s=1.5),
        ]
        snapshot = NetworkSnapshot(duration_s=2.0)
        snapshot.layer_loss["core"] = LayerLossStats("core", offered_packets=1000,
                                                     dropped_packets=10)
        snapshot.core_utilisation = 0.4
        metrics.network = snapshot
        return metrics

    def test_flow_views(self) -> None:
        metrics = self._metrics()
        assert len(metrics.short_flows) == 4
        assert len(metrics.long_flows) == 1
        assert len(metrics.completed_short_flows) == 3

    def test_fct_summary_in_milliseconds(self) -> None:
        metrics = self._metrics()
        summary = metrics.short_flow_fct_summary()
        assert summary.count == 3
        assert summary.mean == pytest.approx((50 + 100 + 300) / 3)

    def test_rates_and_incidence(self) -> None:
        metrics = self._metrics()
        assert metrics.short_flow_completion_rate() == pytest.approx(0.75)
        assert metrics.rto_incidence() == pytest.approx(0.5)
        assert metrics.tail_fraction(200.0) == pytest.approx(1 / 3)

    def test_network_quantities(self) -> None:
        metrics = self._metrics()
        assert metrics.loss_rate("core") == pytest.approx(0.01)
        assert metrics.loss_rate("aggregation") == 0.0
        assert metrics.core_utilisation() == pytest.approx(0.4)

    def test_long_flow_throughput(self) -> None:
        metrics = self._metrics()
        assert metrics.mean_long_flow_throughput_bps() > 0

    def test_scatter_and_summary_dict(self) -> None:
        metrics = self._metrics()
        points = metrics.completion_scatter()
        assert len(points) == 3
        assert {point["flow_id"] for point in points} == {1.0, 2.0, 3.0}
        summary = metrics.summary_dict()
        assert summary["short_flows"] == 4.0
        assert summary["rto_incidence"] == pytest.approx(0.5)
        assert summary["core_loss_rate"] == pytest.approx(0.01)

    def test_empty_metrics_do_not_divide_by_zero(self) -> None:
        metrics = ExperimentMetrics(duration_s=1.0)
        assert metrics.short_flow_completion_rate() == 0.0
        assert metrics.rto_incidence() == 0.0
        assert metrics.mean_long_flow_throughput_bps() == 0.0
        assert metrics.loss_rate("core") == 0.0
        assert metrics.short_flow_fct_summary().count == 0


class TestReporting:
    def test_render_table_alignment_and_content(self) -> None:
        table = render_table(["protocol", "mean"], [["mptcp", 126.0], ["mmptcp", 116.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "protocol" in lines[0]
        assert "mmptcp" in lines[3]
        assert all(line.startswith("|") for line in lines)

    def test_formatters(self) -> None:
        assert format_milliseconds(116.04) == "116.0 ms"
        assert format_rate(0.0123) == "1.23%"
        assert format_throughput_mbps(50_000_000) == "50.0 Mbps"

    def test_comparison_table(self) -> None:
        table = comparison_table(
            {"mptcp": {"mean": 126.0, "std": 425.0}, "mmptcp": {"mean": 116.0, "std": 101.0}},
            metrics=["mean", "std"],
        )
        assert "mptcp" in table and "mmptcp" in table
        assert "126.000" in table and "101.000" in table
