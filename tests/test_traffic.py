"""Tests for traffic matrices, arrival processes, flow specs and workloads."""

from __future__ import annotations

import random

import pytest

from repro.traffic.arrivals import poisson_arrivals, synchronized_arrivals, uniform_arrivals
from repro.traffic.flowspec import PROTOCOL_MMPTCP, PROTOCOL_MPTCP, FlowSpec
from repro.traffic.matrices import (
    hotspot_pairs,
    pair_counts_by_destination,
    permutation_pairs,
    random_pairs,
    stride_pairs,
)
from repro.traffic.workloads import (
    ShortLongWorkloadParams,
    build_hotspot_workload,
    build_incast_workload,
    build_short_long_workload,
)

HOSTS = [f"host-{index}" for index in range(24)]


class TestMatrices:
    def test_permutation_is_a_derangement(self) -> None:
        pairs = permutation_pairs(HOSTS, random.Random(1))
        assert len(pairs) == len(HOSTS)
        assert all(src != dst for src, dst in pairs)
        destinations = [dst for _, dst in pairs]
        assert sorted(destinations) == sorted(HOSTS)  # each host receives exactly once

    def test_permutation_deterministic_under_seed(self) -> None:
        assert permutation_pairs(HOSTS, random.Random(7)) == permutation_pairs(
            HOSTS, random.Random(7)
        )
        assert permutation_pairs(HOSTS, random.Random(7)) != permutation_pairs(
            HOSTS, random.Random(8)
        )

    def test_permutation_requires_two_hosts(self) -> None:
        with pytest.raises(ValueError):
            permutation_pairs(["only-one"], random.Random(1))

    def test_random_pairs_no_self_loops(self) -> None:
        pairs = random_pairs(HOSTS, 200, random.Random(3))
        assert len(pairs) == 200
        assert all(src != dst for src, dst in pairs)

    def test_stride_pairs(self) -> None:
        pairs = stride_pairs(["a", "b", "c", "d"], stride=2)
        assert pairs == [("a", "c"), ("b", "d"), ("c", "a"), ("d", "b")]
        with pytest.raises(ValueError):
            stride_pairs(["a", "b"], stride=2)

    def test_hotspot_pairs_concentrate_load(self) -> None:
        pairs = hotspot_pairs(HOSTS, random.Random(5), hotspot_fraction=0.1,
                              load_fraction=0.8)
        counts = pair_counts_by_destination(pairs)
        assert max(counts.values()) >= 3  # some destination is clearly hot
        assert all(src != dst for src, dst in pairs)

    def test_hotspot_validation(self) -> None:
        with pytest.raises(ValueError):
            hotspot_pairs(HOSTS, random.Random(1), hotspot_fraction=0.0)
        with pytest.raises(ValueError):
            hotspot_pairs(HOSTS, random.Random(1), load_fraction=1.5)


class TestArrivals:
    def test_poisson_rate_approximately_respected(self) -> None:
        rng = random.Random(11)
        arrivals = poisson_arrivals(1000.0, 5.0, rng)
        assert 4000 < len(arrivals) < 6000
        assert all(0.0 <= t < 5.0 for t in arrivals)
        assert arrivals == sorted(arrivals)

    def test_poisson_zero_rate_and_validation(self) -> None:
        assert poisson_arrivals(0.0, 10.0, random.Random(1)) == []
        with pytest.raises(ValueError):
            poisson_arrivals(-1.0, 1.0, random.Random(1))
        with pytest.raises(ValueError):
            poisson_arrivals(1.0, -1.0, random.Random(1))

    def test_uniform_and_synchronized_arrivals(self) -> None:
        assert uniform_arrivals(4, 2.0) == [0.0, 0.5, 1.0, 1.5]
        assert uniform_arrivals(0, 2.0) == []
        assert synchronized_arrivals(3, start_time=1.0) == [1.0, 1.0, 1.0]
        with pytest.raises(ValueError):
            uniform_arrivals(-1, 1.0)


class TestFlowSpec:
    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            FlowSpec(1, "a", "a", 1000)
        with pytest.raises(ValueError):
            FlowSpec(1, "a", "b", 0)
        with pytest.raises(ValueError):
            FlowSpec(1, "a", "b", 1000, start_time=-1.0)
        with pytest.raises(ValueError):
            FlowSpec(1, "a", "b", 1000, protocol="quic")
        with pytest.raises(ValueError):
            FlowSpec(1, "a", "b", 1000, num_subflows=0)

    def test_short_long_flags(self) -> None:
        short = FlowSpec(1, "a", "b", 70_000, is_long=False)
        long_flow = FlowSpec(2, "a", "b", 10_000_000, is_long=True)
        assert short.is_short and not short.is_long
        assert long_flow.is_long and not long_flow.is_short


class TestWorkloads:
    def test_short_long_mix_matches_paper_recipe(self) -> None:
        params = ShortLongWorkloadParams(
            long_flow_fraction=1.0 / 3.0,
            short_flow_size_bytes=70_000,
            short_flow_rate_per_sender=20.0,
            duration_s=1.0,
            protocol=PROTOCOL_MPTCP,
            num_subflows=8,
        )
        workload = build_short_long_workload(HOSTS, params, random.Random(2))
        assert len(workload.long_flows) == round(len(HOSTS) / 3)
        assert all(flow.size_bytes == 70_000 for flow in workload.short_flows)
        assert all(flow.protocol == PROTOCOL_MPTCP for flow in workload.flows)
        assert all(flow.num_subflows == 8 for flow in workload.flows)
        assert len(workload.short_flows) > 0
        # Flow ids are unique.
        ids = [flow.flow_id for flow in workload.flows]
        assert len(ids) == len(set(ids))
        # Short flows arrive within the configured window.
        assert all(0.0 <= flow.start_time < 1.0 for flow in workload.short_flows)

    def test_short_flow_cap(self) -> None:
        params = ShortLongWorkloadParams(short_flow_rate_per_sender=50.0, duration_s=1.0,
                                         max_short_flows=10)
        workload = build_short_long_workload(HOSTS, params, random.Random(3))
        assert len(workload.short_flows) == 10

    def test_same_seed_gives_same_workload(self) -> None:
        params = ShortLongWorkloadParams()
        a = build_short_long_workload(HOSTS, params, random.Random(9))
        b = build_short_long_workload(HOSTS, params, random.Random(9))
        assert [(f.source, f.destination, f.start_time) for f in a.flows] == [
            (f.source, f.destination, f.start_time) for f in b.flows
        ]

    def test_workload_helper_views(self) -> None:
        params = ShortLongWorkloadParams(max_short_flows=5)
        workload = build_short_long_workload(HOSTS, params, random.Random(4))
        assert workload.total_bytes == sum(f.size_bytes for f in workload.flows)
        by_source = workload.flows_by_source()
        assert sum(len(flows) for flows in by_source.values()) == len(workload.flows)

    def test_incast_workload_synchronised(self) -> None:
        workload = build_incast_workload(HOSTS[:8], "sink", response_size_bytes=20_000,
                                         start_time=0.5, protocol=PROTOCOL_MMPTCP)
        assert len(workload.flows) == 8
        assert all(flow.start_time == 0.5 for flow in workload.flows)
        assert all(flow.destination == "sink" for flow in workload.flows)
        with pytest.raises(ValueError):
            build_incast_workload([], "sink")

    def test_hotspot_workload_builds(self) -> None:
        params = ShortLongWorkloadParams(short_flow_rate_per_sender=5.0, duration_s=0.5)
        workload = build_hotspot_workload(HOSTS, params, random.Random(6),
                                          hotspot_fraction=0.2, load_fraction=0.7)
        assert len(workload.flows) > 0
        assert len(workload.long_flows) == round(len(HOSTS) / 3)

    def test_params_validation(self) -> None:
        with pytest.raises(ValueError):
            ShortLongWorkloadParams(long_flow_fraction=1.0)
        with pytest.raises(ValueError):
            ShortLongWorkloadParams(short_flow_size_bytes=0)
        with pytest.raises(ValueError):
            ShortLongWorkloadParams(duration_s=0.0)
        with pytest.raises(ValueError):
            ShortLongWorkloadParams(short_flow_rate_per_sender=-5.0)
