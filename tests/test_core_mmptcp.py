"""Tests for MMPTCP: packet scatter, phase switching and the full hybrid."""

from __future__ import annotations

import random

import pytest

from repro.core.mmptcp import (
    PHASE_MPTCP,
    PHASE_PACKET_SCATTER,
    MmptcpConnection,
    MmptcpReceiver,
    PacketScatterConnection,
)
from repro.core.phase_switching import (
    CongestionEventSwitching,
    DataVolumeSwitching,
    HybridSwitching,
    NeverSwitch,
)
from repro.core.reordering import StaticReorderingPolicy, TopologyInformedPolicy
from repro.net.queues import DropTailQueue
from repro.sim.engine import Simulator
from repro.topology.simple import TwoHostTopology, TwoPathTopology
from repro.transport.base import TcpConfig

TEST_CONFIG = TcpConfig(mss=1000, initial_cwnd_segments=2)


def _run_mmptcp(size: int, *, paths: int = 4, subflows: int = 4, queue_packets: int = 100,
                switching=None, reordering=None, until: float = 30.0, seed: int = 1):
    simulator = Simulator()
    topology = TwoPathTopology(
        simulator, paths=paths,
        queue_factory=lambda: DropTailQueue(capacity_packets=queue_packets),
    )
    receiver = MmptcpReceiver(simulator, topology.receiver, local_port=5001,
                              expected_bytes=size)
    connection = MmptcpConnection(
        simulator, topology.sender, topology.receiver.address, 5001, size,
        num_subflows=subflows, config=TEST_CONFIG,
        switching_policy=switching if switching is not None else DataVolumeSwitching(100_000),
        reordering_policy=reordering, path_count_hint=paths, rng=random.Random(seed),
    )
    connection.start()
    simulator.run(until=until)
    return connection, receiver, topology


class TestPacketScatterPhase:
    def test_short_flow_completes_entirely_in_scatter_phase(self) -> None:
        connection, receiver, _ = _run_mmptcp(70_000, switching=DataVolumeSwitching(100_000))
        assert receiver.complete
        assert connection.complete
        assert connection.phase == PHASE_PACKET_SCATTER
        assert connection.switch_time is None
        assert len(connection.subflows) == 1  # only the scatter subflow exists

    def test_scattered_packets_use_randomised_source_ports(self) -> None:
        connection, receiver, topology = _run_mmptcp(70_000)
        assert receiver.complete
        scatter = connection.scatter_subflow
        assert scatter.scattered_packets >= 70_000 // TEST_CONFIG.mss
        # The receiver learned exactly one canonical port (from the SYN) even
        # though the data packets carried many different source ports.
        assert receiver.subflow_peer_ports == {0: scatter.local_port}

    def test_scatter_spreads_over_multiple_paths(self) -> None:
        connection, receiver, topology = _run_mmptcp(140_000, paths=4,
                                                     switching=NeverSwitch())
        assert receiver.complete
        used_paths = [s for s in topology.core_switches if s.forwarded_packets > 0]
        # A single-path flow would use exactly one path; packet scatter must
        # touch (almost) all of them.
        assert len(used_paths) >= 3

    def test_acks_reach_canonical_port_despite_scatter(self) -> None:
        connection, receiver, _ = _run_mmptcp(40_000)
        scatter = connection.scatter_subflow
        assert scatter.stats.acks_received > 0
        assert scatter.snd_una == scatter.allocated_bytes

    def test_invalid_port_range_rejected(self) -> None:
        simulator = Simulator()
        topology = TwoHostTopology(simulator)
        with pytest.raises(ValueError):
            MmptcpConnection(simulator, topology.sender, topology.receiver.address, 5001,
                             10_000, scatter_port_range=(50_000, 40_000))


class TestPhaseSwitching:
    def test_long_flow_switches_on_data_volume(self) -> None:
        connection, receiver, _ = _run_mmptcp(600_000,
                                              switching=DataVolumeSwitching(100_000))
        assert receiver.complete
        assert connection.phase == PHASE_MPTCP
        assert connection.switch_time is not None
        assert connection.bytes_in_scatter_phase >= 100_000
        # The scatter subflow plus the configured number of MPTCP subflows.
        assert len(connection.subflows) == 1 + 4

    def test_scatter_flow_gets_no_new_data_after_switch(self) -> None:
        connection, receiver, _ = _run_mmptcp(600_000,
                                              switching=DataVolumeSwitching(100_000))
        assert receiver.complete
        scatter_allocated = connection.scatter_subflow.allocated_bytes
        # Everything beyond the scatter allocation was carried by MPTCP subflows.
        mptcp_allocated = sum(s.allocated_bytes for s in connection.mptcp_subflows())
        assert scatter_allocated + mptcp_allocated == 600_000
        assert mptcp_allocated > 0
        assert connection.scatter_drained

    def test_congestion_event_switching_triggers_on_loss(self) -> None:
        connection, receiver, _ = _run_mmptcp(
            500_000, queue_packets=6, switching=CongestionEventSwitching(), until=60.0
        )
        assert receiver.complete
        # The tiny queue guarantees at least one congestion event, so the
        # connection must have switched.
        assert connection.phase == PHASE_MPTCP
        assert connection.switch_reason.startswith("congestion:")

    def test_never_switch_policy_keeps_single_scatter_flow(self) -> None:
        connection, receiver, _ = _run_mmptcp(400_000, switching=NeverSwitch(), until=60.0)
        assert receiver.complete
        assert connection.phase == PHASE_PACKET_SCATTER
        assert len(connection.subflows) == 1

    def test_phase_switch_callback_and_no_subflows_for_fully_allocated_flow(self) -> None:
        # The switch threshold sits below the flow size, but by the time it is
        # crossed the rest may already be allocated; either way the callback
        # fires exactly once for switching flows.
        switches = []
        simulator = Simulator()
        topology = TwoPathTopology(simulator, paths=2)
        receiver = MmptcpReceiver(simulator, topology.receiver, local_port=5001,
                                  expected_bytes=300_000)
        connection = MmptcpConnection(
            simulator, topology.sender, topology.receiver.address, 5001, 300_000,
            num_subflows=2, config=TEST_CONFIG,
            switching_policy=DataVolumeSwitching(50_000), path_count_hint=2,
            on_phase_switch=lambda conn: switches.append(conn.phase),
        )
        connection.start()
        simulator.run(until=30.0)
        assert receiver.complete
        assert switches == [PHASE_MPTCP]

    def test_hybrid_policy_switches_on_whichever_comes_first(self) -> None:
        connection, receiver, _ = _run_mmptcp(400_000, switching=HybridSwitching(80_000))
        assert receiver.complete
        assert connection.phase == PHASE_MPTCP


class TestMmptcpVsMptcpBehaviour:
    def test_scatter_phase_avoids_rtos_where_thin_subflows_fail(self) -> None:
        """A 70 KB flow through a small queue: MMPTCP's single scatter window
        recovers with fast retransmit while MPTCP(8) over the same bottleneck
        is prone to timeouts.  (Statistical claim checked at workload scale in
        the benchmarks; here we only require MMPTCP to finish promptly.)"""
        connection, receiver, _ = _run_mmptcp(70_000, paths=4, queue_packets=10,
                                              switching=DataVolumeSwitching(100_000),
                                              until=60.0)
        assert receiver.complete
        fct = connection.completion_time
        assert fct is not None and fct < 0.2  # no 200 ms RTO stall

    def test_pure_packet_scatter_connection(self) -> None:
        simulator = Simulator()
        topology = TwoPathTopology(simulator, paths=4)
        receiver = MmptcpReceiver(simulator, topology.receiver, local_port=5001,
                                  expected_bytes=200_000)
        connection = PacketScatterConnection(
            simulator, topology.sender, topology.receiver.address, 5001, 200_000,
            config=TEST_CONFIG, path_count_hint=4,
        )
        connection.start()
        simulator.run(until=30.0)
        assert receiver.complete
        assert connection.phase == PHASE_PACKET_SCATTER
        assert isinstance(connection.switching_policy, NeverSwitch)


class TestReorderingIntegration:
    def test_topology_informed_policy_reduces_spurious_retransmits(self) -> None:
        naive_policy = StaticReorderingPolicy(threshold=3)
        informed_policy = TopologyInformedPolicy(path_count=8)
        _run_naive = _run_mmptcp(200_000, paths=8, reordering=naive_policy,
                                 switching=NeverSwitch(), seed=5)
        _run_informed = _run_mmptcp(200_000, paths=8, reordering=informed_policy,
                                    switching=NeverSwitch(), seed=5)
        naive_conn, naive_recv, _ = _run_naive
        informed_conn, informed_recv, _ = _run_informed
        assert naive_recv.complete and informed_recv.complete
        naive_spurious = naive_conn.scatter_subflow.stats.fast_retransmits
        informed_spurious = informed_conn.scatter_subflow.stats.fast_retransmits
        # With the threshold sized to the path count, reordering-induced fast
        # retransmits must not exceed those of the naive threshold.
        assert informed_spurious <= naive_spurious

    def test_default_reordering_policy_is_topology_informed(self) -> None:
        simulator = Simulator()
        topology = TwoHostTopology(simulator)
        connection = MmptcpConnection(simulator, topology.sender, topology.receiver.address,
                                      5001, 10_000, path_count_hint=16)
        assert isinstance(connection.reordering_policy, TopologyInformedPolicy)
        assert connection.reordering_policy.path_count == 16
