"""Shared helpers for the test suite.

These used to live in ``tests/conftest.py``, but importing them as
``from conftest import ...`` is fragile: any other ``conftest.py`` on
``sys.path`` (the benchmark suite has one) can win the bare ``conftest``
module name and shadow the helpers.  Tests import this module instead;
``tests/conftest.py`` only defines fixtures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.queues import DropTailQueue
from repro.sim.engine import Simulator
from repro.sim.units import megabits_per_second, microseconds
from repro.topology.simple import TwoHostTopology
from repro.transport.base import TcpConfig
from repro.transport.receiver import TcpReceiver
from repro.transport.tcp import TcpSender

#: A fast-but-realistic config used across transport tests: small initial
#: window so window growth is observable, conventional 200 ms min RTO.
TEST_TCP_CONFIG = TcpConfig(mss=1000, initial_cwnd_segments=2)


@dataclass
class TcpTransferHarness:
    """A single TCP transfer over a two-host topology, ready to run."""

    simulator: Simulator
    topology: TwoHostTopology
    sender: TcpSender
    receiver: TcpReceiver

    def run(self, until: float = 10.0) -> None:
        """Start the transfer and run the event loop."""
        self.sender.start()
        self.simulator.run(until=until)


def make_tcp_transfer(
    size_bytes: int,
    link_rate_bps: float = megabits_per_second(100),
    link_delay_s: float = microseconds(50),
    queue_capacity_packets: int = 100,
    config: Optional[TcpConfig] = None,
) -> TcpTransferHarness:
    """Build a sender/receiver pair on a dedicated two-host topology."""
    simulator = Simulator()
    topology = TwoHostTopology(
        simulator,
        link_rate_bps=link_rate_bps,
        link_delay_s=link_delay_s,
        queue_factory=lambda: DropTailQueue(capacity_packets=queue_capacity_packets),
    )
    tcp_config = config if config is not None else TEST_TCP_CONFIG
    receiver = TcpReceiver(
        simulator, topology.receiver, local_port=5001, flow_id=1, expected_bytes=size_bytes
    )
    sender = TcpSender(
        simulator,
        topology.sender,
        destination=topology.receiver.address,
        destination_port=5001,
        total_bytes=size_bytes,
        flow_id=1,
        config=tcp_config,
    )
    return TcpTransferHarness(simulator, topology, sender, receiver)
