"""Golden-trace regression tests.

Two canonical reference runs — a tiny MMPTCP incast burst and a short/long
run with a mid-experiment core-link failure — are serialised into a
deterministic text form (canonical trace events + per-flow outcome lines +
run totals) and compared byte-for-byte against checked-in golden files.

Any refactor that changes packet timing, drop behaviour, fault application
order, event counts or per-flow outcomes shows up as a diff here instead of
drifting silently.  If a behaviour change is *intended*, regenerate with::

    python tests/test_golden_traces.py

and commit the updated ``tests/golden/*.golden`` files together with the
change that explains them.
"""

from __future__ import annotations

import sys
from pathlib import Path

if __name__ == "__main__":  # pragma: no cover - regeneration entry point
    # Running this file directly (outside pytest's pythonpath bootstrap)
    # must still find the package: put <repo>/src on the path first.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.config import ExperimentConfig
from repro.experiments.incast_study import build_incast_workload_for
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.net.faults import host_migration, link_failure
from repro.sim.tracing import RecordingTraceSink, canonical_trace
from repro.traffic.flowspec import PROTOCOL_MMPTCP

GOLDEN_DIR = Path(__file__).parent / "golden"


# ---------------------------------------------------------------------------
# Reference runs
# ---------------------------------------------------------------------------


def _incast_config() -> ExperimentConfig:
    return ExperimentConfig(
        fattree_k=4,
        hosts_per_edge=1,
        protocol=PROTOCOL_MMPTCP,
        num_subflows=4,
        arrival_window_s=0.05,
        drain_time_s=0.8,
        initial_cwnd_segments=2,
        # Shallow queues so the synchronised burst actually overflows them:
        # the golden trace then pins down drop timing, not just completions.
        queue_capacity_packets=16,
        seed=42,
    )


def _link_failure_config() -> ExperimentConfig:
    return ExperimentConfig(
        fattree_k=4,
        hosts_per_edge=1,
        protocol=PROTOCOL_MMPTCP,
        num_subflows=4,
        arrival_window_s=0.1,
        drain_time_s=1.2,
        short_flow_rate_per_sender=4.0,
        long_flow_size_bytes=400_000,
        max_short_flows=6,
        initial_cwnd_segments=2,
        seed=7,
        fault_schedule=(link_failure(0.03, "core-0", "agg-0-0"),),
    )


def _migration_config() -> ExperimentConfig:
    # A live migration of host-0-0-0 mid-workload: detach at t=40 ms, 60 ms
    # blackout, re-attach at edge-0-1 under the same address.  Pins the
    # mobility verbs' event sequencing (migrate_host → host_attached), the
    # route churn around the move, and the transports' recovery behaviour.
    return ExperimentConfig(
        fattree_k=4,
        hosts_per_edge=1,
        protocol=PROTOCOL_MMPTCP,
        num_subflows=4,
        arrival_window_s=0.1,
        drain_time_s=1.2,
        short_flow_rate_per_sender=4.0,
        long_flow_size_bytes=400_000,
        max_short_flows=6,
        initial_cwnd_segments=2,
        seed=7,
        fault_schedule=(
            host_migration(0.04, "host-0-0-0", "edge-0-1", downtime_s=0.06),
        ),
    )


def _flow_lines(result: ExperimentResult) -> str:
    lines = []
    for record in result.metrics.flows:
        lines.append(
            f"flow {record.flow_id} {record.protocol} long={record.is_long} "
            f"fct={record.completion_time!r} retx={record.retransmitted_packets} "
            f"rtos={record.rto_events} sent={record.data_packets_sent} "
            f"bytes={record.bytes_received}\n"
        )
    return "".join(lines)


def _golden_text(config: ExperimentConfig, incast_fan_in: int = 0) -> str:
    """The full canonical serialisation of one reference run."""
    sink = RecordingTraceSink()
    workload = None
    if incast_fan_in:
        workload = build_incast_workload_for(config, incast_fan_in, 50_000, config.protocol)
    result = run_experiment(config, workload=workload, trace=sink)
    return (
        canonical_trace(sink.events)
        + _flow_lines(result)
        + f"events_processed={result.events_processed} flows={result.workload_size}\n"
    )


#: name -> zero-argument builder of the golden text.
GOLDEN_RUNS = {
    "incast_mmptcp": lambda: _golden_text(_incast_config(), incast_fan_in=4),
    "linkfail_mmptcp": lambda: _golden_text(_link_failure_config()),
    "migration_mmptcp": lambda: _golden_text(_migration_config()),
}


# ---------------------------------------------------------------------------
# Tests
# ---------------------------------------------------------------------------


def _assert_matches_golden(name: str) -> None:
    golden_path = GOLDEN_DIR / f"{name}.golden"
    assert golden_path.exists(), (
        f"golden file {golden_path} is missing; generate it with "
        "`python tests/test_golden_traces.py`"
    )
    actual = GOLDEN_RUNS[name]()
    expected = golden_path.read_text()
    assert actual == expected, (
        f"the {name} reference run diverged from its golden trace; if the "
        "behaviour change is intended, regenerate with "
        "`python tests/test_golden_traces.py` and commit the diff"
    )


def test_incast_golden_trace_is_stable() -> None:
    _assert_matches_golden("incast_mmptcp")


def test_link_failure_golden_trace_is_stable() -> None:
    _assert_matches_golden("linkfail_mmptcp")


def test_migration_golden_trace_is_stable() -> None:
    _assert_matches_golden("migration_mmptcp")


def test_migration_golden_contains_the_mobility_event_sequence() -> None:
    text = GOLDEN_RUNS["migration_mmptcp"]()
    # The blackout and the re-attach both trace, in order.
    assert " migrate_host " in text
    assert " host_attached " in text
    assert text.index(" migrate_host ") < text.index(" host_attached ")
    # Every flow still completes: the fabric re-converges around the move.
    assert "fct=None" not in text


def test_golden_runs_are_deterministic_within_a_process() -> None:
    # The serialisation itself must be a pure function of the config: two
    # back-to-back runs produce identical bytes (packet ids and other
    # process-global counters must not leak into the canonical form).
    assert GOLDEN_RUNS["incast_mmptcp"]() == GOLDEN_RUNS["incast_mmptcp"]()


def test_golden_traces_stable_with_pool_poisoning() -> None:
    # The strongest proof of the packet pool's acquire/release discipline:
    # with every released packet poisoned (and poison verified again on
    # reacquisition), the reference runs must still reproduce their golden
    # bytes exactly.  A use-after-release anywhere in the stack would read
    # poisoned garbage and diverge loudly here.
    from repro.net.packet import set_pool_debug

    previous = set_pool_debug(True)
    try:
        for name in GOLDEN_RUNS:
            _assert_matches_golden(name)
    finally:
        set_pool_debug(previous)


def test_link_failure_golden_contains_fault_and_flows() -> None:
    text = GOLDEN_RUNS["linkfail_mmptcp"]()
    assert " link_down " in text
    assert "flow 1 " in text
    # The canonical link-failure run must still deliver every flow.
    assert "fct=None" not in text


if __name__ == "__main__":  # pragma: no cover - regeneration entry point
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, builder in GOLDEN_RUNS.items():
        path = GOLDEN_DIR / f"{name}.golden"
        path.write_text(builder())
        print(f"wrote {path}")
