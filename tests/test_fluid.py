"""Property tests for the weighted max-min fair-share solver.

The fluid tier's entire bandwidth model reduces to
:func:`repro.sim.fluid.max_min_rates`; these properties pin the two
invariants every allocation must satisfy — feasibility (no link carries more
than its capacity) and work conservation (every participant is bottlenecked
somewhere on its path) — plus the weighted-fairness and dead-link behaviour
the engine's multipath coupling relies on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.fluid import max_min_rates

_LINKS = ("l0", "l1", "l2", "l3", "l4")

_capacities = st.fixed_dictionaries(
    {name: st.floats(min_value=1e3, max_value=1e9) for name in _LINKS}
)

_paths = st.dictionaries(
    keys=st.integers(min_value=0, max_value=15),
    values=st.lists(st.sampled_from(_LINKS), min_size=1, max_size=4),
    min_size=1,
    max_size=8,
)

_weights_values = st.floats(min_value=0.1, max_value=8.0)


@given(capacities=_capacities, paths=_paths, data=st.data())
@settings(max_examples=200, deadline=None)
def test_feasible_and_work_conserving(capacities, paths, data) -> None:
    """Per-link load never exceeds capacity; every participant is bottlenecked."""
    weights = {
        key: data.draw(_weights_values, label=f"weight[{key}]") for key in paths
    }
    rates = max_min_rates(capacities, paths, weights)

    assert set(rates) == set(paths)
    assert all(rate >= 0.0 for rate in rates.values())

    load = {name: 0.0 for name in _LINKS}
    for key, path in paths.items():
        for link in dict.fromkeys(path):  # a repeated link counts once
            load[link] += rates[key]
    for name in _LINKS:
        assert load[name] <= capacities[name] * (1.0 + 1e-9)

    # Work conservation: every participant crosses at least one saturated
    # link — otherwise its rate could still be raised, contradicting max-min.
    for key, path in paths.items():
        assert any(
            load[link] >= capacities[link] * (1.0 - 1e-6) for link in path
        ), f"participant {key} is not bottlenecked anywhere on {path}"


@given(
    capacity=st.floats(min_value=1e3, max_value=1e9),
    count=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=100, deadline=None)
def test_equal_weights_share_a_single_link_equally(capacity, count) -> None:
    paths = {index: ["only"] for index in range(count)}
    rates = max_min_rates({"only": capacity}, paths)
    expected = capacity / count
    for rate in rates.values():
        assert rate == pytest.approx(expected, rel=1e-9)


def test_weighted_shares_follow_the_weight_ratio() -> None:
    rates = max_min_rates(
        {"only": 100.0},
        {"light": ["only"], "heavy": ["only"]},
        {"light": 1.0, "heavy": 3.0},
    )
    assert rates["light"] == pytest.approx(25.0)
    assert rates["heavy"] == pytest.approx(75.0)


def test_multipath_coupling_weighs_like_one_flow() -> None:
    """Two 1/2-weight subflows sharing a bottleneck with one whole flow:
    the multipath flow gets half the link in aggregate, as MPTCP's coupled
    congestion control intends."""
    rates = max_min_rates(
        {"shared": 100.0},
        {("mp", 0): ["shared"], ("mp", 1): ["shared"], ("tcp", 0): ["shared"]},
        {("mp", 0): 0.5, ("mp", 1): 0.5, ("tcp", 0): 1.0},
    )
    assert rates[("mp", 0)] + rates[("mp", 1)] == pytest.approx(50.0)
    assert rates[("tcp", 0)] == pytest.approx(50.0)


def test_multipath_fills_a_disjoint_path_beyond_the_coupled_share() -> None:
    """A subflow on an uncontended path is not held back by its sibling's
    bottleneck: weighted max-min still fills the empty path."""
    rates = max_min_rates(
        {"contended": 100.0, "empty": 100.0},
        {("mp", 0): ["contended"], ("mp", 1): ["empty"], ("tcp", 0): ["contended"]},
        {("mp", 0): 0.5, ("mp", 1): 0.5, ("tcp", 0): 1.0},
    )
    assert rates[("mp", 1)] == pytest.approx(100.0)
    assert rates[("mp", 0)] + rates[("tcp", 0)] == pytest.approx(100.0)


def test_two_link_path_is_limited_by_the_tighter_link() -> None:
    rates = max_min_rates(
        {"wide": 100.0, "narrow": 10.0}, {"flow": ["wide", "narrow"]}
    )
    assert rates["flow"] == pytest.approx(10.0)


def test_dead_link_pins_participants_to_zero() -> None:
    rates = max_min_rates(
        {"dead": 0.0, "live": 100.0},
        {"stalled": ["dead", "live"], "ok": ["live"]},
    )
    assert rates["stalled"] == 0.0
    assert rates["ok"] == pytest.approx(100.0)


def test_unknown_link_and_empty_path_are_rejected() -> None:
    with pytest.raises(ValueError):
        max_min_rates({"a": 1.0}, {"flow": ["missing"]})
    with pytest.raises(ValueError):
        max_min_rates({"a": 1.0}, {"flow": []})
    with pytest.raises(ValueError):
        max_min_rates({"a": 1.0}, {"flow": ["a"]}, {"flow": 0.0})


def test_allocation_is_deterministic_and_order_independent() -> None:
    capacities = {"x": 50.0, "y": 75.0, "z": 100.0}
    forward = {1: ["x", "y"], 2: ["y", "z"], 3: ["z"], 4: ["x"]}
    backward = dict(reversed(list(forward.items())))
    assert max_min_rates(capacities, forward) == max_min_rates(capacities, backward)
