"""Tests for the incast fan-in sweep and the multi-homing comparison."""

from __future__ import annotations

import pytest

from repro.experiments.config import TOPOLOGY_DUALHOMED, TOPOLOGY_FATTREE, ExperimentConfig
from repro.experiments.incast_study import (
    IncastPoint,
    build_incast_workload_for,
    compare_multihoming,
    incast_rows,
    run_incast_sweep,
)
from repro.sim.units import megabits_per_second
from repro.traffic.flowspec import PROTOCOL_MMPTCP, PROTOCOL_TCP


def _tiny_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        fattree_k=4,
        hosts_per_edge=2,
        link_rate_bps=megabits_per_second(100),
        arrival_window_s=0.05,
        drain_time_s=1.0,
        num_subflows=4,
        seed=29,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


# ---------------------------------------------------------------------------
# Workload construction
# ---------------------------------------------------------------------------


def test_incast_workload_has_one_flow_per_sender_all_synchronised() -> None:
    workload = build_incast_workload_for(_tiny_config(), fan_in=6, response_bytes=50_000,
                                         protocol=PROTOCOL_TCP)
    assert len(workload.flows) == 6
    destinations = {flow.destination for flow in workload.flows}
    assert len(destinations) == 1
    starts = {flow.start_time for flow in workload.flows}
    assert len(starts) == 1
    assert all(flow.size_bytes == 50_000 for flow in workload.flows)


def test_incast_workload_is_paired_across_protocols() -> None:
    config = _tiny_config()
    tcp = build_incast_workload_for(config, 5, 70_000, PROTOCOL_TCP)
    mmptcp = build_incast_workload_for(config, 5, 70_000, PROTOCOL_MMPTCP)
    assert [(f.source, f.destination) for f in tcp.flows] == [
        (f.source, f.destination) for f in mmptcp.flows
    ]


def test_incast_workload_rejects_impossible_fan_in() -> None:
    with pytest.raises(ValueError):
        build_incast_workload_for(_tiny_config(), fan_in=0, response_bytes=1000,
                                  protocol=PROTOCOL_TCP)
    with pytest.raises(ValueError):
        # The tiny fabric only has 16 hosts.
        build_incast_workload_for(_tiny_config(), fan_in=16, response_bytes=1000,
                                  protocol=PROTOCOL_TCP)


# ---------------------------------------------------------------------------
# Sweep
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def sweep_points():
    return run_incast_sweep(
        _tiny_config(),
        protocols=(PROTOCOL_TCP, PROTOCOL_MMPTCP),
        fan_ins=(4, 8),
        response_bytes=50_000,
    )


def test_incast_sweep_covers_every_combination(sweep_points) -> None:
    combos = {(point.protocol, point.fan_in) for point in sweep_points}
    assert combos == {(PROTOCOL_TCP, 4), (PROTOCOL_TCP, 8),
                      (PROTOCOL_MMPTCP, 4), (PROTOCOL_MMPTCP, 8)}
    assert all(point.topology == TOPOLOGY_FATTREE for point in sweep_points)


def test_incast_sweep_every_burst_drains(sweep_points) -> None:
    for point in sweep_points:
        assert isinstance(point, IncastPoint)
        assert point.completion_rate == pytest.approx(1.0), (point.protocol, point.fan_in)
        assert point.fct_summary.count == point.fan_in
        assert point.p99_fct_ms > 0.0


def test_incast_rows_shape(sweep_points) -> None:
    rows = incast_rows(sweep_points)
    assert len(rows) == len(sweep_points)
    for row in rows:
        assert {"topology", "protocol", "fan_in", "mean_fct_ms", "completion_rate",
                "total_rtos"} <= set(row)


def test_incast_sweep_rejects_empty_dimensions() -> None:
    with pytest.raises(ValueError):
        run_incast_sweep(_tiny_config(), protocols=(), fan_ins=(4,))
    with pytest.raises(ValueError):
        run_incast_sweep(_tiny_config(), protocols=(PROTOCOL_TCP,), fan_ins=())


# ---------------------------------------------------------------------------
# Multi-homing comparison
# ---------------------------------------------------------------------------


def test_compare_multihoming_returns_both_fabrics() -> None:
    outcome = compare_multihoming(_tiny_config(), fan_in=6, response_bytes=50_000)
    assert set(outcome) == {TOPOLOGY_FATTREE, TOPOLOGY_DUALHOMED}
    for point in outcome.values():
        assert point.completion_rate == pytest.approx(1.0)
        assert point.protocol == PROTOCOL_MMPTCP
