"""Tests for the declarative scenario subsystem and the scenario matrix."""

from __future__ import annotations

import pytest

from repro.analysis.report import scenario_matrix_markdown
from repro.experiments.parallel import SweepRunner
from repro.net.faults import link_failure
from repro.scenarios import (
    DEFAULT_MATRIX_PROTOCOLS,
    DEFAULT_MATRIX_SCENARIOS,
    ScenarioMatrixRunner,
    ScenarioSpec,
    all_scenarios,
    build_scenario_workload,
    get_scenario,
    matrix_rows,
    register_scenario,
    run_scenario,
    scenario_names,
    scenario_run_specs,
    tiny_config,
)
from repro.traffic.flowspec import PROTOCOL_MMPTCP, PROTOCOL_TCP


def _fast_config(**overrides):
    """An even smaller base than tiny_config, for matrix tests."""
    defaults = dict(
        hosts_per_edge=1,
        arrival_window_s=0.05,
        drain_time_s=0.8,
        max_short_flows=4,
        long_flow_size_bytes=300_000,
    )
    defaults.update(overrides)
    return tiny_config(**defaults)


# ---------------------------------------------------------------------------
# ScenarioSpec
# ---------------------------------------------------------------------------


def test_spec_validation() -> None:
    with pytest.raises(ValueError):
        ScenarioSpec(name="")
    with pytest.raises(ValueError):
        ScenarioSpec(name="x", workload="mapreduce")
    with pytest.raises(ValueError):
        ScenarioSpec(name="x", faults=[link_failure(0.1, "a", "b")])  # list, not tuple
    with pytest.raises(ValueError):
        ScenarioSpec(name="x", config_overrides={"protocol": "tcp"})
    with pytest.raises(ValueError):
        ScenarioSpec(name="x", config_overrides={"fault_schedule": ()})
    with pytest.raises(ValueError):
        ScenarioSpec(name="x", fan_in=0)


def test_spec_apply_to_carries_faults_and_overrides() -> None:
    spec = ScenarioSpec(
        name="x",
        config_overrides={"core_oversubscription": 2.0},
        faults=(link_failure(0.03, "core-0", "agg-0-0"),),
    )
    config = spec.apply_to(tiny_config().with_updates(protocol=PROTOCOL_TCP))
    assert config.core_oversubscription == 2.0
    assert config.fault_schedule == spec.faults
    assert config.protocol == PROTOCOL_TCP
    assert spec.has_faults


def test_build_scenario_workload_kinds() -> None:
    config = _fast_config().with_updates(protocol=PROTOCOL_TCP)
    assert build_scenario_workload(config, "short_long") is None
    incast = build_scenario_workload(config, "incast", fan_in=4, response_bytes=20_000)
    assert len(incast.flows) == 4
    assert all(flow.size_bytes == 20_000 for flow in incast.flows)
    assert all(flow.protocol == PROTOCOL_TCP for flow in incast.flows)
    with pytest.raises(ValueError):
        build_scenario_workload(config, "mapreduce")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def test_builtin_catalogue_is_registered() -> None:
    names = scenario_names()
    for expected in ("baseline", "core-link-failure", "oversubscribed-core",
                     "asymmetric-fabric", "incast-burst"):
        assert expected in names
    assert len(all_scenarios()) == len(names)
    # At least one built-in scenario exercises a link failure.
    assert any(spec.has_faults for spec in all_scenarios())


def test_get_scenario_unknown_name_lists_alternatives() -> None:
    with pytest.raises(KeyError, match="baseline"):
        get_scenario("does-not-exist")


def test_register_scenario_rejects_duplicates_unless_overwritten() -> None:
    from repro.scenarios.registry import _REGISTRY

    spec = ScenarioSpec(name="test-tmp-scenario", description="v1")
    try:
        register_scenario(spec, overwrite=True)
        with pytest.raises(ValueError):
            register_scenario(spec)
        replacement = ScenarioSpec(name="test-tmp-scenario", description="v2")
        register_scenario(replacement, overwrite=True)
        assert get_scenario("test-tmp-scenario").description == "v2"
    finally:
        # The registry is shared process state; leaking the temporary entry
        # would make other tests' registry assertions order-dependent.
        _REGISTRY.pop("test-tmp-scenario", None)


# ---------------------------------------------------------------------------
# Matrix execution
# ---------------------------------------------------------------------------


def test_scenario_run_specs_cross_product_in_matrix_order() -> None:
    specs = scenario_run_specs(
        _fast_config(), ("baseline", "core-link-failure"), (PROTOCOL_TCP, PROTOCOL_MMPTCP)
    )
    assert [spec.index for spec in specs] == [0, 1, 2, 3]
    assert [spec.tag["scenario"] for spec in specs] == [
        "baseline", "baseline", "core-link-failure", "core-link-failure",
    ]
    assert [spec.tag["protocol"] for spec in specs] == [
        PROTOCOL_TCP, PROTOCOL_MMPTCP, PROTOCOL_TCP, PROTOCOL_MMPTCP,
    ]
    # The failure scenario's configs carry the fault schedule; baseline's don't.
    assert not specs[0].config.fault_schedule
    assert specs[2].config.fault_schedule
    with pytest.raises(ValueError):
        scenario_run_specs(_fast_config(), (), (PROTOCOL_TCP,))


def test_matrix_parallel_run_matches_serial_byte_for_byte() -> None:
    scenarios = ("baseline", "core-link-failure")
    protocols = (PROTOCOL_TCP, PROTOCOL_MMPTCP)
    serial = ScenarioMatrixRunner(_fast_config(), workers=1).run(scenarios, protocols)
    parallel = ScenarioMatrixRunner(_fast_config(), workers=2).run(scenarios, protocols)
    assert matrix_rows(serial) == matrix_rows(parallel)


def test_mmptcp_completes_all_flows_under_core_link_failure() -> None:
    cell = run_scenario("core-link-failure", _fast_config(), protocol=PROTOCOL_MMPTCP)
    metrics = cell.result.metrics
    assert metrics.short_flow_completion_rate() == 1.0
    assert all(record.completed for record in metrics.flows)


def test_matrix_rows_shape_and_report_table() -> None:
    cells = ScenarioMatrixRunner(_fast_config(), workers=1).run(
        ("baseline", "core-link-failure"), (PROTOCOL_TCP, PROTOCOL_MMPTCP)
    )
    rows = matrix_rows(cells)
    assert len(rows) == 4
    # Regression: key order is insertion-stable and part of the public
    # contract — CSV headers and store-backed reports derive from it.
    from repro.scenarios.runner import CELL_METRIC_FIELDS

    expected_order = ("scenario", "protocol", "faults") + CELL_METRIC_FIELDS
    for row in rows:
        assert tuple(row.keys()) == expected_order
    markdown = scenario_matrix_markdown(rows, baseline_protocol=PROTOCOL_TCP)
    assert "core-link-failure" in markdown
    assert "ΔFCT vs tcp" in markdown
    assert "n/a" in markdown  # the baseline protocol's own delta cells
    # Non-baseline rows carry computed deltas (a signed percentage).
    assert "%" in markdown


def test_matrix_runner_rejects_negative_workers() -> None:
    with pytest.raises(ValueError, match="workers"):
        ScenarioMatrixRunner(_fast_config(), workers=-2)
    with pytest.raises(ValueError, match="workers"):
        SweepRunner(workers=-1)


def test_default_matrix_shape_is_at_least_six_cells() -> None:
    assert len(DEFAULT_MATRIX_SCENARIOS) * len(DEFAULT_MATRIX_PROTOCOLS) >= 6
    assert "core-link-failure" in DEFAULT_MATRIX_SCENARIOS
    assert PROTOCOL_MMPTCP in DEFAULT_MATRIX_PROTOCOLS


def test_incast_scenario_runs_end_to_end() -> None:
    # The 8-to-1 burst needs more than 8 hosts: use two hosts per edge.
    base = _fast_config(hosts_per_edge=2)
    cell = run_scenario("incast-link-failure", base, protocol=PROTOCOL_MMPTCP)
    metrics = cell.result.metrics
    # 8 synchronised responses, all of which must eventually complete.
    assert len(metrics.short_flows) == 8
    assert metrics.short_flow_completion_rate() == 1.0


def test_oversubscribed_scenario_builds_slower_core_links() -> None:
    cell = run_scenario("oversubscribed-core", _fast_config(), protocol=PROTOCOL_TCP)
    assert cell.result.config.core_oversubscription == 2.0


def test_asymmetry_scenarios_refuse_vl2_instead_of_silently_ignoring() -> None:
    base = _fast_config(topology="vl2")
    with pytest.raises(ValueError, match="FatTree"):
        run_scenario("oversubscribed-core", base, protocol=PROTOCOL_TCP)
